//! VM-placement study (paper Figure 6): what happens when the
//! hypervisor does *not* schedule each VM onto one hard-wired area and
//! every VM straddles two areas instead ("-alt"). The paper's claim: no
//! significant performance change — the owners stay inside the VM, and
//! providers start serving VM-private data too.
//!
//! ```text
//! cargo run --release --example placement [refs_per_core]
//! ```

use cmpsim::report::table;
use cmpsim::{run_benchmark, Benchmark, Placement, ProtocolKind, SystemConfig};

fn main() {
    let refs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let base = SystemConfig::paper().with_refs(refs);

    println!("apache4x16p, matched vs alternative placement ({refs} refs/core)\n");
    let mut rows = Vec::new();
    for kind in [ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin] {
        let matched = run_benchmark(kind, Benchmark::Apache, &base).expect("simulation failed");
        let alt = run_benchmark(
            kind,
            Benchmark::Apache,
            &base.clone().with_placement(Placement::Alternative),
        )
        .expect("simulation failed");
        rows.push(vec![
            kind.name().to_string(),
            format!("{:.3}", alt.performance() / matched.performance()),
            format!("{:.3}", alt.total_dynamic_nj() / matched.total_dynamic_nj()),
            format!(
                "{} -> {}",
                matched.proto_stats.broadcast_invs.get(),
                alt.proto_stats.broadcast_invs.get()
            ),
            format!(
                "{:.2} -> {:.2}",
                matched.avg_links_per_message(),
                alt.avg_links_per_message()
            ),
        ]);
    }
    println!(
        "{}",
        table(
            &["protocol", "perf alt/matched", "energy alt/matched", "broadcasts", "links/msg"],
            &rows
        )
    );
    println!(
        "Expected (paper §V-D): ratios near 1.0 — performance holds even when\n\
         VMs span areas; DiCo-Arin shows extra broadcast traffic because\n\
         formerly VM-private read/write data is now shared between areas."
    );
}
