//! Scalability study (paper Table VII + §V-B): how the coherence storage
//! overhead and the leakage power evolve from 64 to 1024 cores, and how
//! the number of areas should be chosen. Purely analytic — runs in
//! milliseconds.
//!
//! ```text
//! cargo run --release --example scaling
//! ```

use cmpsim::report::table;
use cmpsim::ProtocolKind;
use cmpsim_power::{leakage_per_tile, overhead_percent};

fn main() {
    println!("== Coherence storage overhead (% of data storage) ==\n");
    let core_counts = [64u64, 128, 256, 512, 1024];
    let rows: Vec<Vec<String>> = ProtocolKind::all()
        .iter()
        .map(|&kind| {
            let mut row = vec![kind.name().to_string()];
            for &cores in &core_counts {
                // Pick the best area count for each proposal, as the
                // paper suggests ("an appropriate number of areas should
                // be chosen for a given number of cores").
                let best = (1..=10)
                    .map(|s| 1u64 << s)
                    .filter(|&a| a <= cores)
                    .map(|a| overhead_percent(kind, cores, a))
                    .fold(f64::INFINITY, f64::min);
                row.push(format!("{best:.1}%"));
            }
            row
        })
        .collect();
    let mut header = vec!["protocol (best areas)".to_string()];
    header.extend(core_counts.iter().map(|c| format!("{c} cores")));
    let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", table(&refs, &rows));

    println!("== Leakage power per tile (mW), 4 areas ==\n");
    let rows: Vec<Vec<String>> = ProtocolKind::all()
        .iter()
        .map(|&kind| {
            let mut row = vec![kind.name().to_string()];
            for &cores in &core_counts {
                let l = leakage_per_tile(kind, cores, 4);
                row.push(format!("{:.0} ({:.0} tag)", l.total_mw, l.tag_mw));
            }
            row
        })
        .collect();
    println!("{}", table(&refs, &rows));

    println!(
        "Directory and DiCo overheads explode with the core count (full-map\n\
         bit-vectors); the area-based protocols stay bounded when the area\n\
         count is chosen appropriately — the paper's scalability argument."
    );
}
