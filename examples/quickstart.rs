//! Quickstart: simulate one consolidated workload under one coherence
//! protocol and print what the paper's evaluation would report about it.
//!
//! ```text
//! cargo run --release --example quickstart [refs_per_core]
//! ```

use cmpsim::{run_benchmark, Benchmark, MissClass, ProtocolKind, SystemConfig};

fn main() {
    let refs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(10_000);
    // The paper's chip: 8x8 tiles, 4 areas, 4 VMs of 16 cores each,
    // memory deduplication on.
    let cfg = SystemConfig::paper().with_refs(refs);

    println!("simulating apache4x16p under DiCo-Arin ({refs} refs/core)...\n");
    let r = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, &cfg)
        .expect("simulation failed");

    println!("protocol           : {}", r.protocol.name());
    println!("benchmark          : {}", r.benchmark.name());
    println!("measured cycles    : {}", r.cycles);
    println!("throughput         : {:.4} refs/cycle (whole chip)", r.throughput());
    println!("L1 miss rate       : {:.2}%", 100.0 * r.l1_miss_rate());
    println!("off-chip rate      : {:.2}% of L1 misses", 100.0 * r.l2_miss_rate());
    println!("dedup savings      : {:.1}% of logical memory", 100.0 * r.dedup_savings);
    println!("cache energy       : {:.1} uJ", r.cache_energy.total() / 1000.0);
    println!("network energy     : {:.1} uJ", r.net_energy.total() / 1000.0);
    println!("broadcast invals   : {}", r.proto_stats.broadcast_invs.get());
    println!();
    println!("miss resolution (Figure 9b classes):");
    for class in MissClass::all() {
        println!("  {:<18} {:.1}%", class.label(), 100.0 * r.miss_class_frac(class));
    }
}
