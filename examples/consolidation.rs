//! Server-consolidation study: the scenario from the paper's
//! introduction. Four virtual machines share one 64-tile CMP with memory
//! deduplication; we compare all four coherence protocols on a
//! commercial (apache) and a scientific (radix) workload and report the
//! performance/power trade-off each one offers.
//!
//! ```text
//! cargo run --release --example consolidation [refs_per_core]
//! ```

use cmpsim::report::{pct_delta, table};
use cmpsim::{run_matrix, Benchmark, ProtocolKind, SystemConfig};
use cmpsim_power::leakage_per_tile;

fn main() {
    let refs = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let cfg = SystemConfig::paper().with_refs(refs);
    let protocols = ProtocolKind::all();
    let benchmarks = [Benchmark::Apache, Benchmark::Radix];

    println!("4 VMs x 16 cores, memory deduplication on, {refs} refs/core\n");
    let results = run_matrix(&protocols, &benchmarks, &cfg).expect("simulation failed");

    for (bi, b) in benchmarks.iter().enumerate() {
        let base = &results[bi * protocols.len()];
        let rows: Vec<Vec<String>> = protocols
            .iter()
            .enumerate()
            .map(|(pi, p)| {
                let r = &results[bi * protocols.len() + pi];
                let leak = leakage_per_tile(*p, 64, 4);
                vec![
                    p.name().to_string(),
                    pct_delta(r.performance(), base.performance()),
                    pct_delta(r.total_dynamic_nj(), base.total_dynamic_nj()),
                    format!("{:.0} mW", leak.total_mw),
                    format!("{:.2}", r.avg_links_per_message()),
                    r.proto_stats.broadcast_invs.get().to_string(),
                ]
            })
            .collect();
        println!("{}:", b.name());
        println!(
            "{}",
            table(
                &["protocol", "perf vs dir", "dyn energy vs dir", "leakage/tile", "links/msg", "bcasts"],
                &rows
            )
        );
    }
    println!(
        "The paper's headline: the proposals cut directory storage 59-64%,\n\
         static power 45-54% (tags), and dynamic power up to 38% (apache),\n\
         with no performance degradation — compare the columns above."
    );
}
