#![warn(missing_docs)]

//! Offline stand-in for the [`criterion`](https://docs.rs/criterion)
//! benchmark harness.
//!
//! The build container has no crates.io access, so `cargo bench` links
//! against this shim. It implements the API subset the workspace's
//! benches use — `Criterion::bench_function`, `benchmark_group` /
//! `bench_with_input` / `sample_size` / `finish`, `BenchmarkId`, and the
//! `criterion_group!` / `criterion_main!` macros — with a plain
//! wall-clock measurement loop instead of criterion's statistical
//! machinery. Reported numbers are mean/min nanoseconds per iteration;
//! there is no outlier analysis, plotting, or baseline comparison.
//!
//! # Machine-readable output
//!
//! When the `CMPSIM_BENCH_DIR` environment variable names a directory,
//! each bench target additionally writes `BENCH_<target>.json` there
//! (every benchmark id with mean/min ns per iteration) and appends one
//! JSON line per invocation to `bench_trajectory.jsonl` — an
//! append-only performance trajectory CI can diff across commits.

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// One benchmark's collected measurement.
#[derive(Debug, Clone)]
struct Record {
    id: String,
    mean_ns: u128,
    min_ns: u128,
    samples: usize,
}

/// Results collected by every `report` call in this process, drained by
/// [`finish_run`].
static RESULTS: Mutex<Vec<Record>> = Mutex::new(Vec::new());

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Writes the machine-readable artifacts for one bench target run.
/// Called by `criterion_main!` after every group has run; a no-op
/// unless `CMPSIM_BENCH_DIR` is set. Never panics: benches still
/// report to stdout when the directory is unwritable.
pub fn finish_run(target: &str) {
    let Ok(dir) = std::env::var("CMPSIM_BENCH_DIR") else { return };
    let records = std::mem::take(&mut *RESULTS.lock().expect("results lock"));
    let unix_ms = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_millis())
        .unwrap_or(0);
    let rows: Vec<String> = records
        .iter()
        .map(|r| {
            format!(
                "{{\"id\":\"{}\",\"mean_ns\":{},\"min_ns\":{},\"samples\":{}}}",
                json_escape(&r.id),
                r.mean_ns,
                r.min_ns,
                r.samples
            )
        })
        .collect();
    let doc = format!(
        "{{\"bench\":\"{}\",\"unix_ms\":{},\"results\":[{}]}}\n",
        json_escape(target),
        unix_ms,
        rows.join(",")
    );
    let path = format!("{dir}/BENCH_{target}.json");
    if let Err(e) = std::fs::write(&path, &doc) {
        eprintln!("criterion-shim: cannot write {path}: {e}");
        return;
    }
    // The trajectory file accumulates one record per run, so perf can
    // be compared across commits without parsing stdout.
    let traj = format!("{dir}/bench_trajectory.jsonl");
    use std::io::Write as _;
    match std::fs::OpenOptions::new().create(true).append(true).open(&traj) {
        Ok(mut f) => {
            let _ = f.write_all(doc.as_bytes());
        }
        Err(e) => eprintln!("criterion-shim: cannot append {traj}: {e}"),
    }
}

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// A `name/parameter` id.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        Self { id: format!("{name}/{parameter}") }
    }

    /// An id that is just the parameter (group name supplies the rest).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug, Default)]
pub struct Bencher {
    samples: Vec<Duration>,
    sample_size: usize,
}

impl Bencher {
    /// Measures `f`, recording `sample_size` timed samples after one
    /// warm-up call.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        std::hint::black_box(f()); // warm-up
        for _ in 0..self.sample_size {
            let t0 = Instant::now();
            std::hint::black_box(f());
            self.samples.push(t0.elapsed());
        }
    }
}

fn report(id: &str, samples: &[Duration]) {
    if samples.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let ns: Vec<u128> = samples.iter().map(|d| d.as_nanos()).collect();
    let mean = ns.iter().sum::<u128>() / ns.len() as u128;
    let min = *ns.iter().min().expect("non-empty");
    println!("{id:<40} mean {mean:>12} ns/iter   min {min:>12} ns/iter   ({} samples)", ns.len());
    RESULTS.lock().expect("results lock").push(Record {
        id: id.to_string(),
        mean_ns: mean,
        min_ns: min,
        samples: ns.len(),
    });
}

/// Benchmark registry and runner (simplified).
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 10 }
    }
}

impl Criterion {
    /// Runs one standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(id, &b.samples);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { name: name.into(), sample_size: self.sample_size, _c: self }
    }
}

/// A group of related benchmarks sharing a name prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _c: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Overrides the per-benchmark sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b, input);
        report(&format!("{}/{}", self.name, id.id), &b.samples);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let mut b = Bencher { samples: Vec::new(), sample_size: self.sample_size };
        f(&mut b);
        report(&format!("{}/{id}", self.name), &b.samples);
        self
    }

    /// Ends the group (reporting already happened per benchmark).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into one runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
}

/// Generates `main` running the listed groups, then writing the
/// machine-readable artifacts when `CMPSIM_BENCH_DIR` is set
/// (`BENCH_<target>.json` plus a `bench_trajectory.jsonl` append).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::finish_run(env!("CARGO_CRATE_NAME"));
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_closure() {
        let mut c = Criterion::default();
        let mut runs = 0u32;
        c.bench_function("counts", |b| b.iter(|| runs += 1));
        // One warm-up + sample_size timed runs.
        assert_eq!(runs, 11);
    }

    #[test]
    fn group_sample_size_applies() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("g");
        g.sample_size(3);
        let mut runs = 0u32;
        g.bench_with_input(BenchmarkId::from_parameter("p"), &5u32, |b, &x| {
            b.iter(|| runs += x)
        });
        g.finish();
        assert_eq!(runs, 20); // (1 warm-up + 3 samples) * 5
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("a", 3).id, "a/3");
        assert_eq!(BenchmarkId::from_parameter("x").id, "x");
    }

    #[test]
    fn finish_run_writes_artifacts() {
        let dir = std::env::temp_dir().join(format!("criterion-shim-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("temp dir");
        std::env::set_var("CMPSIM_BENCH_DIR", &dir);
        let mut c = Criterion::default();
        c.bench_function("artifact/check", |b| b.iter(|| 1 + 1));
        finish_run("shimtest");
        std::env::remove_var("CMPSIM_BENCH_DIR");
        let json =
            std::fs::read_to_string(dir.join("BENCH_shimtest.json")).expect("bench artifact");
        assert!(json.contains("\"bench\":\"shimtest\""), "{json}");
        assert!(json.contains("\"id\":\"artifact/check\""), "{json}");
        let traj =
            std::fs::read_to_string(dir.join("bench_trajectory.jsonl")).expect("trajectory");
        assert!(traj.lines().count() >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
