//! Table VII — storage overhead of the protocols depending on the number
//! of cores and areas of the chip.

use cmpsim::report::table;
use cmpsim_power::overhead_percent;
use cmpsim_protocols::ProtocolKind;

fn main() {
    println!("== Table VII: storage overhead vs cores x areas ==\n");
    for cores in [64u64, 128, 256, 512, 1024] {
        let areas: Vec<u64> =
            (1..=10).map(|i| 1u64 << i).filter(|&a| a <= cores && a >= 2).collect();
        let mut header: Vec<String> = vec![format!("{cores} cores")];
        header.extend(areas.iter().map(|a| format!("{a} areas")));
        let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        let rows: Vec<Vec<String>> = ProtocolKind::all()
            .iter()
            .map(|&kind| {
                let mut row = vec![kind.name().to_string()];
                row.extend(
                    areas
                        .iter()
                        .map(|&a| format!("{:.1}%", overhead_percent(kind, cores, a))),
                );
                row
            })
            .collect();
        println!("{}", table(&header_refs, &rows));
    }
    println!(
        "(Directory/DiCo are area-independent; DiCo-Providers grows with the\n\
         area count; DiCo-Arin is minimized at intermediate area counts —\n\
         compare with the paper's Table VII.)"
    );
}
