//! §V-D link-count analysis: the paper's analytic hop counts for 2-hop
//! misses — 10.6 links chip-wide vs 5.4 links inside a 16-tile area on
//! the 8x8 mesh, and the 256-tile / 4-tile-area projection — verified
//! against the mesh model.

use cmpsim::report::table;
use cmpsim_noc::{Mesh, NocConfig};

fn avg_round_trip(cfg: NocConfig, within_area: Option<usize>) -> f64 {
    let mesh = Mesh::new(cfg);
    let tiles = cfg.tiles();
    let area_cols = (within_area.unwrap_or(tiles) as f64).sqrt() as usize;
    let in_area = |t: usize| {
        within_area
            .map(|_| (t % cfg.cols) < area_cols && (t / cfg.cols) < area_cols)
            .unwrap_or(true)
    };
    let mut sum = 0u64;
    let mut n = 0u64;
    for a in 0..tiles {
        for b in 0..tiles {
            if a != b && in_area(a) && in_area(b) {
                sum += 2 * mesh.distance(a, b);
                n += 1;
            }
        }
    }
    sum as f64 / n as f64
}

fn main() {
    println!("== Paper §V-D: links traversed by a two-hop miss ==\n");
    let m8 = NocConfig { cols: 8, rows: 8, ..NocConfig::default() };
    let m16 = NocConfig { cols: 16, rows: 16, ..NocConfig::default() };
    let rows = vec![
        vec![
            "8x8 chip-wide (paper: 10.6)".to_string(),
            format!("{:.1}", avg_round_trip(m8, None)),
        ],
        vec![
            "8x8 within a 16-tile area (paper: 5.4)".to_string(),
            format!("{:.1}", avg_round_trip(m8, Some(16))),
        ],
        vec![
            "16x16 chip-wide (paper: 21.3)".to_string(),
            format!("{:.1}", avg_round_trip(m16, None)),
        ],
        vec![
            "16x16 within a 4-tile area (paper: 2.6)".to_string(),
            format!("{:.1}", avg_round_trip(m16, Some(4))),
        ],
        vec![
            "16x16 3-hop indirection (paper: 32)".to_string(),
            format!("{:.1}", 1.5 * avg_round_trip(m16, None)),
        ],
    ];
    println!("{}", table(&["path", "avg links"], &rows));
    println!(
        "Shortened (in-area) misses traverse ~{}% fewer links than chip-wide\n\
         two-hop misses on the 8x8 mesh — the paper reports 38-40% fewer\n\
         links than DiCo for provider-resolved misses.",
        (100.0 * (1.0 - avg_round_trip(m8, Some(16)) / avg_round_trip(m8, None))) as i64
    );
}
