//! Developer probe: one-line summaries (throughput, miss rates, energy,
//! broadcast counts, miss classes) for all four protocols on one
//! benchmark. Usage: `sweep_probe [refs_per_core] [apache|jbb|radix]`.

use cmpsim::*;
fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(40_000);
    let bench = match std::env::args().nth(2).as_deref() {
        Some("jbb") => Benchmark::Jbb,
        Some("radix") => Benchmark::Radix,
        _ => Benchmark::Apache,
    };
    let cfg = SystemConfig::paper().with_refs(refs);
    let results = run_matrix(&ProtocolKind::all(), &[bench], &cfg).expect("simulation failed");
    let base = results[0].total_dynamic_nj();
    let base_perf = results[0].performance();
    for r in &results {
        println!(
            "{:<15} thr={:.4} ({:+.1}%) l1mr={:.3} l2mr={:.3} cache={:.0}uJ net={:.0}uJ tot({:+.1}%) bcasts={} links/msg={:.1} provhits={:.2}",
            r.protocol.name(), r.throughput(),
            100.0*(r.performance()/base_perf-1.0),
            r.l1_miss_rate(), r.l2_miss_rate(),
            r.cache_energy.total()/1000.0, r.net_energy.total()/1000.0,
            100.0*(r.total_dynamic_nj()/base-1.0),
            r.proto_stats.broadcast_invs.get(),
            r.avg_links_per_message(),
            r.miss_class_frac(MissClass::PredictedProviderHit),
        );
        println!("    classes: {:?}", r.proto_stats.miss_class);
    }
}
