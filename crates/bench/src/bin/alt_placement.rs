//! The "-alt" study (paper Figure 6 + §V-C/§V-D): VMs shifted so every
//! VM straddles two areas. The paper reports no significant performance
//! change and only a logical increase in DiCo-Arin broadcast traffic.

use cmpsim::report::table;
use cmpsim::{run_matrix, Benchmark, Placement, ProtocolKind};
use cmpsim_bench::report_config;

fn main() {
    let cfg = report_config();
    let benchmarks = [Benchmark::Apache, Benchmark::Radix];
    let protocols = ProtocolKind::all();

    let matched = run_matrix(&protocols, &benchmarks, &cfg).expect("simulation failed");
    let alt = run_matrix(
        &protocols,
        &benchmarks,
        &cfg.clone().with_placement(Placement::Alternative),
    )
    .expect("simulation failed");

    println!("== Alternative VM placement (paper Figure 6, '-alt' results) ==\n");
    let mut rows = Vec::new();
    for (bi, b) in benchmarks.iter().enumerate() {
        for (pi, p) in protocols.iter().enumerate() {
            let m = &matched[bi * protocols.len() + pi];
            let a = &alt[bi * protocols.len() + pi];
            rows.push(vec![
                format!("{}{}", b.name(), ""),
                p.name().to_string(),
                format!("{:.3}", a.performance() / m.performance()),
                format!("{:.3}", a.total_dynamic_nj() / m.total_dynamic_nj()),
                format!("{} -> {}", m.proto_stats.broadcast_invs.get(), a.proto_stats.broadcast_invs.get()),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["benchmark", "protocol", "perf alt/matched", "energy alt/matched", "broadcasts"],
            &rows
        )
    );
    println!(
        "Paper: no significant performance change in any protocol; DiCo-Arin\n\
         broadcasts grow (read/write data now shared between areas); the\n\
         proposals keep consuming less power than the directory."
    );
}
