//! Regenerates Figures 7, 8a, 8b, 9a and 9b (plus the §V-D hop summary)
//! from a single simulation sweep — the cheapest way to refresh
//! EXPERIMENTS.md.

use cmpsim_bench::figures::Sweep;
use cmpsim_bench::report_config;

fn main() {
    let cfg = report_config();
    eprintln!(
        "running {} benchmarks x 4 protocols at {} refs/core ...",
        cmpsim::Benchmark::all().len(),
        cfg.refs_per_core
    );
    let sweep = Sweep::run(&cfg);
    println!("{}", sweep.figure7());
    println!("{}", sweep.figure8a());
    println!("{}", sweep.figure8b());
    println!("{}", sweep.figure9a());
    println!("{}", sweep.figure9b());
    println!("{}", sweep.hop_summary());
    println!("{}", sweep.latency_summary());
}
