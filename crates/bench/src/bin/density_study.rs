//! The paper's closing projection (§V-D/§VI): "as the number of tiles
//! and VMs increases, this potential benefit should grow ... we expect
//! that as virtualization density increases, with tens of virtual
//! machines running in a single server, the advantages of our proposals
//! will become even more noticeable."
//!
//! This study raises the consolidation density on the 64-tile chip from
//! 4 VMs (16 cores each) to 16 VMs (4 cores each, 4-tile areas) and
//! compares the directory against the proposals at both densities.

use cmpsim::report::{pct_delta, table};
use cmpsim::{run_matrix, Benchmark, ProtocolKind, SystemConfig};
use cmpsim_protocols::common::ChipSpec;

fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let protocols = ProtocolKind::all();
    println!("== Virtualization-density study (apache, {refs} refs/core) ==\n");
    let mut rows = Vec::new();
    for (vms, label) in [(4usize, "4 VMs x 16 cores"), (16, "16 VMs x 4 cores")] {
        let cfg = SystemConfig {
            chip: ChipSpec::paper_with_areas(vms),
            num_vms: vms,
            ..SystemConfig::paper()
        }
        .with_refs(refs);
        let results =
            run_matrix(&protocols, &[Benchmark::Apache], &cfg).expect("simulation failed");
        let base = &results[0];
        for (pi, p) in protocols.iter().enumerate() {
            let r = &results[pi];
            rows.push(vec![
                label.to_string(),
                p.name().to_string(),
                pct_delta(r.performance(), base.performance()),
                pct_delta(r.total_dynamic_nj(), base.total_dynamic_nj()),
                format!("{:.2}", r.avg_links_per_message()),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["density", "protocol", "perf vs dir", "energy vs dir", "links/msg"],
            &rows
        )
    );
    println!(
        "Paper projection (§VI): the advantages grow with density. Note that\n\
         in this synthetic setting the denser configuration also shrinks each\n\
         VM's cache share and dedup pool, which offsets part of the gain —\n\
         see EXPERIMENTS.md."
    );
}
