//! Full (benchmark x protocol) sweep exported as CSV on stdout — the
//! raw data behind Figures 7/8/9 for external plotting.

use cmpsim_bench::figures::Sweep;
use cmpsim_bench::report_config;

fn main() {
    let sweep = Sweep::run(&report_config());
    print!("{}", sweep.to_csv());
}
