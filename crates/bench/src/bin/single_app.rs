//! The paper's §III non-virtualized scenario: one application (one "VM")
//! uses all 64 cores across the 4 hard-wired areas. The claim: "the data
//! shared by several areas can still be accessed without leaving the
//! areas of the requestors, so we still have the benefits of shortened
//! misses ... and the power benefits of the smaller directory
//! entries", making the proposals attractive beyond server
//! consolidation.

use cmpsim::report::{pct_delta, table};
use cmpsim::{run_matrix, Benchmark, ProtocolKind, SystemConfig};
use cmpsim_bench::{obs_from_env, write_observability};

fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    let mut cfg = obs_from_env(SystemConfig::paper().with_refs(refs));
    cfg.num_vms = 1; // one application on all 64 cores; areas stay hard-wired
    println!("== Single application on all 64 cores (4 hard-wired areas) ==\n");
    let results =
        run_matrix(&ProtocolKind::all(), &[Benchmark::Apache], &cfg).expect("simulation failed");
    for r in &results {
        write_observability(r, &r.protocol.name().to_lowercase());
    }
    let base = &results[0];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.protocol.name().to_string(),
                pct_delta(r.performance(), base.performance()),
                pct_delta(r.total_dynamic_nj(), base.total_dynamic_nj()),
                format!("{:.2}", r.avg_links_per_message()),
                r.proto_stats.broadcast_invs.get().to_string(),
            ]
        })
        .collect();
    println!(
        "{}",
        table(&["protocol", "perf vs dir", "energy vs dir", "links/msg", "bcasts"], &rows)
    );
    println!(
        "Expected: the proposals still beat the directory (owners stay near\n\
         their threads; providers shorten cross-area trips) — DiCo-Arin pays\n\
         broadcasts for the now chip-wide read/write shared data."
    );
}
