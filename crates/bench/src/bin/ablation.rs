//! Ablation study for the two prediction mechanisms DESIGN.md calls
//! out: the L1C$ supplier prediction (paper §IV-A2) and the Figure-5
//! hint messages sent when ownership/providership moves. Runs
//! DiCo-Providers on apache with each mechanism toggled.

use cmpsim::report::table;
use cmpsim::{run_benchmark, Benchmark, MissClass, ProtocolKind, SystemConfig};

fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    println!("== Prediction/hint ablation (DiCo-Providers, apache, {refs} refs/core) ==\n");
    let mut rows = Vec::new();
    for (pred, hints, label) in [
        (true, true, "prediction + hints (paper)"),
        (true, false, "prediction, no hints"),
        (false, false, "no prediction (always via home)"),
    ] {
        let mut cfg = SystemConfig::paper().with_refs(refs);
        cfg.chip.enable_prediction = pred;
        cfg.chip.enable_hints = hints;
        let r = run_benchmark(ProtocolKind::DiCoProviders, Benchmark::Apache, &cfg)
            .expect("simulation failed");
        let predicted = r.miss_class_frac(MissClass::PredictedOwnerHit)
            + r.miss_class_frac(MissClass::PredictedProviderHit);
        rows.push(vec![
            label.to_string(),
            format!("{:.4}", r.throughput()),
            format!("{:.1} uJ", r.total_dynamic_uj()),
            format!("{:.2}", r.avg_links_per_message()),
            format!("{:.1}%", 100.0 * predicted),
            format!("{:.1}%", 100.0 * r.miss_class_frac(MissClass::PredictionFailed)),
        ]);
    }
    println!(
        "{}",
        table(
            &["configuration", "throughput", "dyn energy", "links/msg", "pred hits", "mispredicts"],
            &rows
        )
    );
    println!(
        "The L1C$ prediction is what buys the 2-hop misses (paper §II-B);\n\
         hints keep predictions fresh across ownership movement (Figure 5).\n\
         Disabling prediction reverts every miss to home indirection."
    );
}
