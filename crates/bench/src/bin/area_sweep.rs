//! Ablation: the area-count trade-off the paper calls out in §V-B —
//! "using smaller areas implies that providers will be closer to the
//! requestors but also that finding a provider in the area is less
//! likely" — plus the storage overhead per choice. Runs DiCo-Providers
//! and DiCo-Arin on apache with 2, 4, 8 and 16 areas (one VM per area).

use cmpsim::report::table;
use cmpsim::{run_benchmark, Benchmark, ProtocolKind, SystemConfig};
use cmpsim_power::overhead_percent;
use cmpsim_protocols::common::ChipSpec;

fn main() {
    let refs: u64 = std::env::args().nth(1).and_then(|s| s.parse().ok()).unwrap_or(20_000);
    println!("== Area-count ablation (apache, {refs} refs/core, 1 VM per area) ==\n");
    let mut rows = Vec::new();
    for kind in [ProtocolKind::DiCoProviders, ProtocolKind::DiCoArin] {
        for areas in [2usize, 4, 8, 16] {
            let cfg = SystemConfig {
                chip: ChipSpec::paper_with_areas(areas),
                num_vms: areas,
                ..SystemConfig::paper()
            }
            .with_refs(refs);
            let r = run_benchmark(kind, Benchmark::Apache, &cfg).expect("simulation failed");
            rows.push(vec![
                kind.name().to_string(),
                areas.to_string(),
                format!("{:.4}", r.throughput()),
                format!("{:.1} uJ", r.total_dynamic_uj()),
                format!("{:.2}", r.avg_links_per_message()),
                format!("{:.1}%", overhead_percent(kind, 64, areas as u64)),
            ]);
        }
    }
    println!(
        "{}",
        table(
            &["protocol", "areas", "throughput", "dyn energy", "links/msg", "storage ovh"],
            &rows
        )
    );
    println!(
        "Expected trade-off: smaller areas shorten in-area trips (links/msg)\n\
         but shrink each area's chance of holding a provider; DiCo-Providers'\n\
         storage grows with the area count while DiCo-Arin's dips at 4 areas."
    );
}
