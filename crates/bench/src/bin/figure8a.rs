//! Regenerates the paper's Figure8a from a full (benchmark x protocol)
//! simulation sweep. Pass the per-core reference budget as the first
//! argument (default 60000).

use cmpsim_bench::figures::Sweep;
use cmpsim_bench::report_config;

fn main() {
    let sweep = Sweep::run(&report_config());
    print!("{}", sweep.figure8a());
}
