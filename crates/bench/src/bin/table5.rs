//! Table V — memory overhead introduced by coherence information (per
//! tile) in the 8x8 tiled CMP with 4 areas.

use cmpsim::report::table;
use cmpsim_power::{overhead_percent, table_v_rows};
use cmpsim_protocols::ProtocolKind;

fn main() {
    println!("== Table V: per-tile coherence storage (64 cores, 4 areas) ==\n");
    let paper = [
        (ProtocolKind::Directory, 12.56),
        (ProtocolKind::DiCo, 13.21),
        (ProtocolKind::DiCoProviders, 5.14),
        (ProtocolKind::DiCoArin, 4.49),
    ];
    for (kind, paper_pct) in paper {
        let rows: Vec<Vec<String>> = table_v_rows(kind, 64, 4)
            .iter()
            .map(|r| {
                vec![
                    r.structure.to_string(),
                    format!("{} bits", r.entry_bits),
                    r.entries.to_string(),
                    format!("{:.2} KB", r.kib),
                ]
            })
            .collect();
        println!("{}", kind.name());
        println!("{}", table(&["structure", "entry", "entries", "size"], &rows));
        let got = overhead_percent(kind, 64, 4);
        println!("overhead: {got:.2}%   (paper: {paper_pct}%)\n");
    }
}
