//! Table VI — leakage power of the caches per tile.

use cmpsim::report::table;
use cmpsim_power::leakage_per_tile;
use cmpsim_protocols::ProtocolKind;

fn main() {
    println!("== Table VI: leakage power per tile (64 cores, 4 areas, 32 nm-calibrated) ==\n");
    let paper = [
        (ProtocolKind::Directory, 239.0, 37.0),
        (ProtocolKind::DiCo, 241.0, 39.0),
        (ProtocolKind::DiCoProviders, 222.0, 20.0),
        (ProtocolKind::DiCoArin, 219.0, 17.0),
    ];
    let dir = leakage_per_tile(ProtocolKind::Directory, 64, 4);
    let rows: Vec<Vec<String>> = paper
        .iter()
        .map(|&(kind, p_total, p_tag)| {
            let l = leakage_per_tile(kind, 64, 4);
            vec![
                kind.name().to_string(),
                format!("{:.0} mW", l.total_mw),
                format!("{p_total:.0} mW"),
                format!("{:+.0}%", l.total_diff_percent(&dir)),
                format!("{:.0} mW", l.tag_mw),
                format!("{p_tag:.0} mW"),
                format!("{:+.0}%", l.tag_diff_percent(&dir)),
            ]
        })
        .collect();
    println!(
        "{}",
        table(
            &["protocol", "total", "paper", "vs dir", "tags", "paper", "vs dir"],
            &rows
        )
    );
}
