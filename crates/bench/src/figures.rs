//! Shared simulation sweep + formatting for the Figure 7/8/9 report
//! binaries. One full (benchmark x protocol) matrix feeds every figure;
//! the `all_figures` binary prints them all from a single sweep.

use cmpsim::report::table;
use cmpsim::{run_matrix, Benchmark, MissClass, ProtocolKind, RunResult, SystemConfig};

/// All results for the standard sweep, row-major `benchmarks x protocols`.
pub struct Sweep {
    /// Benchmarks, in Table IV order.
    pub benchmarks: Vec<Benchmark>,
    /// Protocols, in the paper's order.
    pub protocols: Vec<ProtocolKind>,
    /// Results.
    pub results: Vec<RunResult>,
}

impl Sweep {
    /// Runs the full paper matrix, writing any environment-requested
    /// observability artifacts per cell (see
    /// [`crate::write_observability`]).
    pub fn run(cfg: &SystemConfig) -> Self {
        let benchmarks = Benchmark::all().to_vec();
        let protocols = ProtocolKind::all().to_vec();
        let results = run_matrix(&protocols, &benchmarks, cfg).expect("simulation failed");
        for r in &results {
            let tag = format!("{}-{}", r.protocol.name().to_lowercase(), r.benchmark.name());
            crate::write_observability(r, &tag);
        }
        Self { benchmarks, protocols, results }
    }

    /// Result for `(benchmark row, protocol column)`.
    pub fn at(&self, b: usize, p: usize) -> &RunResult {
        &self.results[b * self.protocols.len() + p]
    }

    fn header(&self) -> Vec<String> {
        let mut h = vec!["benchmark".to_string()];
        h.extend(self.protocols.iter().map(|p| p.name().to_string()));
        h
    }

    fn fmt_table(&self, rows: Vec<Vec<String>>) -> String {
        let header = self.header();
        let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
        table(&refs, &rows)
    }

    /// Figure 7 — total dynamic power (cache + network), normalized to
    /// the directory's **cache** consumption per the paper's caption.
    pub fn figure7(&self) -> String {
        let mut out = String::from(
            "== Figure 7: total dynamic power, normalized to the directory's cache power ==\n\
             (each cell: total | cache + link + routing shares)\n\n",
        );
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let base = self.at(bi, 0).cache_energy.total();
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                let r = self.at(bi, pi);
                row.push(format!(
                    "{:.2} ({:.2}c+{:.2}l+{:.2}r)",
                    r.total_dynamic_nj() / base,
                    r.cache_energy.total() / base,
                    r.net_energy.links / base,
                    r.net_energy.routing / base,
                ));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out += "\nPaper: every proposal below the directory; up to -38% in apache;\n\
                DiCo-Arin's broadcasts make JBB its worst case (-4%).\n";
        out
    }

    /// Figure 8a — cache dynamic power breakdown.
    pub fn figure8a(&self) -> String {
        let mut out = String::from(
            "== Figure 8a: cache dynamic power, normalized to directory ==\n\
             (each cell: total | l1tag/l1data/l2tag/l2data/aux shares)\n\n",
        );
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let base = self.at(bi, 0).cache_energy.total();
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                let e = &self.at(bi, pi).cache_energy;
                row.push(format!(
                    "{:.2} ({:.2}/{:.2}/{:.2}/{:.2}/{:.2})",
                    e.total() / base,
                    e.l1_tag / base,
                    e.l1_data / base,
                    e.l2_tag / base,
                    e.l2_data / base,
                    e.aux / base,
                ));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out += "\nPaper: DiCo-family tag accesses cost more at L1 (embedded directory\n\
                info) but less at L2 (smaller entries); L2 reads are rarer.\n";
        out
    }

    /// Figure 8b — network dynamic power breakdown.
    pub fn figure8b(&self) -> String {
        let mut out = String::from(
            "== Figure 8b: network dynamic power, normalized to directory ==\n\
             (each cell: total | links + routing shares)\n\n",
        );
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let base = self.at(bi, 0).net_energy.total();
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                let e = &self.at(bi, pi).net_energy;
                row.push(format!(
                    "{:.2} ({:.2}l+{:.2}r)",
                    e.total() / base,
                    e.links / base,
                    e.routing / base,
                ));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out += "\nPaper: DiCo reduces network power vs the directory; providers reduce\n\
                it further; DiCo-Arin's broadcasts close the gap in JBB.\n";
        out
    }

    /// Figure 9a — performance normalized to the directory.
    pub fn figure9a(&self) -> String {
        let mut out =
            String::from("== Figure 9a: performance, normalized to directory (bigger is better) ==\n\n");
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let base = self.at(bi, 0).performance();
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                row.push(format!("{:.3}", self.at(bi, pi).performance() / base));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out += "\nPaper: +3% (DiCo-Providers) and +6% (DiCo-Arin) in apache; -2%\n\
                (DiCo-Arin) in JBB; no significant degradation elsewhere.\n";
        out
    }

    /// Figure 9b — L1 miss classification (per protocol, per benchmark).
    pub fn figure9b(&self) -> String {
        let mut out = String::from(
            "== Figure 9b: L1 misses by resolution class (fractions) ==\n\n",
        );
        for (bi, b) in self.benchmarks.iter().enumerate() {
            out += &format!("{}\n", b.name());
            let mut rows = Vec::new();
            for (pi, p) in self.protocols.iter().enumerate() {
                let r = self.at(bi, pi);
                let mut row = vec![p.name().to_string()];
                for class in MissClass::all() {
                    row.push(format!("{:.3}", r.miss_class_frac(class)));
                }
                rows.push(row);
            }
            let mut header = vec!["protocol"];
            let labels: Vec<&str> = MissClass::all().iter().map(|c| c.label()).collect();
            header.extend(labels.iter());
            out += &table(&header, &rows);
            out += "\n";
        }
        out += "Paper: a significant share of requests resolve at in-area providers\n\
                (21% for apache under DiCo-Providers); predictions mostly succeed.\n";
        out
    }

    /// Machine-readable export: one CSV row per (benchmark, protocol)
    /// with every metric the figures use. Feed it to any plotting tool.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "benchmark,protocol,cycles,measured_refs,throughput,performance,\
             l1_miss_rate,l2_miss_rate,cache_nj,net_links_nj,net_routing_nj,\
             links_per_msg,broadcasts,pred_owner,pred_provider,pred_failed,\
             unpred_home,unpred_forwarded,memory
",
        );
        for (bi, b) in self.benchmarks.iter().enumerate() {
            for (pi, p) in self.protocols.iter().enumerate() {
                let r = self.at(bi, pi);
                use cmpsim::MissClass as M;
                out += &format!(
                    "{},{},{},{},{:.6},{:.6e},{:.4},{:.4},{:.1},{:.1},{:.1},{:.3},{},{:.4},{:.4},{:.4},{:.4},{:.4},{:.4}
",
                    b.name(),
                    p.name(),
                    r.cycles,
                    r.measured_refs,
                    r.throughput(),
                    r.performance(),
                    r.l1_miss_rate(),
                    r.l2_miss_rate(),
                    r.cache_energy.total(),
                    r.net_energy.links,
                    r.net_energy.routing,
                    r.avg_links_per_message(),
                    r.proto_stats.broadcast_invs.get(),
                    r.miss_class_frac(M::PredictedOwnerHit),
                    r.miss_class_frac(M::PredictedProviderHit),
                    r.miss_class_frac(M::PredictionFailed),
                    r.miss_class_frac(M::UnpredictedHome),
                    r.miss_class_frac(M::UnpredictedForwarded),
                    r.miss_class_frac(M::Memory),
                );
            }
        }
        out
    }

    /// §V-D hop statistics: average links per message.
    pub fn hop_summary(&self) -> String {
        let mut out = String::from("== Links traversed per message (paper §V-D) ==\n\n");
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                row.push(format!("{:.2}", self.at(bi, pi).avg_links_per_message()));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out
    }

    /// §V-D miss-latency statistics (avg | p95 cycles).
    pub fn latency_summary(&self) -> String {
        let mut out = String::from(
            "== Average (p95) L1-miss latency in cycles (paper §V-D) ==\n\n",
        );
        let mut rows = Vec::new();
        for (bi, b) in self.benchmarks.iter().enumerate() {
            let mut row = vec![b.name().to_string()];
            for pi in 0..self.protocols.len() {
                let r = self.at(bi, pi);
                row.push(format!(
                    "{:.0} ({})",
                    r.avg_miss_latency(),
                    r.miss_latency_percentile(95.0)
                ));
            }
            rows.push(row);
        }
        out += &self.fmt_table(rows);
        out
    }
}
