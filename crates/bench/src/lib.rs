//! Shared helpers for the report binaries: each `src/bin/*.rs` target
//! regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index). The binaries print plain-text tables comparing the
//! paper's numbers with the measured ones; EXPERIMENTS.md records a
//! captured run.

use cmpsim::{RunResult, SystemConfig};

/// Reference budget for report runs; override with the first CLI
/// argument or the `CMPSIM_REFS` environment variable.
pub fn refs_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CMPSIM_REFS").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
}

/// The standard report configuration (paper chip + CLI reference
/// budget + the observability environment knobs).
pub fn report_config() -> SystemConfig {
    obs_from_env(SystemConfig::paper().with_refs(refs_from_args()))
}

/// Applies the observability environment knobs:
/// `CMPSIM_INTERVAL=<cycles>` turns on interval time-series sampling,
/// `CMPSIM_TRACE_OUT=<file>` turns on coherence-transaction tracing,
/// `CMPSIM_BREAKDOWN_OUT=<file>` (or `CMPSIM_ATTR=1`) turns on
/// critical-path & energy attribution. Runs made with the returned
/// config should pass through [`write_observability`] so the requested
/// files actually land.
pub fn obs_from_env(mut cfg: SystemConfig) -> SystemConfig {
    if let Some(n) = std::env::var("CMPSIM_INTERVAL").ok().and_then(|s| s.parse().ok()) {
        cfg = cfg.with_interval(n);
    }
    if std::env::var_os("CMPSIM_TRACE_OUT").is_some() {
        cfg = cfg.with_tracing();
    }
    if std::env::var_os("CMPSIM_ATTR").is_some()
        || std::env::var_os("CMPSIM_BREAKDOWN_OUT").is_some()
    {
        cfg = cfg.with_attribution();
    }
    cfg
}

/// Writes the environment-requested observability artifacts of one run:
/// the Chrome trace to `CMPSIM_TRACE_OUT` and the interval series next
/// to it (`<trace>.series.csv`) or to `CMPSIM_SERIES_OUT`. `tag`
/// distinguishes runs within one report (protocol/benchmark cell);
/// it is inserted before the file extension.
pub fn write_observability(r: &RunResult, tag: &str) {
    let suffixed = |path: &str| match path.rsplit_once('.') {
        Some((stem, ext)) if !tag.is_empty() => format!("{stem}-{tag}.{ext}"),
        _ if !tag.is_empty() => format!("{path}-{tag}"),
        _ => path.to_string(),
    };
    if let (Ok(path), Some(t)) = (std::env::var("CMPSIM_TRACE_OUT"), r.trace.as_ref()) {
        let path = suffixed(&path);
        let label = format!("{} on {}", r.protocol.name(), r.benchmark.name());
        if let Err(e) = std::fs::write(&path, r.stamp_artifact(t.to_chrome_json(&label))) {
            eprintln!("warning: cannot write trace to {path}: {e}");
        } else {
            eprintln!("trace written to {path}");
        }
    }
    if let Some(ts) = &r.timeseries {
        if let Ok(path) = std::env::var("CMPSIM_SERIES_OUT") {
            let path = suffixed(&path);
            let body =
                if path.ends_with(".csv") { ts.to_csv() } else { r.stamp_artifact(ts.to_json()) };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write time-series to {path}: {e}");
            } else {
                eprintln!("time-series written to {path}");
            }
        }
    }
    if r.breakdown.is_some() {
        if let Ok(path) = std::env::var("CMPSIM_BREAKDOWN_OUT") {
            let path = suffixed(&path);
            let results = std::slice::from_ref(r);
            let body = if path.ends_with(".csv") {
                cmpsim::report::breakdown_csv(results)
            } else {
                cmpsim::report::breakdown_json(results)
            };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write breakdown to {path}: {e}");
            } else {
                eprintln!("breakdown written to {path}");
            }
        }
    }
}

/// Formats a normalized series as percentages of the first element.
pub fn vs_base(results: &[&RunResult], f: impl Fn(&RunResult) -> f64) -> Vec<f64> {
    let base = f(results[0]);
    results.iter().map(|r| f(r) / base).collect()
}

pub mod figures;
