//! Shared helpers for the report binaries: each `src/bin/*.rs` target
//! regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index). The binaries print plain-text tables comparing the
//! paper's numbers with the measured ones; EXPERIMENTS.md records a
//! captured run.

use cmpsim::{RunResult, SystemConfig};

/// Reference budget for report runs; override with the first CLI
/// argument or the `CMPSIM_REFS` environment variable.
pub fn refs_from_args() -> u64 {
    std::env::args()
        .nth(1)
        .or_else(|| std::env::var("CMPSIM_REFS").ok())
        .and_then(|s| s.parse().ok())
        .unwrap_or(60_000)
}

/// The standard report configuration (paper chip + CLI reference budget).
pub fn report_config() -> SystemConfig {
    SystemConfig::paper().with_refs(refs_from_args())
}

/// Formats a normalized series as percentages of the first element.
pub fn vs_base(results: &[&RunResult], f: impl Fn(&RunResult) -> f64) -> Vec<f64> {
    let base = f(results[0]);
    results.iter().map(|r| f(r) / base).collect()
}

pub mod figures;
