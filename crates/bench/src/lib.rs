//! Shared helpers for the report binaries: each `src/bin/*.rs` target
//! regenerates one table or figure of the paper (see DESIGN.md's
//! experiment index). The binaries print plain-text tables comparing the
//! paper's numbers with the measured ones; EXPERIMENTS.md records a
//! captured run.

use cmpsim::{env, RunResult, SystemConfig};

/// Unwraps a `cmpsim::env` lookup for the report binaries: a malformed
/// variable aborts with exit code 2 instead of silently running a long
/// report under default settings.
fn env_or_die<T>(r: Result<Option<T>, env::EnvError>) -> Option<T> {
    r.unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    })
}

/// Reference budget for report runs; override with the first CLI
/// argument or the `CMPSIM_REFS` environment variable.
pub fn refs_from_args() -> u64 {
    if let Some(arg) = std::env::args().nth(1) {
        if let Ok(n) = arg.parse() {
            return n;
        }
        eprintln!("error: bad refs argument {arg:?} (want an integer)");
        std::process::exit(2);
    }
    env_or_die(env::parsed(env::REFS, "an integer")).unwrap_or(60_000)
}

/// The standard report configuration (paper chip + CLI reference
/// budget + the observability environment knobs).
pub fn report_config() -> SystemConfig {
    obs_from_env(SystemConfig::paper().with_refs(refs_from_args()))
}

/// Applies the observability environment knobs:
/// `CMPSIM_INTERVAL=<cycles>` turns on interval time-series sampling,
/// `CMPSIM_TRACE_OUT=<file>` turns on coherence-transaction tracing,
/// `CMPSIM_BREAKDOWN_OUT=<file>` (or `CMPSIM_ATTR=1`) turns on
/// critical-path & energy attribution. Runs made with the returned
/// config should pass through [`write_observability`] so the requested
/// files actually land.
pub fn obs_from_env(mut cfg: SystemConfig) -> SystemConfig {
    if let Some(n) = env_or_die(env::parsed(env::INTERVAL, "a cycle count (integer >= 1)")) {
        cfg = cfg.with_interval(n);
    }
    if env::flag(env::TRACE_OUT) {
        cfg = cfg.with_tracing();
    }
    if env::flag(env::ATTR) || env::flag(env::BREAKDOWN_OUT) {
        cfg = cfg.with_attribution();
    }
    cfg
}

/// Writes the environment-requested observability artifacts of one run:
/// the Chrome trace to `CMPSIM_TRACE_OUT` and the interval series next
/// to it (`<trace>.series.csv`) or to `CMPSIM_SERIES_OUT`. `tag`
/// distinguishes runs within one report (protocol/benchmark cell);
/// it is inserted before the file extension.
pub fn write_observability(r: &RunResult, tag: &str) {
    let suffixed = |path: &str| match path.rsplit_once('.') {
        Some((stem, ext)) if !tag.is_empty() => format!("{stem}-{tag}.{ext}"),
        _ if !tag.is_empty() => format!("{path}-{tag}"),
        _ => path.to_string(),
    };
    if let (Some(path), Some(t)) = (env::string(env::TRACE_OUT), r.trace.as_ref()) {
        let path = suffixed(&path);
        let label = format!("{} on {}", r.protocol.name(), r.benchmark.name());
        if let Err(e) = std::fs::write(&path, r.stamp_artifact(t.to_chrome_json(&label))) {
            eprintln!("warning: cannot write trace to {path}: {e}");
        } else {
            eprintln!("trace written to {path}");
        }
    }
    if let Some(ts) = &r.timeseries {
        if let Some(path) = env::string(env::SERIES_OUT) {
            let path = suffixed(&path);
            let body =
                if path.ends_with(".csv") { ts.to_csv() } else { r.stamp_artifact(ts.to_json()) };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write time-series to {path}: {e}");
            } else {
                eprintln!("time-series written to {path}");
            }
        }
    }
    if r.breakdown.is_some() {
        if let Some(path) = env::string(env::BREAKDOWN_OUT) {
            let path = suffixed(&path);
            let results = std::slice::from_ref(r);
            let body = if path.ends_with(".csv") {
                cmpsim::report::breakdown_csv(results)
            } else {
                cmpsim::report::breakdown_json(results)
            };
            if let Err(e) = std::fs::write(&path, body) {
                eprintln!("warning: cannot write breakdown to {path}: {e}");
            } else {
                eprintln!("breakdown written to {path}");
            }
        }
    }
}

/// Formats a normalized series as percentages of the first element.
pub fn vs_base(results: &[&RunResult], f: impl Fn(&RunResult) -> f64) -> Vec<f64> {
    let base = f(results[0]);
    results.iter().map(|r| f(r) / base).collect()
}

pub mod figures;
