//! Criterion benches for the protocol state machines, driven through the
//! fixed-latency test harness (no NoC): measures raw transaction
//! processing cost per protocol.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cmpsim_protocols::arin::Arin;
use cmpsim_protocols::common::{ChipSpec, CoherenceProtocol};
use cmpsim_protocols::dico::DiCo;
use cmpsim_protocols::directory::Directory;
use cmpsim_protocols::harness::{random_stress, Harness};
use cmpsim_protocols::providers::Providers;
use cmpsim_protocols::ProtocolKind;
use std::hint::black_box;

fn stress<P: CoherenceProtocol>(proto: P) -> u64 {
    let mut h = Harness::new(proto);
    random_stress(&mut h, 0xbe7c4, 40, 24, 0.3);
    h.total_completed()
}

fn bench_protocols(c: &mut Criterion) {
    let mut g = c.benchmark_group("protocol_stress_16tiles");
    for kind in ProtocolKind::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                let n = match kind {
                    ProtocolKind::Directory => stress(Directory::new(ChipSpec::small())),
                    ProtocolKind::DiCo => stress(DiCo::new(ChipSpec::small())),
                    ProtocolKind::DiCoProviders => stress(Providers::new(ChipSpec::small())),
                    ProtocolKind::DiCoArin => stress(Arin::new(ChipSpec::small())),
                };
                black_box(n)
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_protocols);
criterion_main!(benches);
