//! Criterion benches for the analytic models behind Tables V, VI and
//! VII — these run in microseconds and regenerate the table values.

use criterion::{criterion_group, criterion_main, Criterion};
use cmpsim_power::{leakage_per_tile, overhead_percent, EnergyModel};
use cmpsim_protocols::ProtocolKind;
use std::hint::black_box;

fn bench_tables(c: &mut Criterion) {
    c.bench_function("table5_overhead_all_protocols", |b| {
        b.iter(|| {
            for kind in ProtocolKind::all() {
                black_box(overhead_percent(kind, 64, 4));
            }
        })
    });
    c.bench_function("table6_leakage_all_protocols", |b| {
        b.iter(|| {
            for kind in ProtocolKind::all() {
                black_box(leakage_per_tile(kind, 64, 4));
            }
        })
    });
    c.bench_function("table7_full_sweep", |b| {
        b.iter(|| {
            for cores in [64u64, 128, 256, 512, 1024] {
                for shift in 1..=10 {
                    let areas = 1u64 << shift;
                    if areas > cores {
                        break;
                    }
                    for kind in ProtocolKind::all() {
                        black_box(overhead_percent(kind, cores, areas));
                    }
                }
            }
        })
    });
    c.bench_function("energy_model_build", |b| {
        b.iter(|| black_box(EnergyModel::new(ProtocolKind::DiCoProviders, 64, 4)))
    });
}

criterion_group!(benches, bench_tables);
criterion_main!(benches);
