//! Overhead of the observability layers: the same reduced run with the
//! coherence tracer and the interval sampler off (the default
//! allocation-free hot path) and on. With both disabled the per-event
//! cost is a pair of `Option` tests, so "baseline" and the seed's
//! numbers should be indistinguishable; the enabled variants bound what
//! `--trace-out`/`--interval` cost.

use cmpsim::{run_benchmark, Benchmark, ProtocolKind, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_observability(c: &mut Criterion) {
    let base = SystemConfig::paper().with_refs(1_000);
    let variants: [(&str, SystemConfig); 5] = [
        ("baseline", base.clone()),
        ("tracing", base.clone().with_tracing()),
        ("interval", base.clone().with_interval(5_000)),
        ("attribution", base.clone().with_attribution()),
        ("both", base.clone().with_tracing().with_interval(5_000)),
    ];
    let mut g = c.benchmark_group("observability_overhead_apache_1k_refs");
    g.sample_size(10);
    for (name, cfg) in &variants {
        g.bench_function(name, |b| {
            b.iter(|| {
                black_box(
                    run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, cfg)
                        .expect("run")
                        .cycles,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_observability);
criterion_main!(benches);
