//! Event-loop throughput bench: events/s per protocol on the small
//! 16-tile configuration, the perf-regression smoke target.
//!
//! One iteration is one full apache run (4k refs/core). The event count
//! of a run is deterministic for a fixed config+seed, so ns/iter and
//! events/s are interchangeable; the `EVENTS <protocol> <count>` lines
//! on stdout let `cmpsim-cli compare --baseline` convert the
//! `BENCH_events_per_sec.json` timings into events/s against the
//! checked-in `reports/bench_baseline.json`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cmpsim::{
    run_benchmark, run_benchmark_with_store, Benchmark, ProtocolKind, SnapshotStore, SystemConfig,
};
use std::hint::black_box;

fn bench_events_per_sec(c: &mut Criterion) {
    let mut cfg = SystemConfig::small();
    cfg.refs_per_core = 4_000;
    let mut g = c.benchmark_group("small_apache_4k_refs");
    // min-of-N is the regression-gate statistic; a generous sample
    // count keeps it stable on noisy shared hosts.
    g.sample_size(20);
    for kind in ProtocolKind::all() {
        let events = run_benchmark(kind, Benchmark::Apache, &cfg).expect("run").host.events;
        println!("EVENTS {} {}", kind.name(), events);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| black_box(run_benchmark(kind, Benchmark::Apache, &cfg).expect("run").cycles))
        });
    }
    g.finish();
}

/// The snapshot/fork path: the same run as `small_apache_4k_refs`, but
/// every timed iteration forks from a warmed in-memory checkpoint and
/// simulates the measure phase only. The gap between the two groups is
/// the warm-up cost the snapshot engine amortizes across a sweep; a
/// regression here means forking stopped paying for itself.
fn bench_matrix_warm_fork(c: &mut Criterion) {
    let mut cfg = SystemConfig::small();
    cfg.refs_per_core = 4_000;
    let mut g = c.benchmark_group("matrix_warm_fork");
    g.sample_size(20);
    for kind in ProtocolKind::all() {
        let store = SnapshotStore::in_memory();
        // The first run warms up and captures; every timed iteration
        // below restores from that image.
        let cold = run_benchmark_with_store(kind, Benchmark::Apache, &cfg, Some(&store))
            .expect("populating run");
        assert_eq!(store.cached(), 1, "capture failed; the bench would time cold runs");
        let warm = run_benchmark_with_store(kind, Benchmark::Apache, &cfg, Some(&store))
            .expect("warm run");
        assert_eq!(cold.cycles, warm.cycles, "forked run diverged from its parent");
        println!("EVENTS matrix_warm_fork/{} {}", kind.name(), warm.host.events);
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| {
                black_box(
                    run_benchmark_with_store(kind, Benchmark::Apache, &cfg, Some(&store))
                        .expect("run")
                        .cycles,
                )
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_events_per_sec, bench_matrix_warm_fork);
criterion_main!(benches);
