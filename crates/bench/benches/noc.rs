//! Criterion benches for the mesh NoC model (unicast routing with
//! contention, broadcast trees).

use criterion::{criterion_group, criterion_main, Criterion};
use cmpsim_noc::{Mesh, NocConfig};
use std::hint::black_box;

fn bench_noc(c: &mut Criterion) {
    c.bench_function("mesh_unicast_1k_messages", |b| {
        b.iter(|| {
            let mut m = Mesh::new(NocConfig::default());
            let mut t = 0;
            for i in 0..1000u64 {
                let src = (i * 7 % 64) as usize;
                let dst = (i * 13 % 64) as usize;
                t = m.send(t, src, dst, 5).arrival;
            }
            black_box(m.stats().flit_link_traversals.get())
        })
    });
    c.bench_function("mesh_broadcast", |b| {
        b.iter(|| {
            let mut m = Mesh::new(NocConfig::default());
            for i in 0..50u64 {
                black_box(m.broadcast(i * 100, (i % 64) as usize, 1));
            }
        })
    });
}

criterion_group!(benches, bench_noc);
criterion_main!(benches);
