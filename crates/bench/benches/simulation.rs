//! Criterion benches for whole-chip simulation throughput: one reduced
//! apache run per protocol on the 64-tile paper configuration. These are
//! the heavyweight benches (seconds each); the figure binaries reuse the
//! same machinery at larger budgets.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use cmpsim::{run_benchmark, Benchmark, ProtocolKind, SystemConfig};
use std::hint::black_box;

fn bench_simulation(c: &mut Criterion) {
    let cfg = SystemConfig::paper().with_refs(2_000);
    let mut g = c.benchmark_group("apache_64tiles_2k_refs");
    g.sample_size(10);
    for kind in ProtocolKind::all() {
        g.bench_with_input(BenchmarkId::from_parameter(kind.name()), &kind, |b, &kind| {
            b.iter(|| black_box(run_benchmark(kind, Benchmark::Apache, &cfg).expect("run").cycles))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_simulation);
criterion_main!(benches);
