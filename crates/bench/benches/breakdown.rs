//! Cost of critical-path & energy attribution, per protocol. Each pair
//! runs the same reduced workload with attribution off and on; the gap
//! bounds what `cmpsim-cli breakdown` / `--attr` cost on top of a plain
//! run. With `CMPSIM_BENCH_DIR` set, the shim writes
//! `BENCH_breakdown.json` and appends the perf-trajectory record, so CI
//! can track the overhead across commits.

use cmpsim::{run_benchmark, Benchmark, ProtocolKind, SystemConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_breakdown(c: &mut Criterion) {
    let base = SystemConfig::paper().with_refs(1_000);
    let mut g = c.benchmark_group("attribution_overhead_radix_1k_refs");
    g.sample_size(10);
    for kind in ProtocolKind::all() {
        for (tag, cfg) in [("plain", base.clone()), ("attr", base.clone().with_attribution())] {
            g.bench_function(&format!("{}/{tag}", kind.name()), |b| {
                b.iter(|| {
                    black_box(
                        run_benchmark(kind, Benchmark::Radix, &cfg).expect("run").cycles,
                    )
                })
            });
        }
    }
    g.finish();
}

criterion_group!(benches, bench_breakdown);
criterion_main!(benches);
