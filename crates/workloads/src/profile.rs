//! Benchmark profiles calibrated to the paper's Table IV.

/// How the paper scores a benchmark (Table IV, "Performance Metric").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Metric {
    /// Transactions completed in a fixed cycle budget (bigger is better):
    /// apache, jbb, mixed-com.
    Throughput,
    /// Average execution time of all the VMs (smaller is better): the
    /// scientific codes and mixed-sci.
    ExecTime,
}

/// Statistical model of one benchmark running inside a VM.
///
/// Page pools are per VM: each of the VM's cores owns
/// `private_pages_per_core` pages, the VM's cores share
/// `vm_shared_pages` read-write pages, and all VMs share the
/// deduplicated pool (`dedup_pages` logical pages per VM, all backed by
/// the same physical pages).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WorkloadProfile {
    /// Display name.
    pub name: &'static str,
    /// Core-private pool size, pages.
    pub private_pages_per_core: u64,
    /// Intra-VM shared read-write pool size, pages.
    pub vm_shared_pages: u64,
    /// Deduplicated read-only pool size (per VM, logical), pages.
    pub dedup_pages: u64,
    /// Probability an access targets the VM-shared pool.
    pub p_vm_shared: f64,
    /// Probability an access targets the deduplicated pool.
    pub p_dedup: f64,
    /// Write fraction for core-private accesses.
    pub write_frac_private: f64,
    /// Write fraction for VM-shared accesses.
    pub write_frac_shared: f64,
    /// Write fraction for dedup accesses (tiny; each write takes a
    /// copy-on-write fault and un-deduplicates the page for that VM).
    pub write_frac_dedup: f64,
    /// Zipf exponent for page popularity within each pool.
    pub zipf: f64,
    /// Probability the next reference continues sequentially in the same
    /// page (spatial locality / streaming).
    pub spatial_locality: f64,
    /// Mean consecutive references to the same 64-byte block (word-level
    /// reuse within a cache line; first-order control of the L1 miss
    /// rate).
    pub block_repeats: u64,
    /// Blocks actually used per 4 KiB page (<= 64): densely-packed hot
    /// structures touch only part of each page, which controls the
    /// per-core cache footprint independently of the page-pool sizes
    /// (and therefore of the Table-IV deduplication ratios).
    pub page_span: u64,
    /// Mean non-memory cycles between references (in-order 2-way core).
    pub gap_mean: u64,
}

impl WorkloadProfile {
    /// Fraction of memory saved by deduplication when `num_vms` VMs map
    /// all their pools, assuming `cores_per_vm` cores per VM:
    /// `saved = (1 - 1/num_vms) * d / (c*p + s + d)`.
    pub fn dedup_savings(&self, cores_per_vm: u64, num_vms: u64) -> f64 {
        let logical =
            cores_per_vm * self.private_pages_per_core + self.vm_shared_pages + self.dedup_pages;
        let saved = self.dedup_pages as f64 * (1.0 - 1.0 / num_vms as f64);
        saved / logical as f64
    }

    /// Aggregate working set of one VM in bytes (all pools).
    pub fn vm_working_set_bytes(&self, cores_per_vm: u64) -> u64 {
        (cores_per_vm * self.private_pages_per_core + self.vm_shared_pages + self.dedup_pages)
            * cmpsim_virt::PAGE_BYTES
    }
}

/// Solve the dedup pool size so that `dedup_savings` hits `target` for
/// 4 VMs of 16 cores: `d = target * (c*p + s) / (0.75 - target)`.
const fn solve_dedup(cp_s: u64, target_permille: u64) -> u64 {
    // Integer arithmetic to stay const: d = cp_s * t / (750 - t).
    cp_s * target_permille / (750 - target_permille)
}

/// Web server with static contents: working set larger than L1, heavy
/// VM-shared (page cache) and dedup (static files, binaries) traffic.
/// L2-power-dominated; the paper's "most representative" benchmark.
pub const APACHE: WorkloadProfile = WorkloadProfile {
    name: "apache",
    private_pages_per_core: 24,
    vm_shared_pages: 64,
    dedup_pages: solve_dedup(16 * 24 + 64, 217),
    p_vm_shared: 0.30,
    p_dedup: 0.30,
    write_frac_private: 0.20,
    write_frac_shared: 0.10,
    write_frac_dedup: 0.0004,
    zipf: 1.00,
    spatial_locality: 0.50,
    block_repeats: 8,
    page_span: 24,
    gap_mean: 2,
};

/// Java server: huge working set, >40% L2 miss rate — the worst case for
/// DiCo-Arin (frequent L2 replacements of shared-between-areas blocks
/// trigger broadcasts). L2-power-dominated.
pub const JBB: WorkloadProfile = WorkloadProfile {
    name: "jbb",
    private_pages_per_core: 2048,
    vm_shared_pages: 4096,
    dedup_pages: solve_dedup(16 * 2048 + 4096, 239),
    p_vm_shared: 0.25,
    p_dedup: 0.12,
    write_frac_private: 0.25,
    write_frac_shared: 0.15,
    write_frac_dedup: 0.0004,
    zipf: 0.55,
    spatial_locality: 0.40,
    block_repeats: 4,
    page_span: 64,
    gap_mean: 2,
};

/// Integer sort: tiny working set, write-heavy, L1-power-dominated.
pub const RADIX: WorkloadProfile = WorkloadProfile {
    name: "radix",
    private_pages_per_core: 16,
    vm_shared_pages: 128,
    dedup_pages: solve_dedup(16 * 16 + 128, 242),
    p_vm_shared: 0.10,
    p_dedup: 0.05,
    write_frac_private: 0.35,
    write_frac_shared: 0.25,
    write_frac_dedup: 0.0002,
    zipf: 0.60,
    spatial_locality: 0.80,
    block_repeats: 12,
    page_span: 48,
    gap_mean: 3,
};

/// Dense-matrix factorization (512x512): small per-core tiles,
/// L1-power-dominated.
pub const LU: WorkloadProfile = WorkloadProfile {
    name: "lu",
    private_pages_per_core: 20,
    vm_shared_pages: 64,
    dedup_pages: solve_dedup(16 * 20 + 64, 327),
    p_vm_shared: 0.15,
    p_dedup: 0.05,
    write_frac_private: 0.25,
    write_frac_shared: 0.20,
    write_frac_dedup: 0.0002,
    zipf: 0.50,
    spatial_locality: 0.75,
    block_repeats: 12,
    page_span: 48,
    gap_mean: 3,
};

/// Ray-casting renderer: read-dominated, small working set,
/// L1-power-dominated.
pub const VOLREND: WorkloadProfile = WorkloadProfile {
    name: "volrend",
    private_pages_per_core: 24,
    vm_shared_pages: 96,
    dedup_pages: solve_dedup(16 * 24 + 96, 300),
    p_vm_shared: 0.12,
    p_dedup: 0.08,
    write_frac_private: 0.06,
    write_frac_shared: 0.04,
    write_frac_dedup: 0.0002,
    zipf: 0.70,
    spatial_locality: 0.60,
    block_repeats: 10,
    page_span: 48,
    gap_mean: 3,
};

/// Vectorized mesh generation: streaming row sweeps, moderate writes,
/// L1-power-dominated with the largest dedup share of the scientific
/// codes.
pub const TOMCATV: WorkloadProfile = WorkloadProfile {
    name: "tomcatv",
    private_pages_per_core: 28,
    vm_shared_pages: 64,
    dedup_pages: solve_dedup(16 * 28 + 64, 368),
    p_vm_shared: 0.08,
    p_dedup: 0.06,
    write_frac_private: 0.40,
    write_frac_shared: 0.20,
    write_frac_dedup: 0.0002,
    zipf: 0.30,
    spatial_locality: 0.85,
    block_repeats: 8,
    page_span: 64,
    gap_mean: 3,
};

/// The paper's eight benchmark configurations (Table IV). Each assigns a
/// profile to every VM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Benchmark {
    /// apache4x16p — 4 Apache VMs.
    Apache,
    /// jbb4x16p — 4 SPECjbb VMs.
    Jbb,
    /// radix4x16p — 4 radix VMs.
    Radix,
    /// lu4x16p — 4 lu VMs.
    Lu,
    /// volrend4x16p — 4 volrend VMs.
    Volrend,
    /// tomcatv4x16p — 4 tomcatv VMs.
    Tomcatv,
    /// mixed-com — 2 Apache VMs + 2 JBB VMs.
    MixedCom,
    /// mixed-sci — radix + lu + volrend + tomcatv, one VM each.
    MixedSci,
}

impl Benchmark {
    /// All eight configurations, in the paper's reporting order.
    pub fn all() -> [Benchmark; 8] {
        [
            Benchmark::Apache,
            Benchmark::Jbb,
            Benchmark::Radix,
            Benchmark::Lu,
            Benchmark::Volrend,
            Benchmark::Tomcatv,
            Benchmark::MixedCom,
            Benchmark::MixedSci,
        ]
    }

    /// Report name (matching Table IV).
    pub fn name(&self) -> &'static str {
        match self {
            Benchmark::Apache => "apache4x16p",
            Benchmark::Jbb => "jbb4x16p",
            Benchmark::Radix => "radix4x16p",
            Benchmark::Lu => "lu4x16p",
            Benchmark::Volrend => "volrend4x16p",
            Benchmark::Tomcatv => "tomcatv4x16p",
            Benchmark::MixedCom => "mixed-com",
            Benchmark::MixedSci => "mixed-sci",
        }
    }

    /// The profile run by `vm` (of `num_vms`).
    pub fn profile_for_vm(&self, vm: usize, num_vms: usize) -> &'static WorkloadProfile {
        match self {
            Benchmark::Apache => &APACHE,
            Benchmark::Jbb => &JBB,
            Benchmark::Radix => &RADIX,
            Benchmark::Lu => &LU,
            Benchmark::Volrend => &VOLREND,
            Benchmark::Tomcatv => &TOMCATV,
            Benchmark::MixedCom => {
                if vm < num_vms / 2 {
                    &APACHE
                } else {
                    &JBB
                }
            }
            Benchmark::MixedSci => {
                [&RADIX, &LU, &VOLREND, &TOMCATV][vm % 4]
            }
        }
    }

    /// Performance metric class (Table IV).
    pub fn metric(&self) -> Metric {
        match self {
            Benchmark::Apache | Benchmark::Jbb | Benchmark::MixedCom => Metric::Throughput,
            _ => Metric::ExecTime,
        }
    }

    /// Whether the paper classifies this workload as L2-power-dominated.
    pub fn l2_dominated(&self) -> bool {
        matches!(self, Benchmark::Apache | Benchmark::Jbb | Benchmark::MixedCom)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Paper Table IV, "Memory saved by deduplication".
    const TABLE_IV: [(&WorkloadProfile, f64); 5] = [
        (&APACHE, 0.2172),
        (&JBB, 0.2388),
        (&RADIX, 0.2418),
        (&LU, 0.3271),
        (&TOMCATV, 0.3682),
    ];

    #[test]
    fn dedup_savings_match_table_iv() {
        for (p, want) in TABLE_IV {
            let got = p.dedup_savings(16, 4);
            assert!(
                (got - want).abs() < 0.01,
                "{}: savings {got:.4} vs paper {want:.4}",
                p.name
            );
        }
    }

    #[test]
    fn l1_dominated_fit_in_l1() {
        // Core-private working set below the 128 KiB L1 for the
        // scientific codes (32 pages = 128 KiB).
        for p in [&RADIX, &LU, &VOLREND, &TOMCATV] {
            assert!(p.private_pages_per_core <= 32, "{}", p.name);
        }
    }

    #[test]
    fn l2_dominated_exceed_l1() {
        // Per-core cache footprint (private pool + shared pools, at the
        // profile's page span) exceeds the 2048-line L1 for the
        // L2-power-dominated workloads.
        for p in [&APACHE, &JBB] {
            let blocks = (p.private_pages_per_core + p.vm_shared_pages + p.dedup_pages)
                * p.page_span.min(64);
            assert!(blocks > 2048, "{}: footprint {blocks} blocks", p.name);
        }
    }

    #[test]
    fn jbb_overflows_l2_share() {
        // One VM's share of the 64 MiB L2 is 16 MiB; JBB's VM working set
        // must exceed it (it is the >40% L2-miss-rate workload).
        assert!(JBB.vm_working_set_bytes(16) > 16 * 1024 * 1024);
        // ...while apache's fits comfortably.
        assert!(APACHE.vm_working_set_bytes(16) < 16 * 1024 * 1024);
    }

    #[test]
    fn probabilities_are_sane() {
        for p in [&APACHE, &JBB, &RADIX, &LU, &VOLREND, &TOMCATV] {
            assert!(p.p_vm_shared + p.p_dedup < 1.0, "{}", p.name);
            for w in [p.write_frac_private, p.write_frac_shared, p.write_frac_dedup] {
                assert!((0.0..=1.0).contains(&w), "{}", p.name);
            }
            assert!(p.write_frac_dedup < 0.001, "{}: dedup pages are ~read-only", p.name);
        }
    }

    #[test]
    fn mixed_assignments() {
        assert_eq!(Benchmark::MixedCom.profile_for_vm(0, 4).name, "apache");
        assert_eq!(Benchmark::MixedCom.profile_for_vm(1, 4).name, "apache");
        assert_eq!(Benchmark::MixedCom.profile_for_vm(2, 4).name, "jbb");
        assert_eq!(Benchmark::MixedCom.profile_for_vm(3, 4).name, "jbb");
        let names: Vec<&str> =
            (0..4).map(|vm| Benchmark::MixedSci.profile_for_vm(vm, 4).name).collect();
        assert_eq!(names, vec!["radix", "lu", "volrend", "tomcatv"]);
    }

    #[test]
    fn metrics_match_table_iv() {
        assert_eq!(Benchmark::Apache.metric(), Metric::Throughput);
        assert_eq!(Benchmark::Jbb.metric(), Metric::Throughput);
        assert_eq!(Benchmark::MixedCom.metric(), Metric::Throughput);
        assert_eq!(Benchmark::Radix.metric(), Metric::ExecTime);
        assert_eq!(Benchmark::MixedSci.metric(), Metric::ExecTime);
    }

    #[test]
    fn all_lists_eight() {
        let all = Benchmark::all();
        assert_eq!(all.len(), 8);
        let mut names: Vec<&str> = all.iter().map(|b| b.name()).collect();
        names.dedup();
        assert_eq!(names.len(), 8);
    }
}
