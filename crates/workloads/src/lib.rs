#![warn(missing_docs)]

//! # cmpsim-workloads
//!
//! Synthetic consolidated workloads standing in for the paper's
//! full-system benchmarks (Table IV). Each benchmark is modelled by a
//! [`WorkloadProfile`] that fixes:
//!
//! * the page pools a core touches — core-private, VM-shared (read-write,
//!   private to the VM) and deduplicated (read-only, shared across VMs) —
//!   with pool sizes solved so the memory saved by deduplication matches
//!   the paper's Table IV within rounding;
//! * the access mix (region probabilities, write fractions, skew,
//!   spatial locality) that determines whether the workload is
//!   *L1-power-dominated* (radix, lu, volrend, tomcatv: working set fits
//!   the 128 KiB L1) or *L2-power-dominated* (apache, and jbb with an
//!   L2 miss rate above 40%), the two classes the paper's §V-C analysis
//!   is built on.
//!
//! [`CoreStream`] turns a profile into a deterministic per-core reference
//! stream of *logical* accesses; the simulator translates them through
//! `cmpsim_virt::MachineMemory` (which is where deduplication and
//! copy-on-write happen) into physical block addresses.

pub mod calibrate;
pub mod profile;
pub mod stream;

pub use calibrate::StreamStats;
pub use profile::{Benchmark, Metric, WorkloadProfile};
pub use stream::{CoreStream, LogicalRef};
