//! Per-core reference stream generation.

use crate::profile::WorkloadProfile;
use cmpsim_engine::rng::{SimRng, Zipf};
use cmpsim_virt::{Region, BLOCKS_PER_PAGE};

/// One logical memory reference emitted by a core.
///
/// `page_index` is relative to the region's pool; the simulator combines
/// it with the core's VM to form a `cmpsim_virt::mem::LogicalPage` and
/// translates it to a physical block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LogicalRef {
    /// Pool the access targets.
    pub region: Region,
    /// Page within the pool.
    pub page_index: u64,
    /// Block within the page.
    pub block_in_page: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Non-memory cycles the core spends before issuing this reference.
    pub gap: u64,
}

/// Deterministic reference generator for one core.
#[derive(Debug, Clone)]
pub struct CoreStream {
    profile: &'static WorkloadProfile,
    core_in_vm: u64,
    rng: SimRng,
    zipf_private: Zipf,
    zipf_shared: Zipf,
    zipf_dedup: Zipf,
    /// Sequential-run cursor for spatial locality.
    last: Option<(Region, u64, u64)>,
    /// Remaining references to the current block (word-level reuse).
    run_left: u64,
}

impl CoreStream {
    /// Builds the stream for core `core_in_vm` (0-based within its VM)
    /// running `profile`, seeded deterministically from `rng`.
    pub fn new(profile: &'static WorkloadProfile, core_in_vm: u64, rng: SimRng) -> Self {
        Self {
            zipf_private: Zipf::new(profile.private_pages_per_core.max(1) as usize, profile.zipf),
            zipf_shared: Zipf::new(profile.vm_shared_pages.max(1) as usize, profile.zipf),
            zipf_dedup: Zipf::new(profile.dedup_pages.max(1) as usize, profile.zipf),
            profile,
            core_in_vm,
            rng,
            last: None,
            run_left: 0,
        }
    }

    /// Profile driving this stream.
    pub fn profile(&self) -> &'static WorkloadProfile {
        self.profile
    }

    /// Draws the number of back-to-back references the next block will
    /// receive (geometric-ish around the profile mean; >= 1).
    fn draw_run(&mut self) -> u64 {
        let m = self.profile.block_repeats.max(1);
        1 + self.rng.gen_range(2 * m - 1)
    }

    /// Generates the next reference.
    pub fn next_ref(&mut self) -> LogicalRef {
        let p = self.profile;

        // Word-level reuse: keep hitting the current 64-byte block.
        if self.run_left > 0 {
            if let Some((region, page, block)) = self.last {
                self.run_left -= 1;
                let is_write = self.rng.gen_bool(self.write_frac(region));
                return LogicalRef {
                    region,
                    page_index: page,
                    block_in_page: block,
                    is_write,
                    gap: self.gap(),
                };
            }
        }

        // Spatial locality: continue the current sequential run onto the
        // next block of the page.
        let span = p.page_span.clamp(1, BLOCKS_PER_PAGE);
        if let Some((region, page, block)) = self.last {
            if block + 1 < span && self.rng.gen_bool(p.spatial_locality) {
                let nb = block + 1;
                self.last = Some((region, page, nb));
                self.run_left = self.draw_run() - 1;
                let is_write = self.rng.gen_bool(self.write_frac(region));
                return LogicalRef {
                    region,
                    page_index: page,
                    block_in_page: nb,
                    is_write,
                    gap: self.gap(),
                };
            }
        }

        // New temporal access: pick region, then page by popularity.
        let u = self.rng.gen_f64();
        let (region, page_index) = if u < p.p_dedup {
            (Region::Dedup, self.zipf_dedup.sample(&mut self.rng) as u64)
        } else if u < p.p_dedup + p.p_vm_shared {
            (Region::VmShared, self.zipf_shared.sample(&mut self.rng) as u64)
        } else {
            // Core-private pools are disjoint per core: page ids are
            // offset by the core's slot so cores never alias.
            let within = self.zipf_private.sample(&mut self.rng) as u64;
            (Region::CorePrivate, self.core_in_vm * p.private_pages_per_core + within)
        };
        let block_in_page = self.rng.gen_range(span);
        self.last = Some((region, page_index, block_in_page));
        self.run_left = self.draw_run() - 1;
        let is_write = self.rng.gen_bool(self.write_frac(region));
        LogicalRef { region, page_index, block_in_page, is_write, gap: self.gap() }
    }

    fn write_frac(&self, region: Region) -> f64 {
        match region {
            Region::CorePrivate => self.profile.write_frac_private,
            Region::VmShared => self.profile.write_frac_shared,
            Region::Dedup => self.profile.write_frac_dedup,
        }
    }

    fn gap(&mut self) -> u64 {
        let m = self.profile.gap_mean;
        if m == 0 {
            0
        } else {
            self.rng.gen_range(2 * m + 1)
        }
    }

    /// Serializes the stream's mutable cursor state (RNG, locality
    /// cursors). The profile is identity, not state — the restorer
    /// supplies it again and the Zipf tables are rebuilt from it
    /// (they are pure functions of the profile, never touched by RNG).
    pub fn snap_save(&self, w: &mut cmpsim_engine::SnapWriter) {
        use cmpsim_engine::Snap;
        self.core_in_vm.save(w);
        self.rng.save(w);
        self.last.save(w);
        self.run_left.save(w);
    }

    /// Rebuilds a stream for `profile` from state written by
    /// [`CoreStream::snap_save`].
    pub fn snap_load(
        profile: &'static WorkloadProfile,
        r: &mut cmpsim_engine::SnapReader<'_>,
    ) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        let core_in_vm = u64::load(r)?;
        let rng = SimRng::load(r)?;
        let last = Option::<(Region, u64, u64)>::load(r)?;
        let run_left = u64::load(r)?;
        let mut s = Self::new(profile, core_in_vm, rng);
        s.last = last;
        s.run_left = run_left;
        Ok(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{APACHE, RADIX, VOLREND};

    fn stream(p: &'static WorkloadProfile, seed: u64) -> CoreStream {
        CoreStream::new(p, 0, SimRng::new(seed))
    }

    #[test]
    fn deterministic_replay() {
        let mut a = stream(&APACHE, 42);
        let mut b = stream(&APACHE, 42);
        for _ in 0..1000 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }

    #[test]
    fn region_mix_close_to_profile() {
        let mut s = stream(&APACHE, 7);
        let n = 200_000;
        let mut dedup = 0usize;
        let mut shared = 0usize;
        for _ in 0..n {
            match s.next_ref().region {
                Region::Dedup => dedup += 1,
                Region::VmShared => shared += 1,
                Region::CorePrivate => {}
            }
        }
        // Spatial-locality runs inherit the region, so region frequency
        // still converges to the draw probabilities.
        let fd = dedup as f64 / n as f64;
        let fs = shared as f64 / n as f64;
        assert!((fd - APACHE.p_dedup).abs() < 0.03, "dedup {fd}");
        assert!((fs - APACHE.p_vm_shared).abs() < 0.03, "shared {fs}");
    }

    #[test]
    fn write_fraction_tracks_profile() {
        let mut s = stream(&VOLREND, 3);
        let n = 100_000;
        let writes = (0..n).filter(|_| s.next_ref().is_write).count();
        let f = writes as f64 / n as f64;
        // Volrend is read-dominated (~6% private writes).
        assert!(f < 0.10, "write fraction {f}");
    }

    #[test]
    fn pages_stay_in_pools() {
        let mut s = stream(&RADIX, 9);
        for _ in 0..50_000 {
            let r = s.next_ref();
            assert!(r.block_in_page < BLOCKS_PER_PAGE);
            match r.region {
                Region::CorePrivate => assert!(r.page_index < RADIX.private_pages_per_core),
                Region::VmShared => assert!(r.page_index < RADIX.vm_shared_pages),
                Region::Dedup => assert!(r.page_index < RADIX.dedup_pages),
            }
        }
    }

    #[test]
    fn private_pools_disjoint_between_cores() {
        let mut s0 = CoreStream::new(&RADIX, 0, SimRng::new(1));
        let mut s5 = CoreStream::new(&RADIX, 5, SimRng::new(2));
        for _ in 0..20_000 {
            let a = s0.next_ref();
            let b = s5.next_ref();
            if a.region == Region::CorePrivate {
                assert!(a.page_index < RADIX.private_pages_per_core);
            }
            if b.region == Region::CorePrivate {
                assert!(
                    (5 * RADIX.private_pages_per_core..6 * RADIX.private_pages_per_core)
                        .contains(&b.page_index)
                );
            }
        }
    }

    #[test]
    fn spatial_runs_are_sequential() {
        let mut s = stream(&RADIX, 11);
        let mut local = 0usize;
        let mut prev: Option<LogicalRef> = None;
        let n = 50_000;
        for _ in 0..n {
            let r = s.next_ref();
            if let Some(p) = prev {
                if p.region == r.region
                    && p.page_index == r.page_index
                    && (r.block_in_page == p.block_in_page
                        || r.block_in_page == p.block_in_page + 1)
                {
                    local += 1;
                }
            }
            prev = Some(r);
        }
        // Radix: 0.8 spatial locality and ~12 refs per block.
        let f = local as f64 / n as f64;
        assert!(f > 0.85, "local fraction {f}");
    }

    #[test]
    fn blocks_are_reused_before_moving_on() {
        let mut s = stream(&RADIX, 17);
        let mut same = 0usize;
        let mut prev: Option<LogicalRef> = None;
        let n = 50_000;
        for _ in 0..n {
            let r = s.next_ref();
            if let Some(p) = prev {
                if p.region == r.region
                    && p.page_index == r.page_index
                    && p.block_in_page == r.block_in_page
                {
                    same += 1;
                }
            }
            prev = Some(r);
        }
        // Mean 12 refs per block -> >85% of consecutive refs hit the
        // same block.
        let f = same as f64 / n as f64;
        assert!(f > 0.85, "same-block fraction {f}");
    }

    #[test]
    fn snapshot_round_trip_resumes_identically() {
        let mut a = stream(&APACHE, 99);
        for _ in 0..5000 {
            a.next_ref(); // advance into a mid-run cursor state
        }
        let mut w = cmpsim_engine::SnapWriter::new();
        a.snap_save(&mut w);
        let bytes = w.into_bytes();
        let mut r = cmpsim_engine::SnapReader::new(&bytes);
        let mut b = CoreStream::snap_load(&APACHE, &mut r).expect("decode");
        r.finish().expect("fully consumed");
        for _ in 0..5000 {
            assert_eq!(a.next_ref(), b.next_ref());
        }
    }

    #[test]
    fn gaps_bounded_by_twice_mean() {
        let mut s = stream(&APACHE, 13);
        for _ in 0..10_000 {
            assert!(s.next_ref().gap <= 2 * APACHE.gap_mean);
        }
    }
}
