//! Empirical calibration: measure what a [`CoreStream`](crate::CoreStream)
//! actually produces — region mix, write fraction, block-level reuse,
//! footprint — so the profile knobs can be validated against the
//! characteristics the paper reports (Table IV and the §V-C workload
//! classification) instead of trusted blindly.

use crate::profile::WorkloadProfile;
use crate::stream::CoreStream;
use cmpsim_engine::SimRng;
use cmpsim_virt::Region;
use std::collections::BTreeSet;

/// Empirical summary of `n` references from one core's stream.
#[derive(Debug, Clone)]
pub struct StreamStats {
    /// References measured.
    pub refs: u64,
    /// Fraction of accesses per region `[private, vm_shared, dedup]`.
    pub region_frac: [f64; 3],
    /// Overall write fraction.
    pub write_frac: f64,
    /// Distinct 64-byte blocks touched.
    pub distinct_blocks: u64,
    /// Mean consecutive references hitting the same block.
    pub mean_run: f64,
    /// Fraction of block transitions that continue sequentially.
    pub seq_frac: f64,
}

impl StreamStats {
    /// Measures `refs` references of `profile` for one core.
    pub fn measure(profile: &'static WorkloadProfile, refs: u64, seed: u64) -> Self {
        let mut s = CoreStream::new(profile, 0, SimRng::new(seed));
        let mut region_counts = [0u64; 3];
        let mut writes = 0u64;
        let mut distinct: BTreeSet<(u8, u64, u64)> = BTreeSet::new();
        let mut runs = 0u64;
        let mut transitions = 0u64;
        let mut seq = 0u64;
        let mut last: Option<(u8, u64, u64)> = None;
        for _ in 0..refs {
            let r = s.next_ref();
            let region_idx = match r.region {
                Region::CorePrivate => 0u8,
                Region::VmShared => 1,
                Region::Dedup => 2,
            };
            region_counts[region_idx as usize] += 1;
            if r.is_write {
                writes += 1;
            }
            let key = (region_idx, r.page_index, r.block_in_page);
            distinct.insert(key);
            match last {
                Some(prev) if prev == key => {}
                Some((pr, pp, pb)) => {
                    runs += 1;
                    transitions += 1;
                    if pr == region_idx && pp == r.page_index && r.block_in_page == pb + 1 {
                        seq += 1;
                    }
                }
                None => runs += 1,
            }
            last = Some(key);
        }
        Self {
            refs,
            region_frac: region_counts.map(|c| c as f64 / refs as f64),
            write_frac: writes as f64 / refs as f64,
            distinct_blocks: distinct.len() as u64,
            mean_run: refs as f64 / runs.max(1) as f64,
            seq_frac: seq as f64 / transitions.max(1) as f64,
        }
    }

    /// Approximate per-core cache footprint in bytes (distinct blocks x
    /// 64 B) for the measured window.
    pub fn footprint_bytes(&self) -> u64 {
        self.distinct_blocks * 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::{APACHE, JBB, LU, RADIX, TOMCATV, VOLREND};

    const N: u64 = 120_000;

    #[test]
    fn region_mix_matches_profiles() {
        for p in [&APACHE, &JBB, &RADIX, &LU, &VOLREND, &TOMCATV] {
            let s = StreamStats::measure(p, N, 11);
            assert!(
                (s.region_frac[1] - p.p_vm_shared).abs() < 0.03,
                "{}: shared {:.3} vs {:.3}",
                p.name,
                s.region_frac[1],
                p.p_vm_shared
            );
            assert!(
                (s.region_frac[2] - p.p_dedup).abs() < 0.03,
                "{}: dedup {:.3} vs {:.3}",
                p.name,
                s.region_frac[2],
                p.p_dedup
            );
        }
    }

    #[test]
    fn block_reuse_tracks_block_repeats() {
        for p in [&APACHE, &JBB, &RADIX] {
            let s = StreamStats::measure(p, N, 5);
            // mean_run is a draw from 1..2m, so its mean is ~m (+1/2).
            let m = p.block_repeats as f64;
            assert!(
                s.mean_run > 0.6 * m && s.mean_run < 1.6 * m,
                "{}: mean run {:.2} vs target {m}",
                p.name,
                s.mean_run
            );
        }
    }

    #[test]
    fn l1_classification_holds_empirically() {
        // L2-power-dominated workloads overflow the 128 KiB L1 per core;
        // the scientific codes fit comfortably.
        let l1 = 128 * 1024;
        for p in [&APACHE, &JBB] {
            let s = StreamStats::measure(p, N, 7);
            assert!(
                s.footprint_bytes() > l1,
                "{} footprint {} must exceed the L1",
                p.name,
                s.footprint_bytes()
            );
        }
        for p in [&RADIX, &LU, &VOLREND] {
            let s = StreamStats::measure(p, N, 7);
            assert!(
                s.footprint_bytes() < 4 * l1,
                "{} footprint {} should be L1-class",
                p.name,
                s.footprint_bytes()
            );
        }
    }

    #[test]
    fn jbb_has_the_largest_footprint() {
        let jbb = StreamStats::measure(&JBB, N, 3).footprint_bytes();
        for p in [&APACHE, &RADIX, &LU, &VOLREND, &TOMCATV] {
            let f = StreamStats::measure(p, N, 3).footprint_bytes();
            assert!(jbb > f, "jbb {jbb} vs {} {f}", p.name);
        }
    }

    #[test]
    fn write_fractions_are_profile_weighted() {
        let vol = StreamStats::measure(&VOLREND, N, 9);
        let tom = StreamStats::measure(&TOMCATV, N, 9);
        // Volrend is read-dominated; tomcatv is the most write-heavy.
        assert!(vol.write_frac < 0.10, "{}", vol.write_frac);
        assert!(tom.write_frac > 0.25, "{}", tom.write_frac);
        assert!(tom.write_frac > vol.write_frac);
    }

    #[test]
    fn sequential_locality_ranks_streaming_codes_high() {
        let tom = StreamStats::measure(&TOMCATV, N, 13).seq_frac;
        let jbb = StreamStats::measure(&JBB, N, 13).seq_frac;
        assert!(tom > jbb, "tomcatv {tom:.3} vs jbb {jbb:.3}");
    }
}
