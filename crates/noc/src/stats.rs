//! Traffic statistics exported to the power model and the reports.
//!
//! `NocStats` is built entirely from the `cmpsim_engine::stats`
//! primitives (the workspace's one source of truth for counter shapes)
//! and publishes into the unified [`MetricsRegistry`] via
//! [`MetricSource`].

use cmpsim_engine::metrics::{MetricSource, MetricsRegistry};
use cmpsim_engine::stats::{Counter, Running};

/// Publishes a [`Running`] under `prefix` as a count counter plus
/// mean/min/max gauges (min/max omitted when the series is empty).
pub fn publish_running(r: &Running, prefix: &str, reg: &mut MetricsRegistry) {
    reg.set_counter(&format!("{prefix}.count"), r.count());
    reg.set_gauge(&format!("{prefix}.mean"), r.mean());
    if let Some(v) = r.min() {
        reg.set_gauge(&format!("{prefix}.min"), v as f64);
    }
    if let Some(v) = r.max() {
        reg.set_gauge(&format!("{prefix}.max"), v as f64);
    }
}

/// Raw NoC activity counts for one simulation.
///
/// `routing_events` and `flit_link_traversals` are the two inputs of the
/// paper's network energy model (§V-A): each routing event costs as much
/// energy as one L1 block read, i.e. four flit transmissions.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Messages injected (unicast + broadcast roots).
    pub messages: Counter,
    /// Broadcast operations.
    pub broadcasts: Counter,
    /// Deliveries where source == destination tile (no network use).
    pub local_deliveries: Counter,
    /// Router traversals (one per link hop per message).
    pub routing_events: Counter,
    /// Flit x link traversals (bandwidth use).
    pub flit_link_traversals: Counter,
    /// Cycles lost to link contention across all messages.
    pub contention_cycles: Counter,
    /// Links traversed per unicast message.
    pub links_per_message: Running,
    /// End-to-end latency per unicast message.
    pub message_latency: Running,
    /// Per-destination delivery latency of broadcast/tree deliveries
    /// (one record per reached tile). Kept separate from the unicast
    /// `message_latency` so the two populations aren't conflated.
    pub broadcast_latency: Running,
}

impl NocStats {
    /// Merges another stats block (used when aggregating runs).
    pub fn merge(&mut self, o: &NocStats) {
        cmpsim_engine::merge_fields!(
            self,
            o,
            messages,
            broadcasts,
            local_deliveries,
            routing_events,
            flit_link_traversals,
            contention_cycles,
            links_per_message,
            message_latency,
            broadcast_latency,
        );
    }
}

impl MetricSource for NocStats {
    fn publish(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let c = [
            ("messages", &self.messages),
            ("broadcasts", &self.broadcasts),
            ("local_deliveries", &self.local_deliveries),
            ("routing_events", &self.routing_events),
            ("flit_link_traversals", &self.flit_link_traversals),
            ("contention_cycles", &self.contention_cycles),
        ];
        for (name, counter) in c {
            reg.set_counter(&format!("{prefix}.{name}"), counter.get());
        }
        publish_running(&self.links_per_message, &format!("{prefix}.links_per_message"), reg);
        publish_running(&self.message_latency, &format!("{prefix}.message_latency"), reg);
        publish_running(&self.broadcast_latency, &format!("{prefix}.broadcast_latency"), reg);
    }
}

cmpsim_engine::impl_snap!(NocStats {
    messages,
    broadcasts,
    local_deliveries,
    routing_events,
    flit_link_traversals,
    contention_cycles,
    links_per_message,
    message_latency,
    broadcast_latency,
});

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts() {
        let mut a = NocStats::default();
        a.messages.add(3);
        a.links_per_message.record(4);
        let mut b = NocStats::default();
        b.messages.add(2);
        b.links_per_message.record(8);
        a.merge(&b);
        assert_eq!(a.messages.get(), 5);
        assert_eq!(a.links_per_message.count(), 2);
        assert_eq!(a.links_per_message.max(), Some(8));
    }

    #[test]
    fn publishes_into_registry() {
        let mut s = NocStats::default();
        s.messages.add(9);
        s.message_latency.record(15);
        let mut reg = MetricsRegistry::new();
        s.publish("noc", &mut reg);
        let counters: std::collections::BTreeMap<_, _> = reg.counters().collect();
        assert_eq!(counters["noc.messages"], 9);
        assert_eq!(counters["noc.message_latency.count"], 1);
        let gauges: std::collections::BTreeMap<_, _> = reg.gauges().collect();
        assert_eq!(gauges["noc.message_latency.max"], 15.0);
        // Empty series publish no min/max (None, not a fake 0).
        assert!(!gauges.contains_key("noc.links_per_message.min"));
    }
}
