//! Traffic statistics exported to the power model and the reports.

use cmpsim_engine::stats::{Counter, Running};

/// Raw NoC activity counts for one simulation.
///
/// `routing_events` and `flit_link_traversals` are the two inputs of the
/// paper's network energy model (§V-A): each routing event costs as much
/// energy as one L1 block read, i.e. four flit transmissions.
#[derive(Debug, Clone, Default)]
pub struct NocStats {
    /// Messages injected (unicast + broadcast roots).
    pub messages: Counter,
    /// Broadcast operations.
    pub broadcasts: Counter,
    /// Deliveries where source == destination tile (no network use).
    pub local_deliveries: Counter,
    /// Router traversals (one per link hop per message).
    pub routing_events: Counter,
    /// Flit x link traversals (bandwidth use).
    pub flit_link_traversals: Counter,
    /// Cycles lost to link contention across all messages.
    pub contention_cycles: Counter,
    /// Links traversed per unicast message.
    pub links_per_message: Running,
    /// End-to-end latency per unicast message.
    pub message_latency: Running,
}

impl NocStats {
    /// Merges another stats block (used when aggregating runs).
    pub fn merge(&mut self, o: &NocStats) {
        self.messages.add(o.messages.get());
        self.broadcasts.add(o.broadcasts.get());
        self.local_deliveries.add(o.local_deliveries.get());
        self.routing_events.add(o.routing_events.get());
        self.flit_link_traversals.add(o.flit_link_traversals.get());
        self.contention_cycles.add(o.contention_cycles.get());
        self.links_per_message.merge(&o.links_per_message);
        self.message_latency.merge(&o.message_latency);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merge_adds_counts() {
        let mut a = NocStats::default();
        a.messages.add(3);
        a.links_per_message.record(4);
        let mut b = NocStats::default();
        b.messages.add(2);
        b.links_per_message.record(8);
        a.merge(&b);
        assert_eq!(a.messages.get(), 5);
        assert_eq!(a.links_per_message.count(), 2);
        assert_eq!(a.links_per_message.max(), 8);
    }
}
