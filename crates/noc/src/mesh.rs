//! 2D mesh with XY routing, contention, and broadcast trees.

use crate::stats::NocStats;
use cmpsim_engine::Cycle;

/// Mesh geometry and timing parameters (defaults = paper Table III).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NocConfig {
    /// Mesh width in tiles.
    pub cols: usize,
    /// Mesh height in tiles.
    pub rows: usize,
    /// Wire latency per link, cycles.
    pub link_cycles: Cycle,
    /// Crossbar/switch latency per hop, cycles.
    pub switch_cycles: Cycle,
    /// Routing-decision latency per hop, cycles.
    pub router_cycles: Cycle,
    /// Flit (and link) width in bytes.
    pub flit_bytes: usize,
    /// Flits in a control packet (requests, acks, pointers).
    pub control_flits: u64,
    /// Flits in a data packet (64-byte block + header).
    pub data_flits: u64,
    /// When false, links never queue (infinite bandwidth); used by tests
    /// that need pure-latency checks.
    pub model_contention: bool,
}

impl Default for NocConfig {
    fn default() -> Self {
        Self {
            cols: 8,
            rows: 8,
            link_cycles: 2,
            switch_cycles: 2,
            router_cycles: 1,
            flit_bytes: 16,
            control_flits: 1,
            data_flits: 5,
            model_contention: true,
        }
    }
}

impl NocConfig {
    /// Total tiles in the mesh.
    pub fn tiles(&self) -> usize {
        self.cols * self.rows
    }

    /// Per-hop latency with an idle network.
    pub fn hop_cycles(&self) -> Cycle {
        self.link_cycles + self.switch_cycles + self.router_cycles
    }

    /// Theoretical average hop distance between two uniformly random tiles
    /// of a `c x r` mesh: `(c + r) / 3` exactly; the paper quotes the
    /// square-mesh approximation `2/3 * sqrt(ntc)`.
    pub fn avg_distance(&self) -> f64 {
        (self.cols as f64 + self.rows as f64) / 3.0
    }
}

/// Outcome of injecting a message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Delivery {
    /// Cycle at which the tail flit reaches the destination.
    pub arrival: Cycle,
    /// Links traversed (the Manhattan distance; 0 for local delivery).
    pub links: u64,
}

/// Direction of a mesh link leaving a tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    East,
    West,
    North,
    South,
}

/// Incremental XY-route walker: yields each (tile, direction) link
/// traversal from source to destination without allocating. X-dimension
/// first, then Y, exactly as the former `Vec`-building routing did.
#[derive(Debug, Clone, Copy)]
struct RouteIter {
    x: usize,
    y: usize,
    dx: usize,
    dy: usize,
    cols: usize,
}

impl Iterator for RouteIter {
    type Item = (usize, Dir);

    fn next(&mut self) -> Option<(usize, Dir)> {
        let tile = self.y * self.cols + self.x;
        if self.x != self.dx {
            let dir = if self.dx > self.x { Dir::East } else { Dir::West };
            if self.dx > self.x {
                self.x += 1;
            } else {
                self.x -= 1;
            }
            Some((tile, dir))
        } else if self.y != self.dy {
            let dir = if self.dy > self.y { Dir::South } else { Dir::North };
            if self.dy > self.y {
                self.y += 1;
            } else {
                self.y -= 1;
            }
            Some((tile, dir))
        } else {
            None
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.x.abs_diff(self.dx) + self.y.abs_diff(self.dy);
        (n, Some(n))
    }
}

impl ExactSizeIterator for RouteIter {}

/// The mesh interconnect. Owns per-directed-link "busy until" clocks for
/// the contention model and the traffic statistics.
#[derive(Debug, Clone)]
pub struct Mesh {
    cfg: NocConfig,
    /// `link_free[tile * 4 + dir]`: earliest cycle the directed link out of
    /// `tile` toward `dir` can accept a new header flit.
    link_free: Vec<Cycle>,
    /// `link_busy[tile * 4 + dir]`: cumulative cycles each directed link
    /// has spent transmitting flits (one cycle per flit traversal). An
    /// interval sampler diffs this against an earlier snapshot to get
    /// per-link utilization over a window.
    link_busy: Vec<u64>,
    /// `link_stall[tile * 4 + dir]`: cumulative contention cycles
    /// charged on each directed link (the per-link split of
    /// `NocStats::contention_cycles`). Feeds the spatial heatmaps.
    link_stall: Vec<u64>,
    stats: NocStats,
}

impl Mesh {
    /// Builds an idle mesh.
    pub fn new(cfg: NocConfig) -> Self {
        assert!(cfg.cols >= 1 && cfg.rows >= 1, "degenerate mesh");
        Self {
            link_free: vec![0; cfg.tiles() * 4],
            link_busy: vec![0; cfg.tiles() * 4],
            link_stall: vec![0; cfg.tiles() * 4],
            cfg,
            stats: NocStats::default(),
        }
    }

    /// Configuration in effect.
    pub fn config(&self) -> &NocConfig {
        &self.cfg
    }

    /// Traffic statistics accumulated so far.
    pub fn stats(&self) -> &NocStats {
        &self.stats
    }

    /// Cumulative per-directed-link busy cycles, indexed `tile * 4 +
    /// dir`. Border slots that have no physical link stay 0.
    pub fn link_busy(&self) -> &[u64] {
        &self.link_busy
    }

    /// Cumulative per-directed-link contention (stall) cycles, indexed
    /// `tile * 4 + dir` like [`Mesh::link_busy`]. Sums exactly to
    /// `stats().contention_cycles`.
    pub fn link_contention(&self) -> &[u64] {
        &self.link_stall
    }

    /// Number of physical directed links in the mesh (border slots in
    /// [`Mesh::link_busy`] excluded) — the denominator for mean link
    /// utilization.
    pub fn directed_links(&self) -> usize {
        2 * (self.cfg.cols - 1) * self.cfg.rows + 2 * (self.cfg.rows - 1) * self.cfg.cols
    }

    /// Resets statistics, including link-busy accumulation (keeps link
    /// clocks).
    pub fn reset_stats(&mut self) {
        self.stats = NocStats::default();
        self.link_busy.iter_mut().for_each(|b| *b = 0);
        self.link_stall.iter_mut().for_each(|b| *b = 0);
    }

    fn xy(&self, tile: usize) -> (usize, usize) {
        (tile % self.cfg.cols, tile / self.cfg.cols)
    }

    fn tile(&self, x: usize, y: usize) -> usize {
        y * self.cfg.cols + x
    }

    /// Manhattan distance between two tiles.
    pub fn distance(&self, a: usize, b: usize) -> u64 {
        let (ax, ay) = self.xy(a);
        let (bx, by) = self.xy(b);
        (ax.abs_diff(bx) + ay.abs_diff(by)) as u64
    }

    /// The XY route from `src` to `dst` as an incremental iterator of
    /// (tile, direction) link traversals — no per-message allocation.
    /// Empty when `src == dst`.
    fn route(&self, src: usize, dst: usize) -> RouteIter {
        let (x, y) = self.xy(src);
        let (dx, dy) = self.xy(dst);
        RouteIter { x, y, dx, dy, cols: self.cfg.cols }
    }

    /// True when the XY route from `src` to `dst` passes through (or
    /// terminates at) router `tile`. Used by the fault-injection layer
    /// to decide which in-flight messages a transient router outage
    /// holds up. A message is affected by its own source router too
    /// (`src == tile`), matching a store-and-forward outage model.
    pub fn passes_through(&self, src: usize, dst: usize, tile: usize) -> bool {
        if src == tile || dst == tile {
            return true;
        }
        self.route(src, dst).any(|(t, _)| t == tile)
    }

    fn link_index(&self, tile: usize, dir: Dir) -> usize {
        tile * 4
            + match dir {
                Dir::East => 0,
                Dir::West => 1,
                Dir::North => 2,
                Dir::South => 3,
            }
    }

    /// Sends one `flits`-flit message from `src` to `dst`, starting at
    /// cycle `now`. Returns the tail-flit arrival time and accounts
    /// routing/link energy events. `src == dst` is free local delivery
    /// (1 cycle, no network events), used for requests whose home L2 bank
    /// is in the requestor's own tile.
    pub fn send(&mut self, now: Cycle, src: usize, dst: usize, flits: u64) -> Delivery {
        debug_assert!(src < self.cfg.tiles() && dst < self.cfg.tiles());
        if src == dst {
            self.stats.local_deliveries.inc();
            return Delivery { arrival: now + 1, links: 0 };
        }
        let hops = self.route(src, dst);
        let nlinks = hops.len() as u64;
        let hop_cycles = self.cfg.hop_cycles();
        let model_contention = self.cfg.model_contention;
        let mut t = now;
        for (tile, dir) in hops {
            let li = self.link_index(tile, dir);
            t += hop_cycles;
            if model_contention {
                if t < self.link_free[li] {
                    let stall = self.link_free[li] - t;
                    self.stats.contention_cycles.add(stall);
                    self.link_stall[li] += stall;
                    t = self.link_free[li];
                }
                // The link is serialized for the body flits behind the head.
                self.link_free[li] = t + flits.saturating_sub(1);
            }
            self.link_busy[li] += flits;
        }
        // Tail flit trails the head by (flits - 1) cycles on the last link.
        let arrival = t + flits.saturating_sub(1);
        self.stats.messages.inc();
        self.stats.routing_events.add(nlinks);
        self.stats.flit_link_traversals.add(nlinks * flits);
        self.stats.links_per_message.record(nlinks);
        self.stats.message_latency.record(arrival - now);
        Delivery { arrival, links: nlinks }
    }

    /// Broadcasts one message from `src` to every other tile along a
    /// row-then-column spanning tree (the standard mesh broadcast the
    /// paper's Garnet extension implements): the message travels along the
    /// source's row, and each tile of that row forwards it up and down its
    /// column. Exactly `tiles - 1` link traversals occur.
    ///
    /// Returns `(tile, arrival)` for every destination tile (excluding
    /// `src`).
    pub fn broadcast(&mut self, now: Cycle, src: usize, flits: u64) -> Vec<(usize, Cycle)> {
        let (sx, sy) = self.xy(src);
        let mut arrivals = Vec::with_capacity(self.cfg.tiles() - 1);
        let mut row_time = vec![0 as Cycle; self.cfg.cols];
        row_time[sx] = now;

        // Phase 1: along the source row, east and west.
        for x in (0..sx).rev() {
            let from = self.tile(x + 1, sy);
            let t = self.traverse_link(row_time[x + 1], from, Dir::West, flits);
            row_time[x] = t;
            arrivals.push((self.tile(x, sy), t + flits.saturating_sub(1)));
        }
        for x in (sx + 1)..self.cfg.cols {
            let from = self.tile(x - 1, sy);
            let t = self.traverse_link(row_time[x - 1], from, Dir::East, flits);
            row_time[x] = t;
            arrivals.push((self.tile(x, sy), t + flits.saturating_sub(1)));
        }

        // Phase 2: each row tile forwards along its column.
        for (x, &base) in row_time.iter().enumerate() {
            let mut t_up = base;
            for y in (0..sy).rev() {
                let from = self.tile(x, y + 1);
                t_up = self.traverse_link(t_up, from, Dir::North, flits);
                arrivals.push((self.tile(x, y), t_up + flits.saturating_sub(1)));
            }
            let mut t_down = base;
            for y in (sy + 1)..self.cfg.rows {
                let from = self.tile(x, y - 1);
                t_down = self.traverse_link(t_down, from, Dir::South, flits);
                arrivals.push((self.tile(x, y), t_down + flits.saturating_sub(1)));
            }
        }

        self.stats.broadcasts.inc();
        self.stats.messages.inc();
        let nlinks = (self.cfg.tiles() - 1) as u64;
        self.stats.routing_events.add(nlinks);
        self.stats.flit_link_traversals.add(nlinks * flits);
        // Per-destination delivery latency. Kept out of the unicast
        // `message_latency` Running: tree deliveries are a different
        // population (one injection, tiles - 1 arrivals) and would skew
        // the point-to-point figure.
        for &(_, at) in &arrivals {
            self.stats.broadcast_latency.record(at - now);
        }
        arrivals
    }

    /// One link traversal for the broadcast tree, applying contention.
    fn traverse_link(&mut self, depart: Cycle, from: usize, dir: Dir, flits: u64) -> Cycle {
        let li = self.link_index(from, dir);
        let mut t = depart + self.cfg.hop_cycles();
        if self.cfg.model_contention {
            if t < self.link_free[li] {
                let stall = self.link_free[li] - t;
                self.stats.contention_cycles.add(stall);
                self.link_stall[li] += stall;
                t = self.link_free[li];
            }
            self.link_free[li] = t + flits.saturating_sub(1);
        }
        self.link_busy[li] += flits;
        t
    }
}

cmpsim_engine::impl_snap!(NocConfig {
    cols,
    rows,
    link_cycles,
    switch_cycles,
    router_cycles,
    flit_bytes,
    control_flits,
    data_flits,
    model_contention,
});

cmpsim_engine::impl_snap!(Mesh { cfg, link_free, link_busy, link_stall, stats });

#[cfg(test)]
mod tests {
    use super::*;

    fn mesh() -> Mesh {
        Mesh::new(NocConfig::default())
    }

    #[test]
    fn distance_is_manhattan() {
        let m = mesh();
        assert_eq!(m.distance(0, 0), 0);
        assert_eq!(m.distance(0, 7), 7);
        assert_eq!(m.distance(0, 63), 14);
        assert_eq!(m.distance(9, 18), 2);
    }

    #[test]
    fn idle_latency_matches_table_iii() {
        let mut m = mesh();
        // 1 hop, control packet: 2 (link) + 2 (switch) + 1 (router) = 5.
        let d = m.send(0, 0, 1, 1);
        assert_eq!(d.arrival, 5);
        assert_eq!(d.links, 1);
        // 3 hops, data packet (5 flits): 3*5 + 4 tail cycles = 19.
        let d = m.send(100, 0, 3, 5);
        assert_eq!(d.arrival, 100 + 19);
        assert_eq!(d.links, 3);
    }

    #[test]
    fn local_delivery_is_free() {
        let mut m = mesh();
        let d = m.send(10, 5, 5, 5);
        assert_eq!(d.arrival, 11);
        assert_eq!(d.links, 0);
        assert_eq!(m.stats().messages.get(), 0);
        assert_eq!(m.stats().local_deliveries.get(), 1);
    }

    #[test]
    fn route_length_equals_distance() {
        let m = mesh();
        for src in 0..64 {
            for dst in 0..64 {
                assert_eq!(m.route(src, dst).count() as u64, m.distance(src, dst));
                assert_eq!(m.route(src, dst).len() as u64, m.distance(src, dst));
            }
        }
    }

    #[test]
    fn passes_through_follows_xy_routes() {
        let m = mesh();
        // 0 -> 63 routes along row 0 then down column 7.
        assert!(m.passes_through(0, 63, 0));
        assert!(m.passes_through(0, 63, 3)); // row 0
        assert!(m.passes_through(0, 63, 7)); // turn corner
        assert!(m.passes_through(0, 63, 31)); // column 7
        assert!(m.passes_through(0, 63, 63));
        assert!(!m.passes_through(0, 63, 8)); // column 0 below the row
        assert!(!m.passes_through(0, 63, 56)); // opposite corner
        // Local delivery only involves its own router.
        assert!(m.passes_through(5, 5, 5));
        assert!(!m.passes_through(5, 5, 6));
    }

    #[test]
    fn contention_serializes_same_link() {
        let mut m = mesh();
        // Two 5-flit messages over the same single link, injected together.
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 0, 1, 5);
        assert!(b.arrival > a.arrival, "second message must queue");
        assert!(m.stats().contention_cycles.get() > 0);
    }

    #[test]
    fn no_contention_when_disabled() {
        let mut m = Mesh::new(NocConfig { model_contention: false, ..NocConfig::default() });
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 0, 1, 5);
        assert_eq!(a.arrival, b.arrival);
        assert_eq!(m.stats().contention_cycles.get(), 0);
    }

    #[test]
    fn disjoint_paths_do_not_interact() {
        let mut m = mesh();
        let a = m.send(0, 0, 1, 5);
        let b = m.send(0, 62, 63, 5);
        assert_eq!(a.arrival, b.arrival);
    }

    #[test]
    fn energy_counts_accumulate() {
        let mut m = mesh();
        m.send(0, 0, 2, 5); // 2 links, 10 flit-links
        m.send(0, 0, 8, 1); // 1 link, 1 flit-link
        assert_eq!(m.stats().routing_events.get(), 3);
        assert_eq!(m.stats().flit_link_traversals.get(), 11);
        assert_eq!(m.stats().messages.get(), 2);
    }

    #[test]
    fn broadcast_reaches_everyone_once() {
        let mut m = mesh();
        let arr = m.broadcast(0, 27, 1);
        assert_eq!(arr.len(), 63);
        let mut seen = [false; 64];
        for (t, at) in &arr {
            assert!(!seen[*t], "tile {} reached twice", t);
            seen[*t] = true;
            assert!(*at > 0);
        }
        assert!(!seen[27], "source must not receive its own broadcast");
    }

    #[test]
    fn broadcast_uses_tiles_minus_one_links() {
        let mut m = mesh();
        m.broadcast(0, 0, 1);
        assert_eq!(m.stats().routing_events.get(), 63);
        assert_eq!(m.stats().flit_link_traversals.get(), 63);
        assert_eq!(m.stats().broadcasts.get(), 1);
    }

    #[test]
    fn broadcast_latency_recorded_per_destination() {
        let mut m = Mesh::new(NocConfig { model_contention: false, ..NocConfig::default() });
        m.send(0, 0, 1, 1);
        m.broadcast(100, 0, 1);
        // One unicast record, 63 broadcast records — separate populations.
        assert_eq!(m.stats().message_latency.count(), 1);
        assert_eq!(m.stats().broadcast_latency.count(), 63);
        // Idle network: nearest neighbor = one hop (5 cycles), far corner
        // = 14 hops (70 cycles).
        assert_eq!(m.stats().broadcast_latency.min(), Some(5));
        assert_eq!(m.stats().broadcast_latency.max(), Some(70));
    }

    #[test]
    fn broadcast_arrival_grows_with_distance() {
        let mut m = Mesh::new(NocConfig { model_contention: false, ..NocConfig::default() });
        let arr = m.broadcast(0, 0, 1);
        let lookup = |tile: usize| arr.iter().find(|(t, _)| *t == tile).unwrap().1;
        // Along the row: +5 cycles per hop.
        assert_eq!(lookup(1), 5);
        assert_eq!(lookup(7), 35);
        // Down the first column.
        assert_eq!(lookup(8), 5);
        assert_eq!(lookup(56), 35);
        // Far corner: 14 hops * 5.
        assert_eq!(lookup(63), 70);
    }

    #[test]
    fn link_busy_tracks_flit_traversals() {
        let mut m = mesh();
        m.send(0, 0, 2, 5); // 2 links x 5 flits
        assert_eq!(m.link_busy().iter().sum::<u64>(), 10);
        m.broadcast(100, 0, 1); // 63 links x 1 flit
        assert_eq!(m.link_busy().iter().sum::<u64>(), 73);
        m.reset_stats();
        assert_eq!(m.link_busy().iter().sum::<u64>(), 0);
    }

    #[test]
    fn link_stall_splits_contention_cycles() {
        let mut m = mesh();
        // Serialize several data packets over the same link, plus a
        // contended broadcast, then check the per-link split ties out.
        for _ in 0..4 {
            m.send(0, 0, 1, 5);
        }
        m.broadcast(0, 0, 5);
        assert!(m.stats().contention_cycles.get() > 0);
        assert_eq!(
            m.link_contention().iter().sum::<u64>(),
            m.stats().contention_cycles.get(),
            "per-link stalls must sum to the aggregate contention counter"
        );
        m.reset_stats();
        assert_eq!(m.link_contention().iter().sum::<u64>(), 0);
    }

    #[test]
    fn directed_link_count() {
        // 8x8 mesh: 2*7*8 horizontal + 2*7*8 vertical = 224 directed links.
        assert_eq!(mesh().directed_links(), 224);
        let m = Mesh::new(NocConfig { cols: 4, rows: 4, ..NocConfig::default() });
        assert_eq!(m.directed_links(), 48);
        // Busy accumulation only ever touches physical links.
        let mut m = mesh();
        m.broadcast(0, 27, 5);
        let used = m.link_busy().iter().filter(|&&b| b > 0).count();
        assert!(used <= m.directed_links());
    }

    #[test]
    fn avg_distance_formula() {
        let cfg = NocConfig::default();
        // (8+8)/3 = 5.33 for one-way; the paper's "two-hop miss" figure of
        // 10.6 links is twice this.
        assert!((cfg.avg_distance() - 16.0 / 3.0).abs() < 1e-9);
        assert!((2.0 * cfg.avg_distance() - 10.6).abs() < 0.1);
    }

    #[test]
    fn empirical_avg_distance_matches_theory() {
        let m = mesh();
        let mut sum = 0u64;
        let mut n = 0u64;
        for a in 0..64 {
            for b in 0..64 {
                sum += m.distance(a, b);
                n += 1;
            }
        }
        let avg = sum as f64 / n as f64;
        // Exact mean over all ordered pairs including a==b: 2*(c^2-1)/(3c) per
        // dimension summed = 5.25 for 8x8.
        assert!((avg - 5.25).abs() < 1e-9, "avg {avg}");
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    proptest! {
        /// Distance is a metric: symmetric, zero iff equal, triangle
        /// inequality.
        #[test]
        fn distance_is_a_metric(a in 0usize..64, b in 0usize..64, c in 0usize..64) {
            let m = Mesh::new(NocConfig::default());
            prop_assert_eq!(m.distance(a, b), m.distance(b, a));
            prop_assert_eq!(m.distance(a, a), 0);
            prop_assert!(m.distance(a, c) <= m.distance(a, b) + m.distance(b, c));
        }

        /// Idle-network latency is exactly hops * hop_cycles plus the
        /// tail serialization.
        #[test]
        fn idle_latency_formula(src in 0usize..64, dst in 0usize..64, flits in 1u64..8) {
            let cfg = NocConfig { model_contention: false, ..NocConfig::default() };
            let mut m = Mesh::new(cfg);
            let d = m.send(1000, src, dst, flits);
            if src == dst {
                prop_assert_eq!(d.arrival, 1001);
            } else {
                let hops = m.distance(src, dst);
                prop_assert_eq!(d.arrival, 1000 + hops * cfg.hop_cycles() + (flits - 1));
                prop_assert_eq!(d.links, hops);
            }
        }

        /// Contention can only delay, never accelerate, a message.
        #[test]
        fn contention_is_monotone(msgs in prop::collection::vec(
            (0usize..64, 0usize..64, 1u64..6), 1..40,
        )) {
            let mut contended = Mesh::new(NocConfig::default());
            let mut ideal =
                Mesh::new(NocConfig { model_contention: false, ..NocConfig::default() });
            for (i, &(s, d, f)) in msgs.iter().enumerate() {
                let t = i as Cycle; // near-simultaneous injection
                let a = contended.send(t, s, d, f);
                let b = ideal.send(t, s, d, f);
                prop_assert!(a.arrival >= b.arrival);
            }
        }

        /// Broadcast reaches all other tiles exactly once, from any root.
        #[test]
        fn broadcast_covers_chip(src in 0usize..64) {
            let mut m = Mesh::new(NocConfig::default());
            let arrivals = m.broadcast(0, src, 1);
            prop_assert_eq!(arrivals.len(), 63);
            let mut seen = [false; 64];
            for (t, _) in arrivals {
                prop_assert!(!seen[t]);
                seen[t] = true;
            }
            prop_assert!(!seen[src]);
        }
    }
}
