#![warn(missing_docs)]

//! # cmpsim-noc
//!
//! Network-on-chip model for the tiled CMP: a bidimensional mesh with
//! dimension-ordered (XY) routing, per-link wormhole serialization and
//! contention, and tree-based broadcast support (the Garnet-with-broadcast
//! configuration the paper uses).
//!
//! Timing follows Table III of the paper: 2 cycles per link, 2 cycles per
//! switch and 1 cycle per router in the absence of contention, 16-byte
//! flits and links, 1-flit control packets and 5-flit data packets. A
//! message of `F` flits occupies each traversed link for `F` cycles after
//! its header, which is how contention (and the broadcast pressure of
//! DiCo-Arin in high-miss-rate workloads) becomes visible in both latency
//! and the queueing component of power.
//!
//! Energy accounting exports two raw counts per message: *routing events*
//! (one per router hop) and *flit-link traversals*; `cmpsim-power` applies
//! the paper's network energy model (routing a message costs as much as an
//! L1 block read and 4x a flit transmission) to these counts.

pub mod mesh;
pub mod stats;

pub use mesh::{Delivery, Mesh, NocConfig};
pub use stats::{publish_running, NocStats};
