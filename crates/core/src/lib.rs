#![warn(missing_docs)]

//! # cmpsim
//!
//! The complete simulator assembling every substrate of the workspace —
//! the reproduction of *Energy-Efficient Cache Coherence Protocols in
//! Chip-Multiprocessors for Server Consolidation* (ICPP 2011):
//!
//! * a tiled CMP (8x8 by default) with in-order cores, split-level
//!   caches and per-tile L2 banks, driven by one of the four coherence
//!   protocols (`Directory`, `DiCo`, `DiCo-Providers`, `DiCo-Arin`);
//! * a 2D-mesh NoC with contention and broadcast support;
//! * eight memory controllers along the chip borders (300-cycle DRAM
//!   plus a small random delay, per Table III);
//! * consolidated virtual machines with memory deduplication and the
//!   matched / alternative tile placements of Figure 6;
//! * the synthetic workloads of Table IV;
//! * energy accounting through `cmpsim-power`.
//!
//! # Quickstart
//!
//! ```
//! use cmpsim::{run_benchmark, SystemConfig};
//! use cmpsim_protocols::ProtocolKind;
//! use cmpsim_workloads::Benchmark;
//!
//! let cfg = SystemConfig::smoke(); // tiny run for doc tests
//! let result = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, &cfg)
//!     .expect("simulation completed");
//! assert!(result.measured_refs > 0);
//! println!(
//!     "{}: {:.4} refs/cycle, {:.2} uJ",
//!     result.protocol.name(),
//!     result.throughput(),
//!     result.total_dynamic_uj()
//! );
//! ```
//!
//! Runs that stop making forward progress (deadlock, livelock, lost
//! message) return a typed [`SimError`] with a structured dump and a
//! JSON replay artifact instead of spinning forever — see [`error`]
//! and [`replay`].
//!
//! # Fault injection
//!
//! A seeded [`FaultPlan`] ([`SystemConfig::with_fault_plan`]) injects
//! deterministic NoC faults — delay spikes, duplicates, reordering,
//! bounded drops, transient router outages — which the simulator
//! recovers from with per-MSHR timeouts, capped-backoff retransmission
//! and duplicate suppression. The [`chaos`] module verifies recovery
//! differentially: a recovered run must end bit-identical (in
//! architectural state) to its fault-free golden twin.
//!
//! # Observability
//!
//! Every run's stats publish into a unified [`MetricsRegistry`]
//! ([`RunResult::metrics`]); opt-in extras record a coherence
//! transaction trace ([`SystemConfig::with_tracing`], exported as
//! Chrome trace-event JSON via [`trace`]) and an interval time-series
//! ([`SystemConfig::with_interval`], exported as CSV/JSON via
//! [`interval`]). Both are observation-only: simulated timing is
//! identical with them on or off.

pub mod attr;
pub mod chaos;
pub mod compare;
pub mod config;
pub mod error;
pub mod interval;
pub mod manifest;
pub mod orchestrator;
pub mod progress;
pub mod replay;
pub mod report;
pub mod result;
pub mod sim;
pub mod snapshot;
pub mod trace;
pub mod vmstat;

pub use attr::{BreakdownLog, TxAttribution};
pub use chaos::{
    chaos_sweep, chaos_sweep_with_options, chaos_sweep_with_progress, run_differential,
    CellOutcome, ChaosCell, ChaosReport, DiffOutcome,
};
pub use compare::{CompareOptions, CompareReport, MetricDiff, Verdict};
pub use config::SystemConfig;
pub use error::{FaultContext, SimError, StallReason, TimeoutReport};
pub use interval::{IntervalSample, IntervalSampler, TimeSeries};
pub use manifest::RunManifest;
pub use orchestrator::{
    parse_journal, resume_sweep, run_sweep, CellError, CellState, Injection, SweepCell,
    SweepOptions, SweepOutcome, SweepSpec,
};
pub use progress::ProgressSink;
pub use replay::ReplayArtifact;
pub use result::{ArchState, RunResult, SpatialLog};
pub use sim::{
    build_protocol, run_benchmark, run_benchmark_with_store, run_matrix, run_matrix_with_options,
    run_matrix_with_progress, snapshot_eligible, CmpSimulator,
};
pub use snapshot::{snapshot_key, SnapshotError, SnapshotStore, SNAPSHOT_VERSION};
pub use trace::{TraceLog, TxTracer};
pub use vmstat::{ascii_heatmap, heatmap_csv, heatmap_json, vmstat_json, vmstat_tables};

// Re-export the registry types so downstream binaries need not depend
// on cmpsim-engine directly.
pub use cmpsim_engine::{env, FaultKind, FaultPlan, FaultStats, MetricSource, MetricsRegistry};

// Re-export the pieces callers need to drive experiments.
pub use cmpsim_protocols::{MissClass, ProtocolKind};
pub use cmpsim_virt::Placement;
pub use cmpsim_workloads::{Benchmark, Metric};
