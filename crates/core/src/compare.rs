//! Cross-run regression analytics: structural diff of two runs (or two
//! whole matrices) of JSON artifacts, with per-metric verdicts and a
//! machine-readable diff document for CI gating.
//!
//! Artifacts from this simulator are deterministic, so the default
//! contract is *byte-equality per metric*: integer-valued leaves
//! (counters, histogram buckets, flit/message totals) must match
//! exactly; float-valued leaves (derived gauges, energies) may be given
//! a relative tolerance for cross-toolchain comparisons but default to
//! exact as well. Each differing metric gets a verdict — `improved`,
//! `regressed` or `changed` — from a small direction table (cycles and
//! energy are lower-better, throughput and hit rates higher-better).
//!
//! Two manifest-stamped artifacts with the *same* `run_id` that differ
//! in any metric are flagged as a **determinism violation**: same
//! inputs must give same outputs, so this is never a performance
//! regression but a bug (or a corrupted artifact).
//!
//! The `baseline` mode compares host-side events/s from the
//! criterion-shim artifact against a checked-in baseline with a
//! regression threshold, because wall clock — unlike everything above —
//! is legitimately noisy.

use crate::manifest::manifest_of;
use crate::replay::Value;

/// Schema tag of the JSON diff document.
pub const COMPARE_SCHEMA: &str = "cmpsim-compare-v1";

/// Per-metric comparison outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Byte-identical (or within the float tolerance).
    Identical,
    /// Differs in the direction the metric is supposed to move.
    Improved,
    /// Differs in the wrong direction.
    Regressed,
    /// Differs, and the metric has no known better/worse direction.
    Changed,
    /// Present only in B.
    MissingA,
    /// Present only in A.
    MissingB,
}

impl Verdict {
    /// Stable lowercase name used in the JSON diff.
    pub fn name(self) -> &'static str {
        match self {
            Verdict::Identical => "identical",
            Verdict::Improved => "improved",
            Verdict::Regressed => "regressed",
            Verdict::Changed => "changed",
            Verdict::MissingA => "missing_a",
            Verdict::MissingB => "missing_b",
        }
    }
}

/// One differing metric (identical metrics are only counted).
#[derive(Debug, Clone)]
pub struct MetricDiff {
    /// File name, for directory (matrix) comparisons.
    pub file: Option<String>,
    /// Dotted path of the leaf, e.g. `counters.sim.cycles`.
    pub metric: String,
    /// Rendered value in A (absent for `missing_a`).
    pub a: Option<String>,
    /// Rendered value in B (absent for `missing_b`).
    pub b: Option<String>,
    /// Relative change in percent, when both sides are numeric.
    pub delta_pct: Option<f64>,
    /// The verdict.
    pub verdict: Verdict,
}

/// Knobs for a comparison.
#[derive(Debug, Clone, Default)]
pub struct CompareOptions {
    /// Relative tolerance applied to float-valued leaves (0 = exact).
    pub tolerance: f64,
    /// Whether `improved` verdicts still count as a pass.
    pub allow_improved: bool,
}

/// The full result of comparing two runs or matrices.
#[derive(Debug, Clone, Default)]
pub struct CompareReport {
    /// Label (path) of side A.
    pub a_label: String,
    /// Label (path) of side B.
    pub b_label: String,
    /// Total leaves compared.
    pub compared: usize,
    /// Leaves that matched.
    pub identical: usize,
    /// Every differing leaf.
    pub diffs: Vec<MetricDiff>,
    /// Same `run_id` on both sides yet metrics differ.
    pub determinism_violation: bool,
}

impl CompareReport {
    /// Whether the comparison passes under `opts`.
    pub fn passed(&self, opts: &CompareOptions) -> bool {
        !self.determinism_violation
            && self.diffs.iter().all(|d| {
                d.verdict == Verdict::Identical
                    || (opts.allow_improved && d.verdict == Verdict::Improved)
            })
    }

    fn count(&self, v: Verdict) -> usize {
        self.diffs.iter().filter(|d| d.verdict == v).count()
    }

    /// Renders the machine-readable JSON diff document.
    pub fn to_json(&self, opts: &CompareOptions) -> String {
        let mut summary = Value::object();
        summary.set("compared", Value::uint(self.compared as u64));
        summary.set("identical", Value::uint(self.identical as u64));
        summary.set("improved", Value::uint(self.count(Verdict::Improved) as u64));
        summary.set("regressed", Value::uint(self.count(Verdict::Regressed) as u64));
        summary.set("changed", Value::uint(self.count(Verdict::Changed) as u64));
        summary.set(
            "missing",
            Value::uint((self.count(Verdict::MissingA) + self.count(Verdict::MissingB)) as u64),
        );

        let mut diffs = Vec::new();
        for d in &self.diffs {
            let mut j = Value::object();
            j.set(
                "file",
                match &d.file {
                    Some(f) => Value::string(f),
                    None => Value::Null,
                },
            );
            j.set("metric", Value::string(&d.metric));
            j.set("a", d.a.as_ref().map_or(Value::Null, |s| Value::Num(s.clone())));
            j.set("b", d.b.as_ref().map_or(Value::Null, |s| Value::Num(s.clone())));
            j.set("delta_pct", d.delta_pct.map_or(Value::Null, Value::float));
            j.set("verdict", Value::string(d.verdict.name()));
            diffs.push(j);
        }

        let mut j = Value::object();
        j.set("schema", Value::string(COMPARE_SCHEMA));
        j.set("mode", Value::string("artifacts"));
        j.set("a", Value::string(&self.a_label));
        j.set("b", Value::string(&self.b_label));
        j.set("passed", Value::boolean(self.passed(opts)));
        j.set("determinism_violation", Value::boolean(self.determinism_violation));
        j.set("summary", summary);
        j.set("diffs", Value::Arr(diffs));
        let mut out = String::new();
        j.render_to(&mut out);
        out.push('\n');
        out
    }

    /// Human summary lines for stdout.
    pub fn lines(&self) -> Vec<String> {
        let mut out = vec![format!(
            "compare: {} vs {}: {} metrics, {} identical, {} differing",
            self.a_label,
            self.b_label,
            self.compared,
            self.identical,
            self.diffs.len()
        )];
        if self.determinism_violation {
            out.push(
                "DETERMINISM VIOLATION: same run_id on both sides but metrics differ".to_string(),
            );
        }
        for d in &self.diffs {
            let loc = d.file.as_deref().map(|f| format!("{f}: ")).unwrap_or_default();
            let delta = d.delta_pct.map(|p| format!(" ({p:+.2}%)")).unwrap_or_default();
            out.push(format!(
                "{:9} {loc}{}: {} -> {}{delta}",
                d.verdict.name().to_uppercase(),
                d.metric,
                d.a.as_deref().unwrap_or("-"),
                d.b.as_deref().unwrap_or("-"),
            ));
        }
        out
    }
}

/// Direction of a metric: `Some(true)` = lower is better, `Some(false)`
/// = higher is better, `None` = no preferred direction.
fn lower_is_better(metric: &str) -> Option<bool> {
    // Strip the artifact section (counters./gauges.) if present.
    let name = metric.strip_prefix("counters.").or_else(|| metric.strip_prefix("gauges.")).unwrap_or(metric);
    if name == "sim.cycles"
        || name == "sim.avg_finish"
        || name == "sim.fault_overhead_cycles"
        || name.starts_with("sim.vm_finish")
        || (name.starts_with("vm.") && name.ends_with(".finish_cycles"))
        || name.starts_with("energy.")
        || name.starts_with("attr.energy.")
        || name.starts_with("attr.lat.")
        || name.starts_with("noc.contention")
    {
        return Some(true);
    }
    if name == "sim.throughput" || name == "sim.dedup_savings" || name.ends_with("hit_rate") {
        return Some(false);
    }
    None
}

/// Flattens a JSON document to `(dotted path, raw token, is_float)`
/// leaves, skipping the embedded `manifest` subtree (provenance is
/// compared separately, not metric-by-metric).
fn flatten(v: &Value, prefix: &str, top: bool, out: &mut Vec<(String, String, bool)>) {
    match v {
        Value::Obj(fields) => {
            for (k, val) in fields {
                if top && k == "manifest" {
                    continue;
                }
                let path = if prefix.is_empty() { k.clone() } else { format!("{prefix}.{k}") };
                flatten(val, &path, false, out);
            }
        }
        Value::Arr(items) => {
            for (i, val) in items.iter().enumerate() {
                flatten(val, &format!("{prefix}[{i}]"), false, out);
            }
        }
        Value::Num(raw) => {
            let is_float = raw.contains(['.', 'e', 'E']);
            out.push((prefix.to_string(), raw.clone(), is_float));
        }
        Value::Str(s) => out.push((prefix.to_string(), format!("\"{s}\""), false)),
        Value::Bool(b) => out.push((prefix.to_string(), b.to_string(), false)),
        Value::Null => out.push((prefix.to_string(), "null".to_string(), false)),
    }
}

fn judge(metric: &str, a: &str, b: &str, float_class: bool, opts: &CompareOptions) -> (Verdict, Option<f64>) {
    if a == b {
        return (Verdict::Identical, Some(0.0));
    }
    let (na, nb) = (a.parse::<f64>().ok(), b.parse::<f64>().ok());
    let (Some(na), Some(nb)) = (na, nb) else {
        return (Verdict::Changed, None);
    };
    let delta_pct = if na != 0.0 { Some((nb - na) / na * 100.0) } else { None };
    if float_class && opts.tolerance > 0.0 {
        let scale = na.abs().max(nb.abs());
        if (nb - na).abs() <= opts.tolerance * scale {
            return (Verdict::Identical, delta_pct);
        }
    }
    let verdict = match lower_is_better(metric) {
        Some(true) => {
            if nb < na {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
        Some(false) => {
            if nb > na {
                Verdict::Improved
            } else {
                Verdict::Regressed
            }
        }
        None => Verdict::Changed,
    };
    (verdict, delta_pct)
}

/// Compares two artifact documents (already parsed). `file` labels the
/// diffs for matrix comparisons.
pub fn compare_docs(
    a: &Value,
    b: &Value,
    file: Option<&str>,
    opts: &CompareOptions,
    report: &mut CompareReport,
) {
    let mut la = Vec::new();
    let mut lb = Vec::new();
    flatten(a, "", true, &mut la);
    flatten(b, "", true, &mut lb);

    let mut any_diff = false;
    let index_b: std::collections::BTreeMap<&str, (&str, bool)> =
        lb.iter().map(|(p, t, f)| (p.as_str(), (t.as_str(), *f))).collect();
    let index_a: std::collections::BTreeSet<&str> = la.iter().map(|(p, _, _)| p.as_str()).collect();

    for (path, tok_a, float_a) in &la {
        report.compared += 1;
        match index_b.get(path.as_str()) {
            Some(&(tok_b, float_b)) => {
                let (verdict, delta_pct) =
                    judge(path, tok_a, tok_b, *float_a || float_b, opts);
                if verdict == Verdict::Identical {
                    // Byte-equal or within tolerance: counted, not listed.
                    report.identical += 1;
                } else {
                    any_diff = true;
                    report.diffs.push(MetricDiff {
                        file: file.map(str::to_string),
                        metric: path.clone(),
                        a: Some(tok_a.clone()),
                        b: Some(tok_b.to_string()),
                        delta_pct,
                        verdict,
                    });
                }
            }
            None => {
                any_diff = true;
                report.diffs.push(MetricDiff {
                    file: file.map(str::to_string),
                    metric: path.clone(),
                    a: Some(tok_a.clone()),
                    b: None,
                    delta_pct: None,
                    verdict: Verdict::MissingB,
                });
            }
        }
    }
    for (path, tok_b, _) in &lb {
        if !index_a.contains(path.as_str()) {
            report.compared += 1;
            any_diff = true;
            report.diffs.push(MetricDiff {
                file: file.map(str::to_string),
                metric: path.clone(),
                a: None,
                b: Some(tok_b.clone()),
                delta_pct: None,
                verdict: Verdict::MissingA,
            });
        }
    }

    // Same declared identity but different content → the simulator (or
    // the artifact pipeline) broke its determinism contract.
    if any_diff {
        if let (Some(ma), Some(mb)) = (manifest_of(a), manifest_of(b)) {
            if ma.run_id == mb.run_id {
                report.determinism_violation = true;
            }
        }
    }
}

/// Compares two artifact files or two directories of artifact files
/// (matrix runs; files are paired by name).
pub fn compare_paths(
    a: &std::path::Path,
    b: &std::path::Path,
    opts: &CompareOptions,
) -> Result<CompareReport, String> {
    let mut report = CompareReport {
        a_label: a.display().to_string(),
        b_label: b.display().to_string(),
        ..Default::default()
    };
    if a.is_dir() != b.is_dir() {
        return Err("compare: A and B must both be files or both be directories".to_string());
    }
    if !a.is_dir() {
        let da = parse_file(a)?;
        let db = parse_file(b)?;
        compare_docs(&da, &db, None, opts, &mut report);
        return Ok(report);
    }

    let names_a = json_names(a)?;
    let names_b = json_names(b)?;
    for name in names_a.union(&names_b).collect::<std::collections::BTreeSet<_>>() {
        match (names_a.contains(name.as_str()), names_b.contains(name.as_str())) {
            (true, true) => {
                let da = parse_file(&a.join(name))?;
                let db = parse_file(&b.join(name))?;
                compare_docs(&da, &db, Some(name), opts, &mut report);
            }
            // The token must stay a valid JSON fragment (it is spliced
            // into the diff document verbatim), hence the inner quotes.
            (true, false) => report.diffs.push(MetricDiff {
                file: Some(name.clone()),
                metric: "<file>".to_string(),
                a: Some("\"present\"".to_string()),
                b: None,
                delta_pct: None,
                verdict: Verdict::MissingB,
            }),
            (false, _) => report.diffs.push(MetricDiff {
                file: Some(name.clone()),
                metric: "<file>".to_string(),
                a: None,
                b: Some("\"present\"".to_string()),
                delta_pct: None,
                verdict: Verdict::MissingA,
            }),
        }
    }
    Ok(report)
}

fn parse_file(path: &std::path::Path) -> Result<Value, String> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
    Value::parse(&text).map_err(|e| format!("{}: {e}", path.display()))
}

fn json_names(dir: &std::path::Path) -> Result<std::collections::BTreeSet<String>, String> {
    let mut names = std::collections::BTreeSet::new();
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot list {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| e.to_string())?;
        let name = entry.file_name().to_string_lossy().into_owned();
        if name.ends_with(".json") && entry.path().is_file() {
            names.insert(name);
        }
    }
    Ok(names)
}

/// Outcome of a `--baseline` (host-throughput) check.
#[derive(Debug, Clone, Default)]
pub struct BaselineReport {
    /// One `OK`/`FAIL` line per benchmark id.
    pub lines: Vec<String>,
    /// Failure descriptions (empty = within threshold).
    pub failures: Vec<String>,
    /// Diff entries mirroring the failures for the JSON document.
    pub diffs: Vec<MetricDiff>,
}

impl BaselineReport {
    /// Whether every id stayed within the threshold.
    pub fn passed(&self) -> bool {
        self.failures.is_empty()
    }

    /// JSON diff document for the baseline mode.
    pub fn to_json(&self, current: &str, baseline: &str, threshold: f64) -> String {
        let mut diffs = Vec::new();
        for d in &self.diffs {
            let mut j = Value::object();
            j.set("file", Value::Null);
            j.set("metric", Value::string(&d.metric));
            j.set("a", d.a.as_ref().map_or(Value::Null, |s| Value::Num(s.clone())));
            j.set("b", d.b.as_ref().map_or(Value::Null, |s| Value::Num(s.clone())));
            j.set("delta_pct", d.delta_pct.map_or(Value::Null, Value::float));
            j.set("verdict", Value::string(d.verdict.name()));
            diffs.push(j);
        }
        let mut summary = Value::object();
        summary.set("compared", Value::uint(self.lines.len() as u64));
        summary.set("identical", Value::uint((self.lines.len() - self.diffs.len()) as u64));
        summary.set("improved", Value::uint(0));
        summary.set("regressed", Value::uint(self.diffs.len() as u64));
        summary.set("changed", Value::uint(0));
        summary.set("missing", Value::uint(0));
        let mut j = Value::object();
        j.set("schema", Value::string(COMPARE_SCHEMA));
        j.set("mode", Value::string("baseline"));
        j.set("a", Value::string(baseline));
        j.set("b", Value::string(current));
        j.set("passed", Value::boolean(self.passed()));
        j.set("determinism_violation", Value::boolean(false));
        j.set("threshold", Value::float(threshold));
        j.set("summary", summary);
        j.set("diffs", Value::Arr(diffs));
        let mut out = String::new();
        j.render_to(&mut out);
        out.push('\n');
        out
    }
}

/// Host-throughput regression gate: events/s per benchmark id from
/// `events / (min_ns / 1e9)`, failing any id more than
/// `threshold` below the baseline. Wall-clock throughput is the one
/// legitimately noisy quantity in the pipeline, hence the generous
/// default threshold (0.20) instead of exact matching.
pub fn compare_baseline(
    current: &Value,
    baseline: &Value,
    threshold: f64,
) -> Result<BaselineReport, String> {
    // The bench artifact carries only timings; the deterministic event
    // counts live in the baseline, so `events` is required there and
    // ignored on the current side.
    let results = |doc: &Value, what: &str, want_events: bool| -> Result<Vec<(String, f64, f64)>, String> {
        let Value::Arr(items) = doc.field("results")? else {
            return Err(format!("{what}: \"results\" is not an array"));
        };
        items
            .iter()
            .map(|r| {
                Ok((
                    r.field("id")?.as_str()?.to_string(),
                    if want_events { r.field("events")?.as_f64()? } else { 0.0 },
                    r.field("min_ns")?.as_f64()?,
                ))
            })
            .collect()
    };
    let cur: std::collections::BTreeMap<String, f64> = results(current, "current", false)?
        .into_iter()
        .map(|(id, _, ns)| (id, ns))
        .collect();

    let mut report = BaselineReport::default();
    for (id, base_events, base_ns) in results(baseline, "baseline", true)? {
        let Some(&cur_ns) = cur.get(&id) else {
            report.failures.push(format!("{id}: missing from current artifact"));
            report.diffs.push(MetricDiff {
                file: None,
                metric: id.clone(),
                a: Some(format!("{base_ns}")),
                b: None,
                delta_pct: None,
                verdict: Verdict::MissingB,
            });
            report.lines.push(format!("FAIL {id:45} missing from current artifact"));
            continue;
        };
        let base_eps = base_events / (base_ns / 1e9);
        let cur_eps = base_events / (cur_ns / 1e9);
        let delta = cur_eps / base_eps - 1.0;
        let status = if delta < -threshold { "FAIL" } else { "OK" };
        report.lines.push(format!(
            "{status:4} {id:45} baseline {base_eps:>12.0} ev/s   current {cur_eps:>12.0} ev/s   ({:+.1}%)",
            delta * 100.0
        ));
        if delta < -threshold {
            report.failures.push(format!(
                "{id}: {cur_eps:.0} events/s is {:.1}% below baseline {base_eps:.0}",
                -delta * 100.0
            ));
            report.diffs.push(MetricDiff {
                file: None,
                metric: format!("{id}.events_per_sec"),
                a: Some(format!("{base_eps:.0}")),
                b: Some(format!("{cur_eps:.0}")),
                delta_pct: Some(delta * 100.0),
                verdict: Verdict::Regressed,
            });
        }
    }
    Ok(report)
}

/// `--rebaseline`: rewrites the baseline document's `min_ns` fields
/// from the current artifact, returning the new baseline text.
pub fn rebaseline(current: &Value, baseline: &Value) -> Result<String, String> {
    let mut out = baseline.clone();
    let cur_ns: std::collections::BTreeMap<String, String> = match current.field("results")? {
        Value::Arr(items) => items
            .iter()
            .map(|r| {
                let id = r.field("id")?.as_str()?.to_string();
                let ns = match r.field("min_ns")? {
                    Value::Num(raw) => raw.clone(),
                    other => return Err(format!("min_ns is not a number: {other:?}")),
                };
                Ok((id, ns))
            })
            .collect::<Result<_, String>>()?,
        _ => return Err("current: \"results\" is not an array".to_string()),
    };
    let Value::Obj(fields) = &mut out else {
        return Err("baseline: not an object".to_string());
    };
    let Some((_, Value::Arr(items))) = fields.iter_mut().find(|(k, _)| k == "results") else {
        return Err("baseline: missing \"results\" array".to_string());
    };
    for item in items.iter_mut() {
        let id = item.field("id")?.as_str()?.to_string();
        let Some(ns) = cur_ns.get(&id) else {
            return Err(format!("rebaseline: id {id:?} missing from current artifact"));
        };
        let Value::Obj(entry) = item else {
            return Err("baseline: result entry is not an object".to_string());
        };
        match entry.iter_mut().find(|(k, _)| k == "min_ns") {
            Some((_, v)) => *v = Value::Num(ns.clone()),
            None => entry.push(("min_ns".to_string(), Value::Num(ns.clone()))),
        }
    }
    let mut text = String::new();
    out.render_to(&mut text);
    text.push('\n');
    Ok(text)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn metrics_doc(cycles: u64, throughput: f64) -> Value {
        let mut counters = Value::object();
        counters.set("sim.cycles", Value::uint(cycles));
        counters.set("noc.flits", Value::uint(1000));
        let mut gauges = Value::object();
        gauges.set("sim.throughput", Value::float(throughput));
        let mut doc = Value::object();
        doc.set("counters", counters);
        doc.set("gauges", gauges);
        doc
    }

    fn run_compare(a: &Value, b: &Value, opts: &CompareOptions) -> CompareReport {
        let mut r = CompareReport::default();
        compare_docs(a, b, None, opts, &mut r);
        r
    }

    #[test]
    fn identical_docs_pass() {
        let opts = CompareOptions::default();
        let r = run_compare(&metrics_doc(500, 0.25), &metrics_doc(500, 0.25), &opts);
        assert!(r.passed(&opts));
        assert_eq!(r.diffs.len(), 0);
        assert_eq!(r.compared, 3);
        assert_eq!(r.identical, 3);
    }

    #[test]
    fn higher_cycles_is_a_regression() {
        let opts = CompareOptions::default();
        let r = run_compare(&metrics_doc(500, 0.25), &metrics_doc(550, 0.25), &opts);
        assert!(!r.passed(&opts));
        assert_eq!(r.diffs.len(), 1);
        assert_eq!(r.diffs[0].metric, "counters.sim.cycles");
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        assert!((r.diffs[0].delta_pct.unwrap() - 10.0).abs() < 1e-9);
        assert!(r.to_json(&opts).contains("\"counters.sim.cycles\""));
    }

    #[test]
    fn lower_cycles_improves_and_can_be_allowed() {
        let strict = CompareOptions::default();
        let lenient = CompareOptions { allow_improved: true, ..Default::default() };
        let r = run_compare(&metrics_doc(500, 0.25), &metrics_doc(450, 0.25), &strict);
        assert_eq!(r.diffs[0].verdict, Verdict::Improved);
        assert!(!r.passed(&strict));
        assert!(r.passed(&lenient));
    }

    #[test]
    fn float_tolerance_applies_to_gauges_only() {
        let opts = CompareOptions { tolerance: 0.01, ..Default::default() };
        // Throughput off by 0.4% → tolerated; cycles off by 1 → exact class, fails.
        let r = run_compare(&metrics_doc(500, 0.250), &metrics_doc(500, 0.251), &opts);
        assert!(r.passed(&opts), "{:?}", r.diffs);
        let r = run_compare(&metrics_doc(500, 0.25), &metrics_doc(501, 0.25), &opts);
        assert!(!r.passed(&opts));
    }

    #[test]
    fn missing_metric_is_reported() {
        let opts = CompareOptions::default();
        let mut b = metrics_doc(500, 0.25);
        b.set("extra", Value::uint(1));
        let r = run_compare(&metrics_doc(500, 0.25), &b, &opts);
        assert_eq!(r.diffs.len(), 1);
        assert_eq!(r.diffs[0].verdict, Verdict::MissingA);
        assert_eq!(r.diffs[0].metric, "extra");
    }

    #[test]
    fn same_run_id_with_diffs_is_a_determinism_violation() {
        use crate::manifest::RunManifest;
        use crate::SystemConfig;
        let m = RunManifest::new(
            cmpsim_protocols::ProtocolKind::DiCo,
            cmpsim_workloads::Benchmark::Apache,
            &SystemConfig::smoke(),
        );
        let render = |doc: &Value| {
            let mut s = String::new();
            doc.render_to(&mut s);
            m.stamp(&s).unwrap()
        };
        let a = Value::parse(&render(&metrics_doc(500, 0.25))).unwrap();
        let b = Value::parse(&render(&metrics_doc(999, 0.25))).unwrap();
        let opts = CompareOptions::default();
        let r = run_compare(&a, &b, &opts);
        assert!(r.determinism_violation);
        assert!(!r.passed(&opts));
    }

    #[test]
    fn baseline_mode_matches_python_semantics() {
        let doc = |min_ns: u64| {
            let mut entry = Value::object();
            entry.set("id", Value::string("event_loop/dico/apache"));
            entry.set("events", Value::uint(1_000_000));
            entry.set("min_ns", Value::uint(min_ns));
            let mut d = Value::object();
            d.set("results", Value::Arr(vec![entry]));
            d
        };
        // 30% slower than baseline → fails the default 20% threshold.
        let r = compare_baseline(&doc(1_300_000_000), &doc(1_000_000_000), 0.20).unwrap();
        assert!(!r.passed());
        assert_eq!(r.diffs[0].verdict, Verdict::Regressed);
        // 10% slower → passes.
        let r = compare_baseline(&doc(1_100_000_000), &doc(1_000_000_000), 0.20).unwrap();
        assert!(r.passed(), "{:?}", r.failures);
        assert!(r.lines[0].starts_with("OK"));
    }

    #[test]
    fn rebaseline_rewrites_min_ns() {
        let doc = |min_ns: u64| {
            let mut entry = Value::object();
            entry.set("id", Value::string("event_loop/dico/apache"));
            entry.set("events", Value::uint(1_000_000));
            entry.set("min_ns", Value::uint(min_ns));
            let mut d = Value::object();
            d.set("results", Value::Arr(vec![entry]));
            d
        };
        let text = rebaseline(&doc(42), &doc(7)).unwrap();
        let v = Value::parse(&text).unwrap();
        let Value::Arr(items) = v.field("results").unwrap() else { panic!() };
        assert_eq!(items[0].field("min_ns").unwrap().as_u64().unwrap(), 42);
    }
}
