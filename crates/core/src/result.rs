//! Results of one simulation run, with the derived metrics every report
//! uses.

use crate::attr::BreakdownLog;
use crate::error::FaultContext;
use crate::interval::TimeSeries;
use crate::trace::TraceLog;
use cmpsim_engine::metrics::{MetricSource, MetricsRegistry};
use cmpsim_engine::{Cycle, FaultKind, HostProfile};

/// Timing-invariant summary of the architectural end state of a run,
/// keyed on logical (VM-relative) coordinates. Two runs over the same
/// configuration whose injected faults were all *recovered* must
/// compare equal here even though their cycle counts differ — the
/// differential check behind the fault-injection harness.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ArchState {
    /// splitmix64-chained digest over every `(vm, region, page index,
    /// block offset, committed version)` tuple with a nonzero version.
    pub version_digest: u64,
    /// Blocks with at least one committed write.
    pub versioned_blocks: u64,
    /// Copy-on-write faults taken by the hypervisor.
    pub cow_faults: u64,
    /// Logical pages mapped across all VMs.
    pub logical_pages: u64,
    /// Physical pages allocated.
    pub physical_pages: u64,
    /// References retired over the whole run (warm-up included).
    pub refs_done: u64,
}
/// Spatial (per-tile, per-link) counters of the measured window — the
/// raw grids behind the heatmap exports. Row-major tile order; links
/// are indexed `tile * 4 + direction` (East, West, North, South), the
/// mesh's directed-link layout.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SpatialLog {
    /// Mesh rows.
    pub rows: u64,
    /// Mesh columns.
    pub cols: u64,
    /// Flits each directed link carried.
    pub link_flits: Vec<u64>,
    /// Stall cycles each directed link charged (splits the chip-wide
    /// `contention_cycles` counter).
    pub link_contention: Vec<u64>,
    /// L1 misses each tile opened.
    pub tile_misses: Vec<u64>,
    /// References each tile retired.
    pub tile_refs: Vec<u64>,
    /// The VM each tile's core belongs to.
    pub vm_of: Vec<usize>,
}

use cmpsim_noc::NocStats;
use cmpsim_power::{CacheEnergy, EnergyModel, NetworkEnergy};
use cmpsim_protocols::{MissClass, ProtoStats, ProtocolKind};
use cmpsim_virt::Placement;
use cmpsim_workloads::{Benchmark, Metric};

/// Everything measured in one run.
#[derive(Debug, Clone)]
pub struct RunResult {
    /// Protocol simulated.
    pub protocol: ProtocolKind,
    /// Benchmark configuration.
    pub benchmark: Benchmark,
    /// VM placement used.
    pub placement: Placement,
    /// Tiles on the chip (energy-model geometry).
    pub tiles: u64,
    /// Consolidation areas on the chip (energy-model geometry).
    pub areas: u64,
    /// Measured cycles (post-warm-up until the last core finished).
    pub cycles: Cycle,
    /// References completed in the measured window.
    pub measured_refs: u64,
    /// Mean per-core completion time (post-warm-up), cycles.
    pub avg_finish: f64,
    /// Mean completion time per VM (paper Table IV: "average execution
    /// time of all the VMs"), cycles, indexed by VM id.
    pub vm_finish: Vec<f64>,
    /// Raw protocol event counts.
    pub proto_stats: ProtoStats,
    /// Raw network counts.
    pub noc_stats: NocStats,
    /// Cache dynamic energy (nJ), Figure 8a categories.
    pub cache_energy: CacheEnergy,
    /// Network dynamic energy (nJ), Figure 8b categories.
    pub net_energy: NetworkEnergy,
    /// Memory saved by deduplication (Table IV metric).
    pub dedup_savings: f64,
    /// Interval time-series, when sampling was enabled.
    pub timeseries: Option<TimeSeries>,
    /// Coherence-transaction trace, when tracing was enabled.
    pub trace: Option<TraceLog>,
    /// Per-transaction latency/energy attribution, when enabled.
    pub breakdown: Option<BreakdownLog>,
    /// Per-tile / per-link counters of the measured window (set by the
    /// simulator after a completed run; `None` only for hand-assembled
    /// results).
    pub spatial: Option<SpatialLog>,
    /// Architectural end state (set by the simulator after a completed
    /// run; `None` only for hand-assembled results).
    pub arch: Option<ArchState>,
    /// Fault plan and fired-fault counters, when the run executed under
    /// fault injection.
    pub faults: Option<FaultContext>,
    /// Cycles of the fault-free golden twin, set by the differential
    /// harness when this run executed under fault injection and its end
    /// state was verified against the twin. `cycles - effective_cycles`
    /// is the timing overhead the injected faults caused.
    pub effective_cycles: Option<Cycle>,
    /// Host-side self-profile (wall-clock; nondeterministic — kept out
    /// of every deterministic artifact, printed to stderr only).
    pub host: HostProfile,
    /// Provenance manifest of the run (set by the simulator; `None`
    /// only for hand-assembled results). Stamped into every JSON
    /// artifact derived from this result.
    pub manifest: Option<crate::manifest::RunManifest>,
}

impl RunResult {
    /// Assembles a result, computing the energy breakdowns.
    #[allow(clippy::too_many_arguments)]
    pub fn collect(
        protocol: ProtocolKind,
        benchmark: Benchmark,
        placement: Placement,
        tiles: u64,
        areas: u64,
        cycles: Cycle,
        measured_refs: u64,
        avg_finish: f64,
        vm_finish: Vec<f64>,
        proto_stats: &ProtoStats,
        noc_stats: &NocStats,
        dedup_savings: f64,
    ) -> Self {
        let model = EnergyModel::new(protocol, tiles, areas);
        Self {
            protocol,
            benchmark,
            placement,
            tiles,
            areas,
            cycles,
            measured_refs,
            avg_finish,
            vm_finish,
            cache_energy: model.cache_energy(proto_stats),
            net_energy: model.network_energy(noc_stats),
            proto_stats: proto_stats.clone(),
            noc_stats: noc_stats.clone(),
            dedup_savings,
            timeseries: None,
            trace: None,
            breakdown: None,
            spatial: None,
            arch: None,
            faults: None,
            effective_cycles: None,
            host: HostProfile::default(),
            manifest: None,
        }
    }

    /// Publishes every measured quantity into one hierarchically named
    /// [`MetricsRegistry`] — the unified export surface behind
    /// `cmpsim-cli stats` and `--metrics-out`.
    pub fn metrics(&self) -> MetricsRegistry {
        let mut reg = MetricsRegistry::new();
        reg.set_counter("sim.cycles", self.cycles);
        reg.set_counter("sim.measured_refs", self.measured_refs);
        reg.set_gauge("sim.throughput", self.throughput());
        reg.set_gauge("sim.avg_finish", self.avg_finish);
        reg.set_gauge("sim.dedup_savings", self.dedup_savings);
        for (i, v) in self.vm_finish.iter().enumerate() {
            reg.set_gauge(&format!("sim.vm_finish.{i}"), *v);
            // Tenant-facing alias: the per-VM namespace groups every
            // per-tenant series under one prefix.
            reg.set_gauge(&format!("vm.{i}.finish_cycles"), *v);
        }
        self.proto_stats.publish("proto", &mut reg);
        self.noc_stats.publish("noc", &mut reg);
        self.cache_energy.publish("energy.cache", &mut reg);
        self.net_energy.publish("energy.net", &mut reg);
        reg.set_gauge("energy.dynamic_total_nj", self.total_dynamic_nj());
        if let Some(t) = &self.trace {
            reg.set_counter("trace.completed_txs", t.completed_txs);
            reg.set_counter("trace.tx_hops", t.tx_hops);
            reg.set_counter("trace.untracked_hops", t.untracked_hops);
            reg.set_counter("trace.buffered_events", t.ring.len() as u64);
            reg.set_counter("trace.dropped_events", t.ring.dropped());
        }
        if let Some(fc) = &self.faults {
            reg.set_counter("noc.faults_injected.total", fc.fired.total());
            for kind in FaultKind::all() {
                reg.set_counter(
                    &format!("noc.faults_injected.{}", kind.label()),
                    fc.fired.count(kind),
                );
            }
        }
        if let Some(ec) = self.effective_cycles {
            reg.set_counter("sim.effective_cycles", ec);
            reg.set_counter("sim.fault_overhead_cycles", self.cycles.saturating_sub(ec));
        }
        if let Some(b) = &self.breakdown {
            b.publish("attr", &mut reg);
            let model = self.energy_model();
            reg.set_gauge("attr.energy.tx_nj", self.counts_nj(&model, &b.tx_counts));
            reg.set_gauge(
                "attr.energy.untracked_nj",
                self.counts_nj(&model, &b.untracked_counts),
            );
        }
        reg
    }

    /// The energy table this result was collected with.
    pub fn energy_model(&self) -> EnergyModel {
        EnergyModel::new(self.protocol, self.tiles, self.areas)
    }

    /// Total dynamic energy (nJ) of one attributed event-count bucket.
    pub fn counts_nj(&self, model: &EnergyModel, c: &cmpsim_engine::EventCounts) -> f64 {
        model.counts_cache_energy(c).total() + model.counts_network_energy(c).total()
    }

    /// The registry rendered as deterministic JSON, with the run's
    /// provenance manifest stamped in as the leading `"manifest"` field
    /// when the result carries one.
    pub fn metrics_json(&self) -> String {
        let body = self.metrics().to_json();
        match &self.manifest {
            Some(m) => m.stamp(&body).unwrap_or(body),
            None => body,
        }
    }

    /// Stamps the run's manifest into any JSON artifact derived from
    /// this result (trace, time-series, ...). Pass-through when the
    /// result has no manifest.
    pub fn stamp_artifact(&self, body: String) -> String {
        match &self.manifest {
            Some(m) => m.stamp(&body).unwrap_or(body),
            None => body,
        }
    }

    /// References per cycle across the whole chip (the throughput
    /// metric: transactions in a fixed cycle budget).
    pub fn throughput(&self) -> f64 {
        self.measured_refs as f64 / self.cycles as f64
    }

    /// The paper's per-benchmark performance score, normalized so that
    /// **bigger is better** for both metric classes.
    pub fn performance(&self) -> f64 {
        match self.benchmark.metric() {
            Metric::Throughput => self.throughput(),
            // Average execution time: invert so bigger is better.
            Metric::ExecTime => 1.0 / self.avg_finish.max(1.0),
        }
    }

    /// Total dynamic energy, nanojoules (caches + network).
    pub fn total_dynamic_nj(&self) -> f64 {
        self.cache_energy.total() + self.net_energy.total()
    }

    /// Total dynamic energy, microjoules.
    pub fn total_dynamic_uj(&self) -> f64 {
        self.total_dynamic_nj() / 1000.0
    }

    /// L1 miss rate over the measured window.
    pub fn l1_miss_rate(&self) -> f64 {
        let s = &self.proto_stats;
        s.l1_misses.get() as f64 / s.accesses.get().max(1) as f64
    }

    /// Off-chip accesses per L2-reaching request — a proxy for the L2
    /// miss rate the paper quotes (>40% for JBB).
    pub fn l2_miss_rate(&self) -> f64 {
        let s = &self.proto_stats;
        s.mem_reads.get() as f64 / s.l1_misses.get().max(1) as f64
    }

    /// Figure 9b: fraction of completed misses in `class`.
    pub fn miss_class_frac(&self, class: MissClass) -> f64 {
        let total: u64 = MissClass::all()
            .iter()
            .map(|c| self.proto_stats.class_count(*c))
            .sum();
        self.proto_stats.class_count(class) as f64 / total.max(1) as f64
    }

    /// Average links traversed per network message (paper §V-D).
    pub fn avg_links_per_message(&self) -> f64 {
        self.noc_stats.links_per_message.mean()
    }

    /// Average L1-miss resolution latency in cycles (paper §V-D:
    /// shortened misses "cause a noticeable reduction in the average
    /// miss latency").
    pub fn avg_miss_latency(&self) -> f64 {
        self.proto_stats.miss_latency.mean()
    }

    /// Approximate p-th percentile of the miss latency (from the log2
    /// histogram; tail behaviour under contention).
    pub fn miss_latency_percentile(&self, p: f64) -> u64 {
        self.proto_stats.miss_latency_hist.percentile(p)
    }

    /// Spread between the slowest and fastest VM (fairness indicator;
    /// ~1.0 means the areas progressed evenly).
    pub fn vm_imbalance(&self) -> f64 {
        let max = self.vm_finish.iter().cloned().fold(f64::MIN, f64::max);
        let min = self.vm_finish.iter().cloned().fold(f64::MAX, f64::min);
        if min > 0.0 {
            max / min
        } else {
            1.0
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dummy() -> RunResult {
        let mut stats = ProtoStats::default();
        stats.accesses.add(100);
        stats.l1_misses.add(20);
        stats.l1_hits.add(80);
        stats.mem_reads.add(5);
        stats.record_miss(MissClass::Memory, 100);
        stats.record_miss(MissClass::UnpredictedHome, 50);
        RunResult::collect(
            ProtocolKind::DiCo,
            Benchmark::Apache,
            Placement::Matched,
            64,
            4,
            1000,
            100,
            900.0,
            vec![900.0; 4],
            &stats,
            &NocStats::default(),
            0.2,
        )
    }

    #[test]
    fn throughput_is_refs_per_cycle() {
        let r = dummy();
        assert!((r.throughput() - 0.1).abs() < 1e-12);
    }

    #[test]
    fn miss_rates() {
        let r = dummy();
        assert!((r.l1_miss_rate() - 0.2).abs() < 1e-12);
        assert!((r.l2_miss_rate() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn miss_class_fractions_sum_to_one() {
        let r = dummy();
        let total: f64 =
            MissClass::all().iter().map(|c| r.miss_class_frac(*c)).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }

    #[test]
    fn metrics_publish_vm_finish_namespace() {
        let reg = dummy().metrics();
        let vm: Vec<(&str, f64)> = reg
            .gauges()
            .filter(|(n, _)| n.starts_with("vm.") && n.ends_with(".finish_cycles"))
            .collect();
        assert_eq!(vm.len(), 4);
        assert!(vm.iter().all(|(_, v)| (*v - 900.0).abs() < 1e-9));
        // The legacy sim.vm_finish.* series stays published alongside.
        assert!(reg.gauges().any(|(n, _)| n == "sim.vm_finish.0"));
    }

    #[test]
    fn vm_imbalance_of_even_vms_is_one() {
        let r = dummy();
        assert!((r.vm_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn exec_time_metric_inverts() {
        let mut r = dummy();
        r.benchmark = Benchmark::Radix;
        assert!((r.performance() - 1.0 / 900.0).abs() < 1e-12);
    }
}
