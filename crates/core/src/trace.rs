//! Coherence-transaction tracing.
//!
//! When [`SystemConfig::tracing`](crate::SystemConfig) is on, the
//! simulator tags every L1 miss with a transaction id and records its
//! lifecycle — issue, the request reaching the ordering point
//! (directory or owner lookup), forwards, data/ack responses, and
//! completion — into a bounded [`TraceRing`]. Every network message is
//! recorded as a span whose duration is its NoC delivery latency and
//! whose `links` argument is the hop count the mesh charged for it, so
//! the per-transaction hop totals reconcile exactly with the NoC's
//! `routing_events` counter (a property the integration tests assert).
//!
//! Tracing is observation-only: it allocates no events in the
//! simulation queue, never touches the RNG, and the simulated timing is
//! bit-identical with it on or off.

use cmpsim_engine::{trace::format_event, Cycle, TraceEvent, TraceRing};
use cmpsim_protocols::common::{Block, Tile};
use std::collections::BTreeMap;

/// One open (issued, not yet completed) transaction.
#[derive(Debug, Clone)]
struct OpenTx {
    id: u64,
    block: Block,
    write: bool,
    issued: Cycle,
    hops: u64,
    msgs: u64,
}

/// Assigns transaction ids to misses and records message spans into a
/// bounded ring. Owned by the simulator; only present when tracing is
/// enabled, so the disabled hot path is a single `Option` test.
#[derive(Debug, Clone)]
pub struct TxTracer {
    ring: TraceRing,
    /// Next transaction id (0 is reserved for untracked traffic).
    next_id: u64,
    /// The open transaction of each tile (a core has at most one
    /// outstanding miss, so tile indexes the open set exactly).
    open: Vec<Option<OpenTx>>,
    /// Tiles with an open transaction on a block, oldest first — the
    /// attribution order for messages on that block.
    by_block: BTreeMap<Block, Vec<Tile>>,
    /// Link traversals attributed to an open transaction.
    tx_hops: u64,
    /// Link traversals with no open transaction on their block
    /// (writebacks, hints, evictions and other background traffic).
    untracked_hops: u64,
    /// Transactions completed since the last reset.
    completed: u64,
}

impl TxTracer {
    /// Creates a tracer for a `tiles`-tile chip with a ring of
    /// `capacity` events.
    pub fn new(tiles: usize, capacity: usize) -> Self {
        Self {
            ring: TraceRing::new(capacity),
            next_id: 1,
            open: vec![None; tiles],
            by_block: BTreeMap::new(),
            tx_hops: 0,
            untracked_hops: 0,
            completed: 0,
        }
    }

    /// The transaction a message on `block` belongs to (0 when none is
    /// open — background traffic).
    fn tid_of(&self, block: Block) -> u64 {
        self.by_block
            .get(&block)
            .and_then(|tiles| tiles.first())
            .and_then(|&t| self.open[t].as_ref())
            .map_or(0, |tx| tx.id)
    }

    /// Records an L1 miss issuing at `now` on `tile`: opens a new
    /// transaction and returns its id.
    pub fn on_issue(&mut self, now: Cycle, tile: Tile, block: Block, write: bool) -> u64 {
        let id = self.next_id;
        self.next_id += 1;
        // A core has one outstanding miss at a time; a leftover entry
        // would mean a completion was lost, which the simulator's own
        // debug assertions catch. Drop it defensively here.
        if let Some(stale) = self.open[tile].take() {
            self.unlink(stale.block, tile);
        }
        self.open[tile] = Some(OpenTx { id, block, write, issued: now, hops: 0, msgs: 0 });
        self.by_block.entry(block).or_default().push(tile);
        id
    }

    /// Records one network message: a span `[depart, arrival)` on the
    /// track of the transaction currently open on `block`, charging its
    /// `links` hop count to that transaction (or the untracked bucket).
    #[allow(clippy::too_many_arguments)]
    pub fn on_message(
        &mut self,
        depart: Cycle,
        arrival: Cycle,
        name: &'static str,
        cat: &'static str,
        block: Block,
        src: Tile,
        dst: Tile,
        links: u64,
    ) {
        let tid = self.tid_of(block);
        if tid != 0 {
            let tiles = &self.by_block[&block];
            let owner = tiles[0];
            if let Some(tx) = self.open[owner].as_mut() {
                tx.hops += links;
                tx.msgs += 1;
            }
            self.tx_hops += links;
        } else {
            self.untracked_hops += links;
        }
        self.ring.push(TraceEvent {
            ts: depart,
            dur: arrival.saturating_sub(depart),
            name: name.to_string(),
            cat,
            tid,
            args: vec![
                ("block", block),
                ("src", src as u64),
                ("dst", dst as u64),
                ("links", links),
            ],
        });
    }

    /// Records the completion at `now` of the transaction open on
    /// `tile`, emitting its whole-lifecycle span.
    pub fn on_completion(&mut self, now: Cycle, tile: Tile) {
        let Some(tx) = self.open[tile].take() else {
            return;
        };
        self.unlink(tx.block, tile);
        self.completed += 1;
        self.ring.push(TraceEvent {
            ts: tx.issued,
            dur: now.saturating_sub(tx.issued),
            name: if tx.write { "store-miss".to_string() } else { "load-miss".to_string() },
            cat: "tx",
            tid: tx.id,
            args: vec![
                ("block", tx.block),
                ("tile", tile as u64),
                ("hops", tx.hops),
                ("msgs", tx.msgs),
            ],
        });
    }

    fn unlink(&mut self, block: Block, tile: Tile) {
        if let Some(tiles) = self.by_block.get_mut(&block) {
            if let Some(i) = tiles.iter().position(|&t| t == tile) {
                tiles.remove(i);
            }
            if tiles.is_empty() {
                self.by_block.remove(&block);
            }
        }
    }

    /// Warm-up reset: discards buffered events and zeroes the hop
    /// accounting (mirroring the NoC stats reset), but keeps open
    /// transactions so misses straddling the boundary still complete.
    /// Their per-transaction accumulators restart too, so completed
    /// spans only ever report post-warm-up hops and the span sum stays
    /// reconcilable with `tx_hops`.
    pub fn reset(&mut self) {
        self.ring.clear();
        self.tx_hops = 0;
        self.untracked_hops = 0;
        self.completed = 0;
        for tx in self.open.iter_mut().flatten() {
            tx.hops = 0;
            tx.msgs = 0;
        }
    }

    /// The last `n` events rendered as text lines (for stall dumps).
    pub fn tail_lines(&self, n: usize) -> Vec<String> {
        self.ring.tail(n).map(format_event).collect()
    }

    /// Finalizes the tracer into the exportable log.
    pub fn finish(self) -> TraceLog {
        let open = self.open.iter().filter(|o| o.is_some()).count() as u64;
        TraceLog {
            ring: self.ring,
            tx_hops: self.tx_hops,
            untracked_hops: self.untracked_hops,
            completed_txs: self.completed,
            open_txs: open,
        }
    }
}

/// The trace of one finished run.
#[derive(Debug, Clone)]
pub struct TraceLog {
    /// The buffered events (tail of the run when the ring overflowed).
    pub ring: TraceRing,
    /// Post-warm-up link traversals attributed to a transaction.
    pub tx_hops: u64,
    /// Post-warm-up link traversals of background traffic.
    pub untracked_hops: u64,
    /// Transactions completed in the measured window.
    pub completed_txs: u64,
    /// Transactions still open at the end (0 on a clean drain).
    pub open_txs: u64,
}

impl TraceLog {
    /// All post-warm-up link traversals seen by the tracer; equals the
    /// NoC's `routing_events` counter.
    pub fn total_hops(&self) -> u64 {
        self.tx_hops + self.untracked_hops
    }

    /// Renders the trace as Chrome trace-event JSON (Perfetto /
    /// `chrome://tracing` loadable).
    pub fn to_chrome_json(&self, process_name: &str) -> String {
        self.ring.to_chrome_json(process_name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn issue_message_complete_lifecycle() {
        let mut t = TxTracer::new(4, 64);
        let id = t.on_issue(10, 2, 0x40, false);
        assert_eq!(id, 1);
        t.on_message(10, 15, "GetS", "msg", 0x40, 2, 0, 3);
        t.on_message(15, 22, "Data", "msg", 0x40, 0, 2, 3);
        t.on_completion(22, 2);
        let log = t.finish();
        assert_eq!(log.completed_txs, 1);
        assert_eq!(log.open_txs, 0);
        assert_eq!(log.tx_hops, 6);
        assert_eq!(log.untracked_hops, 0);
        assert_eq!(log.ring.len(), 3);
        let tx = log.ring.iter().last().unwrap();
        assert_eq!(tx.cat, "tx");
        assert_eq!(tx.ts, 10);
        assert_eq!(tx.dur, 12);
        assert!(tx.args.contains(&("hops", 6)));
        assert!(tx.args.contains(&("msgs", 2)));
    }

    #[test]
    fn background_traffic_lands_on_track_zero() {
        let mut t = TxTracer::new(2, 16);
        t.on_message(5, 9, "WbData", "msg", 0x80, 1, 0, 2);
        let log = t.finish();
        assert_eq!(log.untracked_hops, 2);
        assert_eq!(log.tx_hops, 0);
        assert_eq!(log.ring.iter().next().unwrap().tid, 0);
    }

    #[test]
    fn attribution_follows_oldest_open_tx() {
        let mut t = TxTracer::new(4, 16);
        let a = t.on_issue(1, 0, 0x40, false);
        let b = t.on_issue(2, 1, 0x40, true);
        t.on_message(3, 5, "Fwd", "msg", 0x40, 0, 1, 1);
        t.on_completion(6, 0);
        // With tile 0's transaction closed, the same block now maps to
        // tile 1's.
        t.on_message(7, 9, "Data", "msg", 0x40, 1, 0, 1);
        let tids: Vec<u64> =
            t.ring.iter().filter(|e| e.cat == "msg").map(|e| e.tid).collect();
        assert_eq!(tids, vec![a, b]);
    }

    #[test]
    fn reset_keeps_open_transactions() {
        let mut t = TxTracer::new(2, 16);
        t.on_issue(1, 0, 0x40, false);
        t.on_message(1, 4, "GetS", "msg", 0x40, 0, 1, 2);
        t.reset();
        assert_eq!(t.tail_lines(8).len(), 0);
        t.on_message(5, 8, "Data", "msg", 0x40, 1, 0, 2);
        t.on_completion(8, 0);
        let log = t.finish();
        // Only the post-reset hops are counted...
        assert_eq!(log.tx_hops, 2);
        // ...but the straddling transaction still completes.
        assert_eq!(log.completed_txs, 1);
        assert_eq!(log.open_txs, 0);
    }

    #[test]
    fn tail_lines_render() {
        let mut t = TxTracer::new(2, 16);
        t.on_issue(1, 0, 0x40, true);
        t.on_message(1, 4, "GetX", "msg", 0x40, 0, 1, 2);
        let lines = t.tail_lines(4);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("GetX"), "{}", lines[0]);
        assert!(lines[0].contains("links=2"), "{}", lines[0]);
    }
}
