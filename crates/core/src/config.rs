//! Whole-system configuration (paper Table III defaults).

use cmpsim_engine::FaultPlan;
use cmpsim_noc::NocConfig;
use cmpsim_protocols::common::ChipSpec;
use cmpsim_virt::Placement;

/// Everything a simulation run needs besides the protocol and workload.
#[derive(Debug, Clone)]
pub struct SystemConfig {
    /// Chip description (tiles, areas, cache geometries, latencies).
    pub chip: ChipSpec,
    /// Mesh parameters.
    pub noc: NocConfig,
    /// Virtual machines (one per area in the paper).
    pub num_vms: usize,
    /// VM-to-tile placement.
    pub placement: Placement,
    /// Memory controllers along the chip borders.
    pub mem_controllers: usize,
    /// DRAM latency in cycles (Table III: 300 + on-chip delay).
    pub mem_latency: u64,
    /// Bound of the small random extra DRAM delay.
    pub mem_jitter: u64,
    /// Controller service (occupancy) time per request, cycles.
    pub mem_service: u64,
    /// References each core executes.
    pub refs_per_core: u64,
    /// Fraction of references treated as warm-up (stats reset after).
    pub warmup_frac: f64,
    /// RNG seed (workloads + jitter).
    pub seed: u64,
    /// Watchdog: hard cap on processed events before the run aborts with
    /// `SimError::Stalled`. `None` derives a generous bound from the
    /// reference budget (`refs_per_core * tiles * 600 + 5_000_000`).
    pub max_events: Option<u64>,
    /// Watchdog: abort with `SimError::Stalled` when no core retires a
    /// reference for this many consecutive cycles. Must exceed the worst
    /// legitimate gap (contended misses queue behind 300-cycle DRAM
    /// accesses); the default of one million cycles is far above it.
    pub stall_window: u64,
    /// Run the per-message coherence invariant checker (SWMR, forwarding
    /// bound, owner-pointer consistency at quiescence). Roughly an order
    /// of magnitude slower — a debugging tool, not a default.
    pub check_invariants: bool,
    /// Record the coherence-transaction trace (issue → lookup → forward
    /// → data → completion, with per-hop NoC latency) into a bounded
    /// ring buffer, exportable as Chrome trace-event JSON. Observability
    /// only: the simulated timing is identical with or without it.
    pub tracing: bool,
    /// Capacity of the trace ring buffer (events). When full, the
    /// oldest events are dropped (and counted), keeping memory bounded
    /// on long runs while preserving the tail.
    pub trace_capacity: usize,
    /// Interval time-series sampling: every `N` cycles of the measured
    /// (post-warm-up) window, snapshot link utilization, cache
    /// occupancy, directory/owner-cache hit rates and dynamic+static
    /// energy. `None` disables sampling.
    pub sample_interval: Option<u64>,
    /// Per-transaction critical-path and energy attribution: decompose
    /// every miss into typed phases (summing exactly to its latency)
    /// and charge every dynamic-energy event to its causing
    /// transaction. Observability only: simulated timing is identical
    /// with or without it.
    pub attribution: bool,
    /// Deterministic fault-injection plan. `None` (the default) means
    /// the fault machinery is entirely inert: no RNG stream is created,
    /// no timeouts are armed, and the run is bit-identical to builds
    /// that predate fault injection. The plan is part of the replay
    /// artifact so faulty runs reproduce exactly.
    pub fault_plan: Option<FaultPlan>,
    /// Host wall-clock budget for one run, in milliseconds. When the
    /// budget is exceeded the event loop aborts with
    /// `SimError::Timeout` instead of holding its worker indefinitely
    /// (the sweep orchestrator's per-cell deadline). A *host*-side
    /// knob like the observability toggles: it is excluded from the
    /// canonical config JSON, the manifest `run_id` and the snapshot
    /// key, because a run that completes under a deadline is
    /// bit-identical to one without it.
    pub wall_deadline_ms: Option<u64>,
}

impl SystemConfig {
    /// The paper's 64-tile, 4-VM configuration with a reduced reference
    /// budget suitable for report generation on a laptop.
    pub fn paper() -> Self {
        Self {
            chip: ChipSpec::paper(),
            noc: NocConfig::default(),
            num_vms: 4,
            placement: Placement::Matched,
            mem_controllers: 8,
            mem_latency: 300,
            mem_jitter: 20,
            mem_service: 12,
            refs_per_core: 120_000,
            warmup_frac: 0.3,
            seed: 0xC0FFEE,
            max_events: None,
            stall_window: 1_000_000,
            check_invariants: false,
            tracing: false,
            trace_capacity: 65_536,
            sample_interval: None,
            attribution: false,
            fault_plan: None,
            wall_deadline_ms: None,
        }
    }

    /// A scaled-down 4x4-tile configuration for integration tests.
    pub fn small() -> Self {
        Self {
            chip: ChipSpec::small(),
            noc: NocConfig { cols: 4, rows: 4, ..NocConfig::default() },
            num_vms: 4,
            placement: Placement::Matched,
            mem_controllers: 4,
            mem_latency: 100,
            mem_jitter: 8,
            mem_service: 6,
            refs_per_core: 400,
            warmup_frac: 0.2,
            seed: 7,
            max_events: None,
            stall_window: 1_000_000,
            check_invariants: false,
            tracing: false,
            trace_capacity: 65_536,
            sample_interval: None,
            attribution: false,
            fault_plan: None,
            wall_deadline_ms: None,
        }
    }

    /// The smallest sensible run (doc tests / smoke tests).
    pub fn smoke() -> Self {
        Self { refs_per_core: 120, ..Self::small() }
    }

    /// Returns a copy with the alternative placement (paper "-alt").
    pub fn with_placement(mut self, placement: Placement) -> Self {
        self.placement = placement;
        self
    }

    /// Returns a copy with a different reference budget.
    pub fn with_refs(mut self, refs: u64) -> Self {
        self.refs_per_core = refs;
        self
    }

    /// Returns a copy with a different seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Returns a copy with a hard event budget (watchdog knob).
    pub fn with_event_budget(mut self, max_events: u64) -> Self {
        self.max_events = Some(max_events);
        self
    }

    /// Returns a copy with a different no-progress window (watchdog
    /// knob).
    pub fn with_stall_window(mut self, cycles: u64) -> Self {
        self.stall_window = cycles;
        self
    }

    /// Returns a copy with the per-message invariant checker enabled.
    pub fn with_invariant_checks(mut self) -> Self {
        self.check_invariants = true;
        self
    }

    /// Returns a copy with coherence-transaction tracing enabled.
    pub fn with_tracing(mut self) -> Self {
        self.tracing = true;
        self
    }

    /// Returns a copy with a different trace ring-buffer capacity
    /// (implies tracing).
    pub fn with_trace_capacity(mut self, events: usize) -> Self {
        self.tracing = true;
        self.trace_capacity = events.max(1);
        self
    }

    /// Returns a copy with interval time-series sampling every `cycles`
    /// cycles of the measured window.
    pub fn with_interval(mut self, cycles: u64) -> Self {
        self.sample_interval = Some(cycles.max(1));
        self
    }

    /// Returns a copy with per-transaction critical-path and energy
    /// attribution enabled.
    pub fn with_attribution(mut self) -> Self {
        self.attribution = true;
        self
    }

    /// Returns a copy running under the given deterministic
    /// fault-injection plan (`None` disables injection).
    pub fn with_fault_plan(mut self, plan: Option<FaultPlan>) -> Self {
        self.fault_plan = plan;
        self
    }

    /// Returns a copy with a host wall-clock deadline, in milliseconds
    /// (`None` removes it). See [`SystemConfig::wall_deadline_ms`].
    pub fn with_wall_deadline_ms(mut self, ms: Option<u64>) -> Self {
        self.wall_deadline_ms = ms;
        self
    }

    /// The effective event budget (explicit, or derived from the
    /// reference budget).
    pub fn event_budget(&self) -> u64 {
        self.max_events
            .unwrap_or(self.refs_per_core * self.tiles() as u64 * 600 + 5_000_000)
    }

    /// Tiles in the configuration.
    pub fn tiles(&self) -> usize {
        self.chip.tiles()
    }

    /// Mesh tile hosting memory controller `i`: controllers sit along
    /// the top and bottom borders, evenly spaced (Table III).
    pub fn mem_ctrl_tile(&self, i: usize) -> usize {
        let cols = self.noc.cols;
        let rows = self.noc.rows;
        let per_row = self.mem_controllers.div_ceil(2);
        let spread = |j: usize| j * cols / per_row + cols / (2 * per_row).max(1);
        if i < per_row {
            spread(i).min(cols - 1)
        } else {
            (rows - 1) * cols + spread(i - per_row).min(cols - 1)
        }
    }

    /// Controller that owns `block`.
    pub fn mem_ctrl_of(&self, block: u64) -> usize {
        (block % self.mem_controllers as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_config_shape() {
        let c = SystemConfig::paper();
        assert_eq!(c.tiles(), 64);
        assert_eq!(c.num_vms, 4);
        assert_eq!(c.mem_controllers, 8);
        assert_eq!(c.mem_latency, 300);
    }

    #[test]
    fn mem_ctrls_on_borders() {
        let c = SystemConfig::paper();
        for i in 0..8 {
            let t = c.mem_ctrl_tile(i);
            let row = t / 8;
            assert!(row == 0 || row == 7, "ctrl {i} tile {t} not on a border row");
        }
        // Top and bottom are both used.
        assert!((0..8).any(|i| c.mem_ctrl_tile(i) < 8));
        assert!((0..8).any(|i| c.mem_ctrl_tile(i) >= 56));
    }

    #[test]
    fn ctrl_mapping_covers_all() {
        let c = SystemConfig::paper();
        let mut seen = [false; 8];
        for b in 0..64u64 {
            seen[c.mem_ctrl_of(b)] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn small_config_consistent() {
        let c = SystemConfig::small();
        assert_eq!(c.tiles(), 16);
        assert_eq!(c.noc.cols * c.noc.rows, 16);
        for i in 0..c.mem_controllers {
            assert!(c.mem_ctrl_tile(i) < 16);
        }
    }
}
