//! Resilient sweep orchestrator: isolated, retrying, crash-resumable
//! matrix runs (ROADMAP item 5, robustness half).
//!
//! [`run_matrix`](crate::run_matrix) is an all-or-nothing in-process
//! loop: one panicking, hanging or faulted cell loses the whole sweep.
//! This module promotes it into a job-queue engine with blast-radius
//! containment per cell:
//!
//! * a [`SweepSpec`] expands into `(config, protocol, benchmark, seed,
//!   fault_plan)` cells, each identified by its content-hash manifest
//!   `run_id` (duplicate cells collapse through the run-id ledger and
//!   pre-existing artifacts are reused, never recomputed);
//! * cells execute on a bounded worker pool; every cell runs under
//!   `catch_unwind`, so a panic is a typed [`CellError`] (`E-PANIC`)
//!   for that cell, not a dead sweep;
//! * a per-cell wall-clock deadline ([`SweepOptions::deadline_ms`]) is
//!   layered on the simulated-time watchdog via
//!   [`SystemConfig::wall_deadline_ms`]; an overrunning cell aborts
//!   with `E-TIMEOUT`;
//! * *transient* failures ([`SimError::is_transient`]: `E-FAULT`,
//!   `E-TIMEOUT`) are retried with exponential backoff plus
//!   deterministic jitter, up to [`SweepOptions::retries`] times;
//!   *deterministic* failures (stall, invariant violation, protocol
//!   fault, snapshot corruption, panic) are quarantined immediately
//!   with their crash dump attached;
//! * every state transition appends one line to an NDJSON **sweep
//!   journal** (`schemas/sweep.schema.json`). The journal's `start`
//!   line embeds the full spec (canonical config JSON included), so
//!   [`resume_sweep`] after a `kill -9` needs nothing but the journal:
//!   completed cells are skipped, in-flight ones re-dispatched, and —
//!   because every cell is a pure function of its manifest inputs —
//!   the replayed remainder produces byte-identical artifacts;
//! * a sweep that loses cells degrades gracefully: the outcome still
//!   carries the partial matrix with a "Failed cells" section naming
//!   each quarantined cell and its E-code, and the CLI exits nonzero
//!   without aborting the batch.

use std::collections::HashMap;
use std::io::Write;
use std::panic::{self, AssertUnwindSafe};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use cmpsim_engine::par::{num_threads, panic_message, try_par_map_with_threads};
use cmpsim_engine::rng::splitmix64;
use cmpsim_engine::{FaultPlan, WallDeadline};
use cmpsim_protocols::ProtocolKind;
use cmpsim_workloads::Benchmark;

use crate::config::SystemConfig;
use crate::error::SimError;
use crate::manifest::RunManifest;
use crate::replay::{config_from_json, config_to_json, Value};
use crate::sim::run_benchmark_with_store;
use crate::snapshot::SnapshotStore;

/// Schema tag of every sweep-journal line.
pub const SWEEP_SCHEMA: &str = "cmpsim-sweep-v1";

/// Error code for a cell whose worker panicked (no [`SimError`] variant
/// exists for panics — they are bugs, quarantined immediately).
pub const PANIC_CODE: &str = "E-PANIC";

/// What to sweep: the cross product of protocols, benchmarks, seeds and
/// fault plans over one base configuration.
#[derive(Debug, Clone)]
pub struct SweepSpec {
    /// Protocols to run.
    pub protocols: Vec<ProtocolKind>,
    /// Benchmarks to run.
    pub benchmarks: Vec<Benchmark>,
    /// Seeds to run (empty means "the base config's seed").
    pub seeds: Vec<u64>,
    /// Fault plans to run (`None` = fault-free; empty means
    /// "fault-free only").
    pub plans: Vec<Option<FaultPlan>>,
    /// Everything else (chip, refs, watchdog knobs, ...).
    pub base: SystemConfig,
}

impl SweepSpec {
    /// Expands the spec into cells in deterministic (plan, seed,
    /// benchmark, protocol) row-major order, computing each cell's
    /// manifest and marking duplicates (same `run_id`) as dedups of
    /// their first occurrence.
    pub fn expand(&self) -> Vec<SweepCell> {
        let seeds: &[u64] =
            if self.seeds.is_empty() { &[self.base.seed] } else { &self.seeds };
        let plans: &[Option<FaultPlan>] =
            if self.plans.is_empty() { &[None] } else { &self.plans };
        let mut cells = Vec::new();
        let mut first_by_run_id: HashMap<String, usize> = HashMap::new();
        for plan in plans {
            for &seed in seeds {
                for &benchmark in &self.benchmarks {
                    for &protocol in &self.protocols {
                        let cfg = self
                            .base
                            .clone()
                            .with_seed(seed)
                            .with_fault_plan(plan.clone());
                        let manifest = RunManifest::new(protocol, benchmark, &cfg);
                        let index = cells.len();
                        let dedup_of =
                            first_by_run_id.entry(manifest.run_id.clone()).or_insert(index);
                        let dedup_of = (*dedup_of != index).then_some(*dedup_of);
                        cells.push(SweepCell {
                            index,
                            protocol,
                            benchmark,
                            seed,
                            plan: plan.clone(),
                            cfg,
                            manifest,
                            dedup_of,
                        });
                    }
                }
            }
        }
        cells
    }
}

/// One expanded cell of a sweep.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Position in the expanded cell list (stable across resume: the
    /// expansion order is deterministic).
    pub index: usize,
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// Seed this cell runs under.
    pub seed: u64,
    /// Fault plan this cell runs under, if any.
    pub plan: Option<FaultPlan>,
    /// The cell's full configuration (base + seed + plan).
    pub cfg: SystemConfig,
    /// Provenance manifest; `manifest.run_id` keys the cell's artifact.
    pub manifest: RunManifest,
    /// When another cell with the same `run_id` precedes this one, its
    /// index: this cell never dispatches, it shares that artifact.
    pub dedup_of: Option<usize>,
}

impl SweepCell {
    /// Human-readable cell name for journals and reports.
    pub fn name(&self) -> String {
        let mut s = format!("{}/{}@{}", self.protocol.name(), self.benchmark.name(), self.seed);
        if let Some(p) = &self.plan {
            s.push('+');
            s.push_str(&p.spec());
        }
        s
    }

    /// File name of the cell's metrics artifact (under the sweep's
    /// `out_dir`), keyed by content-hash run id.
    pub fn artifact_name(&self) -> String {
        format!("{}.metrics.json", self.manifest.run_id)
    }
}

/// A deliberately broken cell, for exercising the containment paths in
/// tests and CI without hunting for a real defect.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Injection {
    /// The worker panics inside the cell (→ quarantined, `E-PANIC`).
    Panic {
        /// Target cell index.
        cell: usize,
    },
    /// The cell hangs past the per-cell deadline on every attempt
    /// (→ retried as `E-TIMEOUT`, then quarantined).
    Hang {
        /// Target cell index.
        cell: usize,
    },
    /// The cell fails with a synthetic transient `E-FAULT` on its first
    /// `failures` attempts, then runs normally (→ retried to success).
    Flaky {
        /// Target cell index.
        cell: usize,
        /// Attempts that fail before the cell runs clean.
        failures: u32,
    },
}

impl Injection {
    /// Parses `panic@IDX`, `hang@IDX` or `flaky@IDX[:N]` (N defaults
    /// to 1).
    pub fn parse(spec: &str) -> Result<Self, String> {
        let (kind, rest) = spec
            .split_once('@')
            .ok_or_else(|| format!("bad injection {spec:?} (want kind@cell)"))?;
        let bad = |what: &str| format!("bad injection {spec:?} ({what})");
        match kind {
            "panic" => Ok(Injection::Panic {
                cell: rest.parse().map_err(|_| bad("cell index"))?,
            }),
            "hang" => Ok(Injection::Hang {
                cell: rest.parse().map_err(|_| bad("cell index"))?,
            }),
            "flaky" => {
                let (cell, failures) = match rest.split_once(':') {
                    Some((c, n)) => (
                        c.parse().map_err(|_| bad("cell index"))?,
                        n.parse().map_err(|_| bad("failure count"))?,
                    ),
                    None => (rest.parse().map_err(|_| bad("cell index"))?, 1),
                };
                Ok(Injection::Flaky { cell, failures })
            }
            other => Err(format!("unknown injection kind {other:?} (panic|hang|flaky)")),
        }
    }

    /// Spec string that round-trips through [`Injection::parse`].
    pub fn spec(&self) -> String {
        match self {
            Injection::Panic { cell } => format!("panic@{cell}"),
            Injection::Hang { cell } => format!("hang@{cell}"),
            Injection::Flaky { cell, failures } => format!("flaky@{cell}:{failures}"),
        }
    }

    fn cell(&self) -> usize {
        match self {
            Injection::Panic { cell } | Injection::Hang { cell } => *cell,
            Injection::Flaky { cell, .. } => *cell,
        }
    }
}

/// Execution knobs of one sweep.
#[derive(Debug, Clone)]
pub struct SweepOptions {
    /// Worker-pool size (`None` = one per host core).
    pub threads: Option<usize>,
    /// Directory cell artifacts are written into (created if missing).
    pub out_dir: PathBuf,
    /// Path of the NDJSON sweep journal.
    pub journal: PathBuf,
    /// Per-cell wall-clock deadline in milliseconds (`None` = no
    /// deadline; only the simulated-time watchdog applies).
    pub deadline_ms: Option<u64>,
    /// Retry budget for transient failures (0 = quarantine on first
    /// failure, like deterministic ones).
    pub retries: u32,
    /// Exponential-backoff base in milliseconds: attempt `k` sleeps
    /// `backoff_ms * 2^(k-1)` plus deterministic jitter in
    /// `[0, backoff_ms)`, capped at 5 s.
    pub backoff_ms: u64,
    /// Disk-backed snapshot store for warm-state forking (`None` = a
    /// process-local in-memory store).
    pub snapshot_dir: Option<PathBuf>,
    /// Deliberately broken cells (tests / CI).
    pub injections: Vec<Injection>,
}

impl Default for SweepOptions {
    fn default() -> Self {
        Self {
            threads: None,
            out_dir: PathBuf::from("sweep-out"),
            journal: PathBuf::from("sweep-out/sweep.ndjson"),
            deadline_ms: None,
            retries: 2,
            backoff_ms: 100,
            snapshot_dir: None,
            injections: Vec::new(),
        }
    }
}

/// Typed failure of one cell (panics included), as recorded in the
/// journal and the report.
#[derive(Debug, Clone)]
pub struct CellError {
    /// Stable machine-readable code: a [`SimError::code`] or
    /// [`PANIC_CODE`].
    pub code: String,
    /// One-line human-readable description.
    pub message: String,
    /// Crash-dump replay artifact, when one was written.
    pub artifact: Option<PathBuf>,
    /// Whether the retry policy applies (see [`SimError::is_transient`];
    /// panics never are).
    pub transient: bool,
}

impl CellError {
    fn from_sim(e: &SimError) -> Self {
        Self {
            code: e.code().to_string(),
            message: e.to_string().lines().next().unwrap_or("simulation failed").to_string(),
            artifact: e.artifact().map(Path::to_path_buf),
            transient: e.is_transient(),
        }
    }
}

/// Terminal state of one cell after the sweep.
#[derive(Debug, Clone)]
pub enum CellState {
    /// Artifact produced (or reused). `attempts` counts executions of
    /// this cell itself (0 when deduped or cached).
    Done {
        /// Attempts this cell consumed.
        attempts: u32,
        /// Path of the metrics artifact.
        artifact: PathBuf,
        /// A pre-existing artifact with this run id was reused.
        cached: bool,
        /// The cell shares the artifact of this earlier identical cell.
        dedup_of: Option<usize>,
    },
    /// Quarantined with a typed error after `attempts` executions.
    Quarantined {
        /// Attempts this cell consumed before quarantine.
        attempts: u32,
        /// The final error.
        error: CellError,
    },
}

impl CellState {
    /// Short status word (`done` / `quarantined`).
    pub fn status(&self) -> &'static str {
        match self {
            CellState::Done { .. } => "done",
            CellState::Quarantined { .. } => "quarantined",
        }
    }
}

/// Result of [`run_sweep`] / [`resume_sweep`].
#[derive(Debug)]
pub struct SweepOutcome {
    /// The expanded cells, in order.
    pub cells: Vec<SweepCell>,
    /// Terminal state of each cell (parallel to `cells`).
    pub states: Vec<CellState>,
    /// Cells this invocation skipped because the journal already showed
    /// them terminal (resume only).
    pub skipped: usize,
}

impl SweepOutcome {
    /// True when every cell produced its artifact.
    pub fn ok(&self) -> bool {
        self.states.iter().all(|s| matches!(s, CellState::Done { .. }))
    }

    /// The quarantined cells, in order.
    pub fn quarantined(&self) -> Vec<(&SweepCell, &CellError)> {
        self.cells
            .iter()
            .zip(&self.states)
            .filter_map(|(c, s)| match s {
                CellState::Quarantined { error, .. } => Some((c, error)),
                CellState::Done { .. } => None,
            })
            .collect()
    }

    /// Canonical `(index, status)` set for replay-equivalence checks:
    /// quarantined cells carry their E-code.
    pub fn state_set(&self) -> Vec<(usize, String)> {
        self.cells
            .iter()
            .zip(&self.states)
            .map(|(c, s)| match s {
                CellState::Done { .. } => (c.index, "done".to_string()),
                CellState::Quarantined { error, .. } => {
                    (c.index, format!("quarantined:{}", error.code))
                }
            })
            .collect()
    }

    /// The partial matrix report: summary, per-cell table, and — when
    /// cells were lost — a "Failed cells" section naming each
    /// quarantined cell and its E-code.
    pub fn report_markdown(&self) -> String {
        let done = self.states.iter().filter(|s| matches!(s, CellState::Done { .. })).count();
        let failed = self.quarantined();
        let mut md = String::from("# Sweep report\n\n");
        md.push_str(&format!(
            "{} cells: {} done, {} quarantined{}\n\n",
            self.cells.len(),
            done,
            failed.len(),
            if failed.is_empty() { " — complete" } else { " — PARTIAL" },
        ));
        md.push_str("| cell | name | run_id | status | attempts | detail |\n");
        md.push_str("|-----:|------|--------|--------|---------:|--------|\n");
        for (c, s) in self.cells.iter().zip(&self.states) {
            let (status, attempts, detail) = match s {
                CellState::Done { attempts, cached, dedup_of, .. } => (
                    "done",
                    *attempts,
                    match (dedup_of, cached) {
                        (Some(i), _) => format!("dedup of cell {i}"),
                        (None, true) => "cached artifact".to_string(),
                        (None, false) => String::new(),
                    },
                ),
                CellState::Quarantined { attempts, error } => {
                    ("quarantined", *attempts, error.code.clone())
                }
            };
            md.push_str(&format!(
                "| {} | {} | `{}` | {} | {} | {} |\n",
                c.index,
                c.name(),
                c.manifest.run_id,
                status,
                attempts,
                detail
            ));
        }
        if !failed.is_empty() {
            md.push_str("\n## Failed cells\n\n");
            for (c, e) in &failed {
                md.push_str(&format!(
                    "- cell {} `{}` (run `{}`): **{}** — {}{}\n",
                    c.index,
                    c.name(),
                    c.manifest.run_id,
                    e.code,
                    e.message,
                    e.artifact
                        .as_ref()
                        .map(|p| format!(" (crash dump: `{}`)", p.display()))
                        .unwrap_or_default(),
                ));
            }
        }
        md
    }
}

/// Append-only NDJSON journal with per-line flush, shared by the worker
/// pool behind a mutex. Lines are self-describing (`schema` + `event`)
/// so a torn trailing line from a `kill -9` is detectable and ignorable
/// on resume.
struct Journal {
    file: Mutex<std::fs::File>,
}

impl Journal {
    fn create(path: &Path) -> Result<Self, String> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)
                    .map_err(|e| format!("cannot create {}: {e}", parent.display()))?;
            }
        }
        let file = std::fs::File::create(path)
            .map_err(|e| format!("cannot create journal {}: {e}", path.display()))?;
        Ok(Self { file: Mutex::new(file) })
    }

    fn append(path: &Path) -> Result<Self, String> {
        // Terminate a torn trailing line (kill -9 mid-write) before
        // appending, so the first new event starts on its own line.
        let torn = std::fs::read(path)
            .map(|b| !b.is_empty() && *b.last().unwrap() != b'\n')
            .unwrap_or(false);
        let mut file = std::fs::OpenOptions::new()
            .append(true)
            .open(path)
            .map_err(|e| format!("cannot append to journal {}: {e}", path.display()))?;
        if torn {
            let _ = file.write_all(b"\n");
        }
        Ok(Self { file: Mutex::new(file) })
    }

    fn emit(&self, v: Value) {
        let mut line = String::new();
        v.render_compact_to(&mut line);
        line.push('\n');
        let mut f = self.file.lock().unwrap();
        // Failure to journal must not kill the sweep; the journal is
        // the recovery aid, not the result.
        let _ = f.write_all(line.as_bytes());
        let _ = f.flush();
    }
}

fn event(kind: &str) -> Value {
    let mut j = Value::object();
    j.set("schema", Value::string(SWEEP_SCHEMA));
    j.set("event", Value::string(kind));
    j
}

fn opt_path(p: &Option<PathBuf>) -> Value {
    match p {
        Some(p) => Value::string(&p.display().to_string()),
        None => Value::Null,
    }
}

fn start_event(spec: &SweepSpec, opts: &SweepOptions, cells: &[SweepCell]) -> Value {
    let mut j = event("start");
    j.set("tool", Value::string("cmpsim"));
    j.set("tool_version", Value::string(env!("CARGO_PKG_VERSION")));
    let mut canon = String::new();
    config_to_json(&spec.base).render_to(&mut canon);
    j.set(
        "config_digest",
        Value::string(&crate::manifest::hex16(crate::manifest::digest(canon.as_bytes()))),
    );
    j.set("config", config_to_json(&spec.base));
    j.set(
        "protocols",
        Value::Arr(spec.protocols.iter().map(|p| Value::string(p.name())).collect()),
    );
    j.set(
        "benchmarks",
        Value::Arr(spec.benchmarks.iter().map(|b| Value::string(b.name())).collect()),
    );
    j.set("seeds", Value::Arr(spec.seeds.iter().map(|&s| Value::uint(s)).collect()));
    j.set(
        "plans",
        Value::Arr(
            spec.plans
                .iter()
                .map(|p| p.as_ref().map_or(Value::Null, |p| Value::string(&p.spec())))
                .collect(),
        ),
    );
    j.set("out_dir", Value::string(&opts.out_dir.display().to_string()));
    j.set(
        "deadline_ms",
        opts.deadline_ms.map_or(Value::Null, Value::uint),
    );
    j.set("retries", Value::uint(opts.retries as u64));
    j.set("backoff_ms", Value::uint(opts.backoff_ms));
    j.set("snapshot_dir", opt_path(&opts.snapshot_dir));
    j.set(
        "injections",
        Value::Arr(opts.injections.iter().map(|i| Value::string(&i.spec())).collect()),
    );
    j.set("cells", Value::uint(cells.len() as u64));
    j
}

/// Runs a fresh sweep: expands the spec, writes the journal `start` and
/// per-cell `queued` lines, executes every unique cell on the worker
/// pool and returns the full outcome (including quarantined cells — the
/// caller decides the exit code from [`SweepOutcome::ok`]).
pub fn run_sweep(spec: &SweepSpec, opts: &SweepOptions) -> Result<SweepOutcome, String> {
    let cells = spec.expand();
    if cells.is_empty() {
        return Err("sweep expands to zero cells".to_string());
    }
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    let journal = Journal::create(&opts.journal)?;
    journal.emit(start_event(spec, opts, &cells));
    for c in &cells {
        let mut j = event("queued");
        j.set("cell", Value::uint(c.index as u64));
        j.set("name", Value::string(&c.name()));
        j.set("run_id", Value::string(&c.manifest.run_id));
        j.set("dedup_of", c.dedup_of.map_or(Value::Null, |i| Value::uint(i as u64)));
        journal.emit(j);
    }
    execute(cells, HashMap::new(), opts, &journal)
}

/// Resumes a sweep from its journal after a crash or kill: cells whose
/// terminal state (with an existing artifact) is already journaled are
/// skipped; queued and in-flight cells are re-dispatched. New events
/// append to the same journal. `threads` overrides the worker-pool
/// size (a host-side knob; everything else comes from the journal).
pub fn resume_sweep(journal_path: &Path, threads: Option<usize>) -> Result<SweepOutcome, String> {
    let text = std::fs::read_to_string(journal_path)
        .map_err(|e| format!("cannot read journal {}: {e}", journal_path.display()))?;
    let parsed = parse_journal(&text)?;
    let mut opts = parsed.options;
    opts.journal = journal_path.to_path_buf();
    if threads.is_some() {
        opts.threads = threads;
    }
    let cells = parsed.spec.expand();
    if cells.len() != parsed.cell_count {
        return Err(format!(
            "journal names {} cells but the spec expands to {} — journal corrupted?",
            parsed.cell_count,
            cells.len()
        ));
    }
    // Trust `done` states only when the artifact is actually present;
    // a missing file (deleted out-of-band) re-dispatches the cell.
    let mut terminal = parsed.terminal;
    terminal.retain(|&i, s| match s {
        CellState::Done { artifact, .. } => artifact.is_file() && i < cells.len(),
        CellState::Quarantined { .. } => i < cells.len(),
    });
    let journal = Journal::append(journal_path)?;
    let mut j = event("resume");
    j.set("skipped", Value::uint(terminal.len() as u64));
    journal.emit(j);
    execute(cells, terminal, &opts, &journal)
}

/// Everything [`resume_sweep`] recovers from a journal.
pub struct JournalState {
    /// The sweep spec, reconstructed from the `start` line.
    pub spec: SweepSpec,
    /// The execution options, reconstructed from the `start` line.
    pub options: SweepOptions,
    /// Cell count recorded at start (consistency check).
    pub cell_count: usize,
    /// Last journaled *terminal* state per cell index.
    pub terminal: HashMap<usize, CellState>,
}

/// Parses a sweep journal. Unparsable lines (torn tail after `kill -9`)
/// are skipped; only the `start` line is mandatory.
pub fn parse_journal(text: &str) -> Result<JournalState, String> {
    let mut lines = text.lines();
    let start = loop {
        let line = lines.next().ok_or("journal has no start event")?;
        if line.trim().is_empty() {
            continue;
        }
        let v = Value::parse(line).map_err(|e| format!("bad journal start line: {e}"))?;
        if v.field("schema")?.as_str()? != SWEEP_SCHEMA {
            return Err(format!(
                "not a {SWEEP_SCHEMA} journal (schema {:?})",
                v.field("schema")?.as_str()?
            ));
        }
        if v.field("event")?.as_str()? != "start" {
            return Err("journal does not begin with a start event".to_string());
        }
        break v;
    };

    let base = config_from_json(start.field("config")?)?;
    let str_list = |field: &str| -> Result<Vec<String>, String> {
        match start.field(field)? {
            Value::Arr(items) => {
                items.iter().map(|v| Ok(v.as_str()?.to_string())).collect()
            }
            _ => Err(format!("journal field {field:?} is not an array")),
        }
    };
    let protocols = str_list("protocols")?
        .iter()
        .map(|n| protocol_from_name(n))
        .collect::<Result<Vec<_>, _>>()?;
    let benchmarks = str_list("benchmarks")?
        .iter()
        .map(|n| benchmark_from_name(n))
        .collect::<Result<Vec<_>, _>>()?;
    let seeds = match start.field("seeds")? {
        Value::Arr(items) => items.iter().map(|v| v.as_u64()).collect::<Result<Vec<_>, _>>()?,
        _ => return Err("journal field \"seeds\" is not an array".to_string()),
    };
    let plans = match start.field("plans")? {
        Value::Arr(items) => items
            .iter()
            .map(|v| match v {
                Value::Null => Ok(None),
                other => FaultPlan::parse(other.as_str()?).map(Some),
            })
            .collect::<Result<Vec<_>, _>>()?,
        _ => return Err("journal field \"plans\" is not an array".to_string()),
    };
    let spec = SweepSpec { protocols, benchmarks, seeds, plans, base };

    let injections = str_list("injections")?
        .iter()
        .map(|s| Injection::parse(s))
        .collect::<Result<Vec<_>, _>>()?;
    let options = SweepOptions {
        threads: None,
        out_dir: PathBuf::from(start.field("out_dir")?.as_str()?),
        journal: PathBuf::new(), // caller fills in
        deadline_ms: match start.field("deadline_ms")? {
            Value::Null => None,
            other => Some(other.as_u64()?),
        },
        retries: start.field("retries")?.as_u64()? as u32,
        backoff_ms: start.field("backoff_ms")?.as_u64()?,
        snapshot_dir: match start.field("snapshot_dir")? {
            Value::Null => None,
            other => Some(PathBuf::from(other.as_str()?)),
        },
        injections,
    };
    let cell_count = start.field("cells")?.as_u64()? as usize;

    let mut terminal: HashMap<usize, CellState> = HashMap::new();
    for line in lines {
        if line.trim().is_empty() {
            continue;
        }
        // A torn or foreign line is skipped, not fatal: the journal is
        // append-only and the writer can die mid-line.
        let Ok(v) = Value::parse(line) else { continue };
        let (Ok(ev), Ok(cell)) = (
            v.field("event").and_then(|e| e.as_str()),
            v.field("cell").and_then(|c| c.as_u64()).map(|c| c as usize),
        ) else {
            continue;
        };
        let attempts =
            v.field("attempt").and_then(|a| a.as_u64()).unwrap_or(0) as u32;
        match ev {
            "done" => {
                let artifact = v
                    .field("artifact")
                    .and_then(|a| a.as_str().map(PathBuf::from))
                    .unwrap_or_default();
                let cached =
                    v.field("cached").and_then(|c| c.as_bool()).unwrap_or(false);
                let dedup_of = v
                    .field("dedup_of")
                    .ok()
                    .and_then(|d| d.as_u64().ok())
                    .map(|d| d as usize);
                terminal.insert(
                    cell,
                    CellState::Done { attempts, artifact, cached, dedup_of },
                );
            }
            "quarantined" => {
                let error = CellError {
                    code: v
                        .field("code")
                        .and_then(|c| c.as_str().map(str::to_string))
                        .unwrap_or_else(|_| "E-UNKNOWN".to_string()),
                    message: v
                        .field("error")
                        .and_then(|m| m.as_str().map(str::to_string))
                        .unwrap_or_default(),
                    artifact: v
                        .field("artifact")
                        .ok()
                        .and_then(|a| a.as_str().ok())
                        .map(PathBuf::from),
                    transient: false,
                };
                terminal.insert(cell, CellState::Quarantined { attempts, error });
            }
            // queued / running / retrying are non-terminal: a crash
            // mid-cell re-dispatches it.
            _ => {}
        }
    }
    Ok(JournalState { spec, options, cell_count, terminal })
}

fn protocol_from_name(name: &str) -> Result<ProtocolKind, String> {
    ProtocolKind::all()
        .into_iter()
        .find(|p| p.name() == name)
        .ok_or_else(|| format!("unknown protocol {name:?} in journal"))
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name() == name)
        .ok_or_else(|| format!("unknown benchmark {name:?} in journal"))
}

/// The worker-pool execution core shared by fresh runs and resumes.
fn execute(
    cells: Vec<SweepCell>,
    terminal: HashMap<usize, CellState>,
    opts: &SweepOptions,
    journal: &Journal,
) -> Result<SweepOutcome, String> {
    std::fs::create_dir_all(&opts.out_dir)
        .map_err(|e| format!("cannot create {}: {e}", opts.out_dir.display()))?;
    let store = match &opts.snapshot_dir {
        Some(dir) => SnapshotStore::with_dir(dir).map_err(|e| e.to_string())?,
        None => SnapshotStore::in_memory(),
    };
    let skipped = terminal.len();
    let states: Mutex<Vec<Option<CellState>>> = Mutex::new(vec![None; cells.len()]);
    for (&i, s) in &terminal {
        states.lock().unwrap()[i] = Some(s.clone());
    }

    // Only primaries dispatch; dedups inherit their primary's outcome.
    let primaries: Vec<usize> = cells
        .iter()
        .filter(|c| c.dedup_of.is_none() && !terminal.contains_key(&c.index))
        .map(|c| c.index)
        .collect();

    let threads = opts.threads.unwrap_or_else(num_threads);
    let results = try_par_map_with_threads(&primaries, threads, |&i| {
        let state = run_cell(&cells[i], opts, &store, journal);
        journal_terminal(journal, &cells[i], &state);
        states.lock().unwrap()[i] = Some(state);
    });
    // A panic in the orchestration code itself (not the cell — those
    // are caught in run_cell) still quarantines only its cell.
    for (slot, r) in primaries.iter().zip(&results) {
        if let Err(p) = r {
            let state = CellState::Quarantined {
                attempts: 0,
                error: CellError {
                    code: PANIC_CODE.to_string(),
                    message: p.message.clone(),
                    artifact: None,
                    transient: false,
                },
            };
            journal_terminal(journal, &cells[*slot], &state);
            states.lock().unwrap()[*slot] = Some(state);
        }
    }

    // Dedup cells inherit their primary's terminal state.
    let mut states = states.into_inner().unwrap();
    for c in &cells {
        if states[c.index].is_some() {
            continue;
        }
        let Some(primary) = c.dedup_of else {
            return Err(format!("cell {} was never dispatched (orchestrator bug)", c.index));
        };
        let state = match &states[primary] {
            Some(CellState::Done { artifact, .. }) => CellState::Done {
                attempts: 0,
                artifact: artifact.clone(),
                cached: false,
                dedup_of: Some(primary),
            },
            Some(CellState::Quarantined { error, .. }) => CellState::Quarantined {
                attempts: 0,
                error: error.clone(),
            },
            None => {
                return Err(format!(
                    "cell {} dedups to cell {primary}, which never resolved",
                    c.index
                ))
            }
        };
        journal_terminal(journal, c, &state);
        states[c.index] = Some(state);
    }

    let states: Vec<CellState> =
        states.into_iter().map(|s| s.expect("every cell resolved above")).collect();
    let outcome = SweepOutcome { cells, states, skipped };
    let mut fin = event("finish");
    fin.set(
        "completed",
        Value::uint(
            outcome.states.iter().filter(|s| matches!(s, CellState::Done { .. })).count() as u64,
        ),
    );
    fin.set("quarantined", Value::uint(outcome.quarantined().len() as u64));
    fin.set("ok", Value::boolean(outcome.ok()));
    journal.emit(fin);
    Ok(outcome)
}

fn journal_terminal(journal: &Journal, cell: &SweepCell, state: &CellState) {
    match state {
        CellState::Done { attempts, artifact, cached, dedup_of } => {
            let mut j = event("done");
            j.set("cell", Value::uint(cell.index as u64));
            j.set("attempt", Value::uint(*attempts as u64));
            j.set("run_id", Value::string(&cell.manifest.run_id));
            j.set("artifact", Value::string(&artifact.display().to_string()));
            j.set("cached", Value::boolean(*cached));
            j.set("dedup_of", dedup_of.map_or(Value::Null, |i| Value::uint(i as u64)));
            journal.emit(j);
        }
        CellState::Quarantined { attempts, error } => {
            let mut j = event("quarantined");
            j.set("cell", Value::uint(cell.index as u64));
            j.set("attempt", Value::uint(*attempts as u64));
            j.set("run_id", Value::string(&cell.manifest.run_id));
            j.set("code", Value::string(&error.code));
            j.set("error", Value::string(&error.message));
            j.set(
                "artifact",
                error
                    .artifact
                    .as_ref()
                    .map_or(Value::Null, |p| Value::string(&p.display().to_string())),
            );
            journal.emit(j);
        }
    }
}

/// Runs one primary cell to a terminal state: retry loop, deadline,
/// injections, artifact write. Never panics (the cell body is caught).
fn run_cell(
    cell: &SweepCell,
    opts: &SweepOptions,
    store: &SnapshotStore,
    journal: &Journal,
) -> CellState {
    let artifact_path = opts.out_dir.join(cell.artifact_name());
    // Run-id ledger dedupe across invocations: an artifact produced by
    // a previous sweep for this exact run id is reused, not recomputed.
    if artifact_is_valid(&artifact_path, &cell.manifest.run_id) {
        return CellState::Done { attempts: 0, artifact: artifact_path, cached: true, dedup_of: None };
    }

    let injections: Vec<&Injection> =
        opts.injections.iter().filter(|i| i.cell() == cell.index).collect();
    let max_attempts = opts.retries.saturating_add(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        let mut j = event("running");
        j.set("cell", Value::uint(cell.index as u64));
        j.set("attempt", Value::uint(attempt as u64));
        journal.emit(j);

        let error = match attempt_cell(cell, &injections, opts, store, attempt) {
            Ok(body) => match write_artifact(&artifact_path, &body) {
                Ok(()) => {
                    return CellState::Done {
                        attempts: attempt,
                        artifact: artifact_path,
                        cached: false,
                        dedup_of: None,
                    }
                }
                Err(e) => CellError {
                    code: "E-IO".to_string(),
                    message: e,
                    artifact: None,
                    transient: false,
                },
            },
            Err(e) => e,
        };

        if error.transient && attempt < max_attempts {
            let backoff = backoff_ms(opts.backoff_ms, cell, attempt);
            let mut j = event("retrying");
            j.set("cell", Value::uint(cell.index as u64));
            j.set("attempt", Value::uint(attempt as u64));
            j.set("code", Value::string(&error.code));
            j.set("error", Value::string(&error.message));
            j.set("backoff_ms", Value::uint(backoff));
            journal.emit(j);
            std::thread::sleep(std::time::Duration::from_millis(backoff));
            continue;
        }
        return CellState::Quarantined { attempts: attempt, error };
    }
}

/// Exponential backoff with deterministic jitter: `base * 2^(k-1)` plus
/// a cell/attempt-keyed pseudo-random extra in `[0, base)`, capped at
/// 5 s so a misconfigured base cannot park a worker for minutes.
fn backoff_ms(base: u64, cell: &SweepCell, attempt: u32) -> u64 {
    if base == 0 {
        return 0;
    }
    let exp = base.saturating_mul(1u64 << (attempt - 1).min(12));
    let mut state = cell.cfg.seed ^ (cell.index as u64) << 20 ^ attempt as u64;
    let jitter = splitmix64(&mut state) % base;
    exp.saturating_add(jitter).min(5_000)
}

/// One attempt of one cell: applies injections, arms the per-cell
/// deadline, and catches panics from the simulation body.
fn attempt_cell(
    cell: &SweepCell,
    injections: &[&Injection],
    opts: &SweepOptions,
    store: &SnapshotStore,
    attempt: u32,
) -> Result<String, CellError> {
    // The cell-level clock starts before any injected hang so setup
    // time counts against the deadline too.
    let wall = opts.deadline_ms.map(WallDeadline::new);

    for inj in injections {
        match inj {
            Injection::Panic { .. } => {
                // Caught below like any real worker panic.
            }
            Injection::Hang { .. } => {
                let ms = opts.deadline_ms.map_or(200, |d| d.saturating_add(50));
                std::thread::sleep(std::time::Duration::from_millis(ms));
            }
            Injection::Flaky { failures, .. } => {
                if attempt <= *failures {
                    return Err(CellError {
                        code: "E-FAULT".to_string(),
                        message: format!(
                            "injected transient fault (attempt {attempt} of {failures} failing)"
                        ),
                        artifact: None,
                        transient: true,
                    });
                }
            }
        }
    }

    // Layered deadline: whatever budget the hang (or slow setup) left
    // becomes the event loop's wall budget. An already-expired budget
    // times out here without simulating at all.
    let mut cfg = cell.cfg.clone();
    if let Some(w) = &wall {
        let remaining = w.budget_ms().saturating_sub(w.elapsed_ms());
        if remaining == 0 {
            return Err(CellError {
                code: "E-TIMEOUT".to_string(),
                message: format!(
                    "cell exceeded its {} ms deadline before the event loop started",
                    w.budget_ms()
                ),
                artifact: None,
                transient: true,
            });
        }
        cfg.wall_deadline_ms = Some(match cfg.wall_deadline_ms {
            Some(own) => own.min(remaining),
            None => remaining,
        });
    }

    let panics = injections.iter().any(|i| matches!(i, Injection::Panic { .. }));
    let caught = panic::catch_unwind(AssertUnwindSafe(|| {
        if panics {
            panic!("injected panic in cell {}", cell.index);
        }
        run_benchmark_with_store(cell.protocol, cell.benchmark, &cfg, Some(store))
    }));
    match caught {
        Ok(Ok(result)) => Ok(result.metrics_json()),
        Ok(Err(e)) => Err(CellError::from_sim(&e)),
        Err(payload) => Err(CellError {
            code: PANIC_CODE.to_string(),
            message: panic_message(payload),
            artifact: None,
            transient: false,
        }),
    }
}

/// True when `path` holds a parseable artifact stamped with `run_id`
/// (the ledger-reuse check; anything else re-runs the cell).
fn artifact_is_valid(path: &Path, run_id: &str) -> bool {
    let Ok(text) = std::fs::read_to_string(path) else { return false };
    let Ok(doc) = Value::parse(&text) else { return false };
    crate::manifest::manifest_of(&doc).is_some_and(|m| m.run_id == run_id)
}

/// Atomic artifact write: temp file + rename, so a killed sweep never
/// leaves a torn artifact that a resume would mistake for a result.
fn write_artifact(path: &Path, body: &str) -> Result<(), String> {
    let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
    std::fs::write(&tmp, body).map_err(|e| format!("cannot write {}: {e}", tmp.display()))?;
    std::fs::rename(&tmp, path)
        .map_err(|e| format!("cannot rename {} into place: {e}", tmp.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_spec() -> SweepSpec {
        SweepSpec {
            protocols: vec![ProtocolKind::Directory, ProtocolKind::DiCo],
            benchmarks: vec![Benchmark::Radix],
            seeds: vec![7, 8],
            plans: vec![None],
            base: SystemConfig::smoke(),
        }
    }

    #[test]
    fn expansion_is_deterministic_and_indexed() {
        let a = tiny_spec().expand();
        let b = tiny_spec().expand();
        assert_eq!(a.len(), 4);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.index, y.index);
            assert_eq!(x.manifest.run_id, y.manifest.run_id);
            assert_eq!(x.name(), y.name());
        }
    }

    #[test]
    fn duplicate_cells_dedup_by_run_id() {
        let mut spec = tiny_spec();
        spec.seeds = vec![7, 7];
        let cells = spec.expand();
        assert_eq!(cells.len(), 4);
        assert_eq!(cells[2].dedup_of, Some(0));
        assert_eq!(cells[3].dedup_of, Some(1));
    }

    #[test]
    fn injection_specs_round_trip() {
        for spec in ["panic@3", "hang@0", "flaky@2:4"] {
            assert_eq!(Injection::parse(spec).unwrap().spec(), spec);
        }
        assert_eq!(Injection::parse("flaky@2").unwrap(), Injection::Flaky { cell: 2, failures: 1 });
        assert!(Injection::parse("explode@1").is_err());
        assert!(Injection::parse("panic").is_err());
    }

    #[test]
    fn backoff_grows_and_caps() {
        let cell = &tiny_spec().expand()[0];
        let b1 = backoff_ms(100, cell, 1);
        let b2 = backoff_ms(100, cell, 2);
        assert!((100..200).contains(&b1), "{b1}");
        assert!((200..300).contains(&b2), "{b2}");
        assert_eq!(backoff_ms(100, cell, 60), 5_000);
        assert_eq!(backoff_ms(0, cell, 3), 0);
        // Deterministic: same inputs, same jitter.
        assert_eq!(b1, backoff_ms(100, cell, 1));
    }
}
