//! Tenant-level and spatial exports: per-VM attribution tables, the
//! cross-VM interference matrix, and per-tile/per-link heatmap grids.
//!
//! Everything here renders data already collected by the attribution
//! layer ([`crate::attr`]) and the simulator's spatial counters
//! ([`crate::result::SpatialLog`]) — nothing affects simulated timing.
//! The JSON artifacts are deterministic, manifest-stamped, and
//! validated by `schemas/vmstat.schema.json` /
//! `schemas/heatmap.schema.json`; the text renderers back
//! `cmpsim-cli vmstat` and the "Tenant breakdown" report section.

use crate::attr::{BreakdownLog, MatrixCell};
use crate::replay::Value;
use crate::report::{md_table, table};
use crate::result::RunResult;
use cmpsim_engine::phase::Phase;
use std::fmt::Write as _;

/// Schema tag of the per-VM statistics artifact.
pub const VMSTAT_SCHEMA: &str = "cmpsim-vmstat-v1";
/// Schema tag of the spatial heatmap artifact.
pub const HEATMAP_SCHEMA: &str = "cmpsim-heatmap-v1";

/// Shade ramp for ASCII heatmaps, darkest last.
const RAMP: &[u8] = b" .:-=+*#%@";

/// Sums the four outgoing directed links of every tile into one
/// per-tile value (`links` is the mesh layout `tile * 4 + direction`).
fn per_tile_links(links: &[u64]) -> Vec<u64> {
    links.chunks(4).map(|c| c.iter().sum()).collect()
}

/// One interference-matrix cell as JSON.
fn cell_json(aggressor: usize, victim: usize, c: &MatrixCell) -> Value {
    let mut j = Value::object();
    j.set("aggressor", Value::uint(aggressor as u64));
    j.set("victim", Value::uint(victim as u64));
    j.set("msgs", Value::uint(c.msgs));
    j.set("inv_msgs", Value::uint(c.inv_msgs));
    j.set("fwd_msgs", Value::uint(c.fwd_msgs));
    j.set("dedup_msgs", Value::uint(c.dedup_msgs));
    j.set("routing", Value::uint(c.routing));
    j.set("flit_links", Value::uint(c.flit_links));
    j.set("stolen_cycles", Value::uint(c.stolen_cycles));
    j
}

/// Renders a per-VM statistics sweep as a deterministic JSON document
/// (validated by `schemas/vmstat.schema.json`). Results without a
/// breakdown are skipped — `vmstat` needs attribution enabled.
pub fn vmstat_json(results: &[RunResult]) -> String {
    let mut doc = Value::object();
    doc.set("schema", Value::string(VMSTAT_SCHEMA));
    if let Some(r) = results.first() {
        doc.set("benchmark", Value::string(r.benchmark.name()));
    }
    let manifests: Vec<Value> =
        results.iter().filter_map(|r| r.manifest.as_ref().map(|m| m.to_value())).collect();
    if !manifests.is_empty() {
        doc.set("manifests", Value::Arr(manifests));
    }
    let protos = results
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .map(|(r, b)| {
            let model = r.energy_model();
            let mut p = Value::object();
            p.set("protocol", Value::string(r.protocol.name()));
            p.set("num_vms", Value::uint(b.num_vms as u64));
            let vms = b
                .vm
                .iter()
                .enumerate()
                .map(|(i, vm)| {
                    let mut v = Value::object();
                    v.set("vm", Value::uint(i as u64));
                    v.set(
                        "finish_cycles",
                        Value::float(r.vm_finish.get(i).copied().unwrap_or(0.0)),
                    );
                    v.set("completed", Value::uint(vm.completed));
                    v.set("latency_cycles", Value::uint(vm.latency_cycles));
                    v.set(
                        "avg_miss_latency",
                        Value::float(vm.latency_cycles as f64 / vm.completed.max(1) as f64),
                    );
                    v.set("mshr_wait_cycles", Value::uint(vm.mshr_wait_cycles));
                    v.set("retry_wait_cycles", Value::uint(vm.retry_wait_cycles));
                    v.set("intra_txs", Value::uint(vm.intra_txs));
                    v.set("cross_txs", Value::uint(vm.cross_txs));
                    v.set("stolen_cycles", Value::uint(vm.stolen_cycles));
                    v.set("open_txs", Value::uint(vm.open_txs));
                    v.set("attributed_nj", Value::float(r.counts_nj(&model, &vm.counts)));
                    let mut ph = Value::object();
                    for p in Phase::all() {
                        ph.set(p.key(), Value::uint(vm.phase_cycles.get(p)));
                    }
                    v.set("phase_cycles", ph);
                    v
                })
                .collect();
            p.set("vms", Value::Arr(vms));
            let matrix = (0..b.num_vms)
                .flat_map(|a| (0..b.num_vms).map(move |v| (a, v)))
                .map(|(a, v)| cell_json(a, v, b.matrix_cell(a, v)))
                .collect();
            p.set("matrix", Value::Arr(matrix));
            p
        })
        .collect();
    doc.set("protocols", Value::Arr(protos));
    let mut out = String::new();
    doc.render_to(&mut out);
    out.push('\n');
    out
}

/// Renders the spatial counters of a sweep as a deterministic,
/// heatmap-ready JSON document (validated by
/// `schemas/heatmap.schema.json`). Results without spatial counters
/// (hand-assembled) are skipped.
pub fn heatmap_json(results: &[RunResult]) -> String {
    let mut doc = Value::object();
    doc.set("schema", Value::string(HEATMAP_SCHEMA));
    if let Some(r) = results.first() {
        doc.set("benchmark", Value::string(r.benchmark.name()));
    }
    let manifests: Vec<Value> =
        results.iter().filter_map(|r| r.manifest.as_ref().map(|m| m.to_value())).collect();
    if !manifests.is_empty() {
        doc.set("manifests", Value::Arr(manifests));
    }
    let uints = |xs: &[u64]| Value::Arr(xs.iter().map(|&x| Value::uint(x)).collect());
    let grids = results
        .iter()
        .filter_map(|r| r.spatial.as_ref().map(|s| (r, s)))
        .map(|(r, s)| {
            let mut g = Value::object();
            g.set("protocol", Value::string(r.protocol.name()));
            g.set("rows", Value::uint(s.rows));
            g.set("cols", Value::uint(s.cols));
            g.set("tile_misses", uints(&s.tile_misses));
            g.set("tile_refs", uints(&s.tile_refs));
            g.set("tile_flits", uints(&per_tile_links(&s.link_flits)));
            g.set("tile_stall", uints(&per_tile_links(&s.link_contention)));
            g.set(
                "tile_vm",
                Value::Arr(s.vm_of.iter().map(|&v| Value::uint(v as u64)).collect()),
            );
            g.set("link_flits", uints(&s.link_flits));
            g.set("link_stall", uints(&s.link_contention));
            g
        })
        .collect();
    doc.set("grids", Value::Arr(grids));
    let mut out = String::new();
    doc.render_to(&mut out);
    out.push('\n');
    out
}

/// Renders the spatial counters as long-format CSV, one row per tile
/// per grid kind — the shape spreadsheet/pandas heatmap tooling
/// ingests directly. Per-link counters are folded to their source tile
/// (sum of the four outgoing directed links), so each grid still sums
/// to the chip-wide counter it splits.
pub fn heatmap_csv(results: &[RunResult]) -> String {
    let mut out = String::from("benchmark,protocol,grid,row,col,vm,value\n");
    for (r, s) in results.iter().filter_map(|r| r.spatial.as_ref().map(|s| (r, s))) {
        let grids: [(&str, Vec<u64>); 4] = [
            ("tile_misses", s.tile_misses.clone()),
            ("tile_refs", s.tile_refs.clone()),
            ("tile_flits", per_tile_links(&s.link_flits)),
            ("tile_stall", per_tile_links(&s.link_contention)),
        ];
        for (kind, cells) in &grids {
            for (tile, v) in cells.iter().enumerate() {
                let _ = writeln!(
                    out,
                    "{},{},{},{},{},{},{}",
                    r.benchmark.name(),
                    r.protocol.name(),
                    kind,
                    tile as u64 / s.cols.max(1),
                    tile as u64 % s.cols.max(1),
                    s.vm_of.get(tile).copied().unwrap_or(0),
                    v,
                );
            }
        }
    }
    out
}

/// Renders a `rows x cols` grid as an ASCII heatmap, one mesh row per
/// line, shading each cell by its fraction of the grid maximum.
pub fn ascii_heatmap(rows: usize, cols: usize, cells: &[u64]) -> String {
    let max = cells.iter().copied().max().unwrap_or(0);
    let mut out = String::new();
    for row in 0..rows {
        for col in 0..cols {
            let v = cells.get(row * cols + col).copied().unwrap_or(0);
            let idx = if max == 0 {
                0
            } else {
                // Nonzero cells shade at least one step above blank.
                (v as u128 * (RAMP.len() as u128 - 1)).div_ceil(max as u128) as usize
            };
            let c = RAMP[idx.min(RAMP.len() - 1)] as char;
            out.push(c);
            out.push(c); // double width: terminal cells are ~2:1
        }
        out.push('\n');
    }
    out
}

/// The interference matrix as an aligned text table (rows = aggressor,
/// columns = victim), each cell `msgs/stolen`.
fn matrix_table(b: &BreakdownLog) -> String {
    let header: Vec<String> = std::iter::once("aggr\\victim".to_string())
        .chain((0..b.num_vms).map(|v| format!("vm{v}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let rows: Vec<Vec<String>> = (0..b.num_vms)
        .map(|a| {
            std::iter::once(format!("vm{a}"))
                .chain((0..b.num_vms).map(|v| {
                    let c = b.matrix_cell(a, v);
                    if c.is_zero() {
                        "-".to_string()
                    } else {
                        format!("{}/{}", c.msgs, c.stolen_cycles)
                    }
                }))
                .collect()
        })
        .collect();
    table(&header_refs, &rows)
}

/// Plain-text per-VM tables and interference matrices for a sweep —
/// the body of `cmpsim-cli vmstat`. Results without a breakdown are
/// skipped.
pub fn vmstat_tables(results: &[RunResult]) -> String {
    let mut out = String::new();
    for (r, b) in results.iter().filter_map(|r| r.breakdown.as_ref().map(|b| (r, b))) {
        let model = r.energy_model();
        let _ = writeln!(out, "== {} / {} ==\n", r.protocol.name(), r.benchmark.name());
        let rows: Vec<Vec<String>> = b
            .vm
            .iter()
            .enumerate()
            .map(|(i, vm)| {
                vec![
                    format!("vm{i}"),
                    format!("{:.0}", r.vm_finish.get(i).copied().unwrap_or(0.0)),
                    vm.completed.to_string(),
                    format!("{:.1}", vm.latency_cycles as f64 / vm.completed.max(1) as f64),
                    vm.intra_txs.to_string(),
                    vm.cross_txs.to_string(),
                    vm.stolen_cycles.to_string(),
                    format!("{:.1}", r.counts_nj(&model, &vm.counts) / 1000.0),
                ]
            })
            .collect();
        out.push_str(&table(
            &["vm", "finish", "misses", "avg lat", "intra", "cross", "stolen cyc", "energy uJ"],
            &rows,
        ));
        out.push('\n');
        out.push_str("interference (msgs/stolen cycles, aggressor -> victim):\n");
        out.push_str(&matrix_table(b));
        out.push('\n');
        if let Some(s) = &r.spatial {
            let _ = writeln!(out, "L1-miss heatmap ({}x{} mesh):", s.rows, s.cols);
            out.push_str(&ascii_heatmap(s.rows as usize, s.cols as usize, &s.tile_misses));
            let _ = writeln!(out, "link-flit heatmap (per-tile outgoing):");
            out.push_str(&ascii_heatmap(
                s.rows as usize,
                s.cols as usize,
                &per_tile_links(&s.link_flits),
            ));
            out.push('\n');
        }
    }
    if out.is_empty() {
        out.push_str("No attribution data. Rerun with attribution enabled (vmstat does this \
                      by default).\n");
    }
    out
}

/// Markdown "Tenant breakdown" section of one per-benchmark protocol
/// sweep, appended to the matrix report when attribution ran.
pub fn tenant_section(rs: &[&RunResult]) -> String {
    let mut out = String::from("### Tenant breakdown\n\n");
    let rows: Vec<Vec<String>> = rs
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .flat_map(|(r, b)| {
            let model = r.energy_model();
            b.vm
                .iter()
                .enumerate()
                .map(|(i, vm)| {
                    vec![
                        r.protocol.name().to_string(),
                        format!("vm{i}"),
                        format!("{:.0}", r.vm_finish.get(i).copied().unwrap_or(0.0)),
                        vm.completed.to_string(),
                        vm.intra_txs.to_string(),
                        vm.cross_txs.to_string(),
                        vm.stolen_cycles.to_string(),
                        format!("{:.1}", r.counts_nj(&model, &vm.counts) / 1000.0),
                    ]
                })
                .collect::<Vec<_>>()
        })
        .collect();
    out.push_str(&md_table(
        &[
            "protocol",
            "vm",
            "finish cycles",
            "misses",
            "intra-VM",
            "cross-VM",
            "stolen cycles",
            "energy (uJ)",
        ],
        &rows,
    ));
    out.push('\n');
    // Off-diagonal interference summary, one row per protocol.
    let irows: Vec<Vec<String>> = rs
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .map(|(r, b)| {
            let mut msgs = 0u64;
            let mut dedup = 0u64;
            let mut stolen = 0u64;
            for a in 0..b.num_vms {
                for v in 0..b.num_vms {
                    if a != v {
                        let c = b.matrix_cell(a, v);
                        msgs += c.msgs;
                        dedup += c.dedup_msgs;
                        stolen += c.stolen_cycles;
                    }
                }
            }
            vec![
                r.protocol.name().to_string(),
                msgs.to_string(),
                dedup.to_string(),
                stolen.to_string(),
            ]
        })
        .collect();
    out.push_str("Cross-VM interference (off-diagonal totals):\n\n");
    out.push_str(&md_table(
        &["protocol", "msgs into other VMs", "dedup-shared msgs", "stolen cycles"],
        &irows,
    ));
    out.push('\n');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SystemConfig;
    use crate::sim::run_benchmark;
    use cmpsim_protocols::ProtocolKind;
    use cmpsim_workloads::Benchmark;

    fn attributed_run() -> RunResult {
        let mut cfg = SystemConfig::smoke();
        cfg.attribution = true;
        run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run")
    }

    #[test]
    fn vmstat_json_is_schema_shaped_and_deterministic() {
        let r = attributed_run();
        let json = vmstat_json(std::slice::from_ref(&r));
        assert_eq!(json, vmstat_json(std::slice::from_ref(&r)));
        let v = Value::parse(&json).expect("valid json");
        assert_eq!(v.field("schema").unwrap().as_str().unwrap(), VMSTAT_SCHEMA);
        let Value::Arr(protos) = v.field("protocols").unwrap() else {
            panic!("protocols not an array");
        };
        assert_eq!(protos.len(), 1);
        let p = &protos[0];
        let n = p.field("num_vms").unwrap().as_u64().unwrap() as usize;
        let Value::Arr(vms) = p.field("vms").unwrap() else { panic!("vms") };
        assert_eq!(vms.len(), n);
        let Value::Arr(matrix) = p.field("matrix").unwrap() else { panic!("matrix") };
        assert_eq!(matrix.len(), n * n);
        // Per-VM completed counts tile the chip total.
        let b = r.breakdown.as_ref().unwrap();
        let sum: u64 =
            vms.iter().map(|v| v.field("completed").unwrap().as_u64().unwrap()).sum();
        assert_eq!(sum, b.completed);
    }

    #[test]
    fn heatmap_json_and_csv_cover_the_mesh() {
        let r = attributed_run();
        let s = r.spatial.as_ref().expect("spatial counters");
        let tiles = (s.rows * s.cols) as usize;
        let json = heatmap_json(std::slice::from_ref(&r));
        let v = Value::parse(&json).expect("valid json");
        assert_eq!(v.field("schema").unwrap().as_str().unwrap(), HEATMAP_SCHEMA);
        let Value::Arr(grids) = v.field("grids").unwrap() else { panic!("grids") };
        let g = &grids[0];
        for key in ["tile_misses", "tile_refs", "tile_flits", "tile_stall", "tile_vm"] {
            let Value::Arr(cells) = g.field(key).unwrap() else { panic!("{key}") };
            assert_eq!(cells.len(), tiles, "{key}");
        }
        let Value::Arr(links) = g.field("link_flits").unwrap() else { panic!("links") };
        assert_eq!(links.len(), tiles * 4);
        // CSV: header + 4 grids x tiles rows; per-tile folds keep sums.
        let csv = heatmap_csv(std::slice::from_ref(&r));
        assert_eq!(csv.lines().count(), 1 + 4 * tiles);
        let flit_sum: u64 = per_tile_links(&s.link_flits).iter().sum();
        assert_eq!(flit_sum, r.noc_stats.flit_link_traversals.get());
    }

    #[test]
    fn ascii_heatmap_shades_by_magnitude() {
        let art = ascii_heatmap(2, 2, &[0, 1, 5, 10]);
        let lines: Vec<&str> = art.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("  ")); // zero cell is blank
        assert!(lines[1].ends_with("@@")); // max cell is darkest
        // A nonzero cell never renders blank.
        assert!(!lines[0].ends_with(' '));
        // Zero-max grids render all blank.
        assert_eq!(ascii_heatmap(1, 2, &[0, 0]), "    \n");
    }

    #[test]
    fn tables_and_report_section_render() {
        let r = attributed_run();
        let txt = vmstat_tables(std::slice::from_ref(&r));
        assert!(txt.contains("== DiCo / apache4x16p =="));
        assert!(txt.contains("aggr\\victim"));
        assert!(txt.contains("L1-miss heatmap"));
        let md = tenant_section(&[&r]);
        assert!(md.starts_with("### Tenant breakdown"));
        assert!(md.contains("| DiCo | vm0 |"));
        assert!(md.contains("Cross-VM interference"));
    }
}
