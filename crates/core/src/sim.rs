//! The whole-chip simulator: cores, NoC, memory controllers and one
//! coherence protocol, driven by a deterministic event loop.

use crate::config::SystemConfig;
use crate::result::RunResult;
use cmpsim_engine::par::par_map;
use cmpsim_engine::{Cycle, EventQueue, SimRng};
use cmpsim_noc::Mesh;
use cmpsim_protocols::arin::Arin;
use cmpsim_protocols::common::{
    AccessOutcome, Block, ChipSpec, CoherenceProtocol, Ctx, Msg, MsgKind, Node, Tile,
};
use cmpsim_protocols::dico::DiCo;
use cmpsim_protocols::directory::Directory;
use cmpsim_protocols::providers::Providers;
use cmpsim_protocols::ProtocolKind;
use cmpsim_virt::mem::LogicalPage;
use cmpsim_virt::MachineMemory;
use cmpsim_workloads::{Benchmark, CoreStream};
use std::collections::BTreeMap;

/// Builds a protocol instance for `spec`.
pub fn build_protocol(kind: ProtocolKind, spec: ChipSpec) -> Box<dyn CoherenceProtocol> {
    match kind {
        ProtocolKind::Directory => Box::new(Directory::new(spec)),
        ProtocolKind::DiCo => Box::new(DiCo::new(spec)),
        ProtocolKind::DiCoProviders => Box::new(Providers::new(spec)),
        ProtocolKind::DiCoArin => Box::new(Arin::new(spec)),
    }
}

#[derive(Debug)]
enum Ev {
    /// The core of a tile wants to make progress.
    CoreResume(Tile),
    /// A coherence message arrives.
    Deliver(Msg),
}

struct Core {
    stream: CoreStream,
    vm: usize,
    /// Translated reference waiting to issue (after its think gap, or a
    /// Blocked retry).
    pending: Option<(Block, bool)>,
    outstanding: bool,
    refs_done: u64,
    finished_at: Option<Cycle>,
}

/// One full-system simulation.
pub struct CmpSimulator {
    cfg: SystemConfig,
    proto: Box<dyn CoherenceProtocol>,
    mesh: Mesh,
    queue: EventQueue<Ev>,
    cores: Vec<Core>,
    memory: MachineMemory,
    benchmark: Benchmark,
    rng: SimRng,
    /// Point-to-point FIFO delivery floors (wormhole meshes preserve
    /// per-pair ordering; the protocols rely on it).
    fifo: BTreeMap<(Node, Node), Cycle>,
    /// Memory controller availability.
    ctrl_free: Vec<Cycle>,
    /// Warm-up bookkeeping.
    warmed_up: bool,
    measure_start: Cycle,
    refs_at_reset: u64,
    events: u64,
}

impl CmpSimulator {
    /// Builds a simulator for one protocol/benchmark/config triple.
    pub fn new(kind: ProtocolKind, benchmark: Benchmark, cfg: &SystemConfig) -> Self {
        let tiles = cfg.tiles();
        assert_eq!(
            cfg.noc.cols * cfg.noc.rows,
            tiles,
            "NoC dimensions must match the chip"
        );
        let mut rng = SimRng::new(cfg.seed);
        let areas = &cfg.chip.areas;
        let cores = (0..tiles)
            .map(|t| {
                let vm = cfg.placement.vm_of_tile(areas, cfg.num_vms, t);
                let profile = benchmark.profile_for_vm(vm, cfg.num_vms);
                // Slot of this core within its VM (0..cores_per_vm).
                let core_in_vm = cfg
                    .placement
                    .tiles_of_vm(areas, cfg.num_vms, vm)
                    .iter()
                    .position(|&x| x == t)
                    .expect("tile in own VM") as u64;
                Core {
                    stream: CoreStream::new(profile, core_in_vm, rng.fork(t as u64)),
                    vm,
                    pending: None,
                    outstanding: false,
                    refs_done: 0,
                    finished_at: None,
                }
            })
            .collect();
        Self {
            proto: build_protocol(kind, cfg.chip.clone()),
            mesh: Mesh::new(cfg.noc),
            queue: EventQueue::with_capacity(4 * tiles),
            cores,
            memory: MachineMemory::new(cfg.num_vms),
            benchmark,
            rng,
            fifo: BTreeMap::new(),
            ctrl_free: vec![0; cfg.mem_controllers],
            warmed_up: false,
            measure_start: 0,
            refs_at_reset: 0,
            events: 0,
            cfg: cfg.clone(),
        }
    }

    fn flits(&self, kind: &MsgKind) -> u64 {
        if kind.carries_data() {
            self.cfg.noc.data_flits
        } else {
            self.cfg.noc.control_flits
        }
    }

    fn deliver(&mut self, at: Cycle, msg: Msg) {
        let key = (msg.src, msg.dst);
        let mut at = at;
        if let Some(&floor) = self.fifo.get(&key) {
            at = at.max(floor);
        }
        self.fifo.insert(key, at);
        self.queue.push(at, Ev::Deliver(msg));
    }

    /// Routes one Ctx worth of protocol output through the chip.
    fn apply_ctx(&mut self, now: Cycle, ctx: Ctx) {
        for out in ctx.sends {
            let flits = self.flits(&out.msg.kind);
            let d = self.mesh.send(now + out.delay, out.msg.src.tile(), out.msg.dst.tile(), flits);
            self.deliver(d.arrival, out.msg);
        }
        for b in ctx.bcasts {
            let flits = if b.kind.carries_data() {
                self.cfg.noc.data_flits
            } else {
                self.cfg.noc.control_flits
            };
            let arrivals = self.mesh.broadcast(now + b.delay, b.src.tile(), flits);
            for (t, at) in arrivals {
                if Some(t) == b.exclude {
                    continue;
                }
                self.deliver(at, Msg { kind: b.kind, block: b.block, src: b.src, dst: Node::L1(t) });
            }
            // The source's own L1 may also be a destination (e.g. the
            // home bank broadcasting to its co-located L1).
            let src_tile = b.src.tile();
            if Some(src_tile) != b.exclude && matches!(b.src, Node::L2(_)) {
                self.deliver(
                    now + b.delay + 1,
                    Msg { kind: b.kind, block: b.block, src: b.src, dst: Node::L1(src_tile) },
                );
            }
        }
        for m in ctx.replays {
            self.queue.push(now, Ev::Deliver(m));
        }
        for op in ctx.mem_ops {
            let ctrl = self.cfg.mem_ctrl_of(op.block);
            let ctrl_tile = self.cfg.mem_ctrl_tile(ctrl);
            let flits =
                if op.is_write { self.cfg.noc.data_flits } else { self.cfg.noc.control_flits };
            let d = self.mesh.send(now + op.delay, op.home, ctrl_tile, flits);
            let start = d.arrival.max(self.ctrl_free[ctrl]);
            self.ctrl_free[ctrl] = start + self.cfg.mem_service;
            if !op.is_write {
                let ready = start + self.cfg.mem_latency + self.rng.jitter(self.cfg.mem_jitter);
                let back =
                    self.mesh.send(ready, ctrl_tile, op.home, self.cfg.noc.data_flits);
                self.deliver(
                    back.arrival,
                    Msg {
                        kind: MsgKind::MemData,
                        block: op.block,
                        src: Node::L2(op.home),
                        dst: Node::L2(op.home),
                    },
                );
            }
        }
        for c in ctx.completions {
            let core = &mut self.cores[c.tile];
            debug_assert!(core.outstanding, "completion without outstanding access");
            core.outstanding = false;
            core.refs_done += 1;
            self.queue.push(now + c.delay + 1, Ev::CoreResume(c.tile));
        }
    }

    fn core_resume(&mut self, now: Cycle, tile: Tile) {
        if self.cores[tile].outstanding {
            return;
        }
        if self.cores[tile].refs_done >= self.cfg.refs_per_core {
            if self.cores[tile].finished_at.is_none() {
                self.cores[tile].finished_at = Some(now);
            }
            return;
        }
        // Generate (and translate) the next reference if none is pending.
        if self.cores[tile].pending.is_none() {
            let vm = self.cores[tile].vm;
            let r = self.cores[tile].stream.next_ref();
            let lp = LogicalPage { vm, region: r.region, index: r.page_index };
            let block = self.memory.translate(lp, r.block_in_page, r.is_write);
            self.cores[tile].pending = Some((block, r.is_write));
            if r.gap > 0 {
                // Non-memory work before the access issues.
                self.queue.push(now + r.gap, Ev::CoreResume(tile));
                return;
            }
        }
        let (block, write) = self.cores[tile].pending.expect("pending set above");
        let mut ctx = Ctx::at(now);
        match self.proto.core_access(&mut ctx, tile, block, write) {
            AccessOutcome::Hit { latency } => {
                self.cores[tile].pending = None;
                self.cores[tile].refs_done += 1;
                self.apply_ctx(now, ctx);
                self.queue.push(now + latency, Ev::CoreResume(tile));
            }
            AccessOutcome::Miss => {
                self.cores[tile].pending = None;
                self.cores[tile].outstanding = true;
                self.apply_ctx(now, ctx);
            }
            AccessOutcome::Blocked => {
                self.apply_ctx(now, ctx);
                self.queue.push(now + 7, Ev::CoreResume(tile));
            }
        }
    }

    fn maybe_finish_warmup(&mut self, now: Cycle) {
        if self.warmed_up {
            return;
        }
        let total: u64 = self.cores.iter().map(|c| c.refs_done).sum();
        let target = (self.cfg.warmup_frac
            * (self.cfg.refs_per_core * self.cores.len() as u64) as f64) as u64;
        if total >= target {
            self.warmed_up = true;
            self.measure_start = now;
            self.refs_at_reset = total;
            self.proto.reset_stats();
            self.mesh.reset_stats();
        }
    }

    /// Runs to completion and returns the measured results.
    pub fn run(mut self) -> RunResult {
        let tiles = self.cores.len();
        for t in 0..tiles {
            self.queue.push(0, Ev::CoreResume(t));
        }
        let budget = self.cfg.refs_per_core * tiles as u64 * 600 + 5_000_000;
        while let Some((now, ev)) = self.queue.pop() {
            self.events += 1;
            assert!(
                self.events <= budget,
                "simulation exceeded its event budget (deadlock?)\n{}",
                self.proto.pending_summary()
            );
            match ev {
                Ev::CoreResume(tile) => self.core_resume(now, tile),
                Ev::Deliver(msg) => {
                    if let Some(b) = std::env::var("CMPSIM_TRACE_BLOCK")
                        .ok()
                        .and_then(|v| v.parse::<u64>().ok())
                    {
                        if msg.block == b {
                            eprintln!("[{now}] {msg:?}");
                        }
                    }
                    let mut ctx = Ctx::at(now);
                    self.proto.handle(&mut ctx, msg);
                    self.apply_ctx(now, ctx);
                }
            }
            self.maybe_finish_warmup(now);
        }
        for (t, c) in self.cores.iter().enumerate() {
            assert!(
                c.refs_done >= self.cfg.refs_per_core,
                "core {t} stalled at {}/{} refs\n{}",
                c.refs_done,
                self.cfg.refs_per_core,
                self.proto.pending_summary()
            );
        }
        assert!(
            self.proto.quiescent(),
            "protocol not quiescent after drain\n{}",
            self.proto.pending_summary()
        );

        let last_finish =
            self.cores.iter().map(|c| c.finished_at.unwrap_or(0)).max().unwrap_or(0);
        let avg_finish = self.cores.iter().map(|c| c.finished_at.unwrap_or(0) as f64).sum::<f64>()
            / tiles as f64;
        let total_refs: u64 = self.cores.iter().map(|c| c.refs_done).sum();
        // Per-VM mean completion time (the paper's ExecTime metric).
        let mut vm_sum = vec![0.0f64; self.cfg.num_vms];
        let mut vm_n = vec![0u64; self.cfg.num_vms];
        for c in &self.cores {
            vm_sum[c.vm] += c.finished_at.unwrap_or(0) as f64 - self.measure_start as f64;
            vm_n[c.vm] += 1;
        }
        let vm_finish: Vec<f64> =
            vm_sum.iter().zip(&vm_n).map(|(s, &n)| s / n.max(1) as f64).collect();
        RunResult::collect(
            self.proto.kind(),
            self.benchmark,
            self.cfg.placement,
            self.cfg.tiles() as u64,
            self.cfg.chip.num_areas() as u64,
            last_finish.saturating_sub(self.measure_start).max(1),
            total_refs - self.refs_at_reset,
            avg_finish.max(1.0) - self.measure_start as f64,
            vm_finish,
            self.proto.stats(),
            self.mesh.stats(),
            self.memory.dedup_savings(),
        )
    }
}

/// Runs one protocol on one benchmark.
pub fn run_benchmark(kind: ProtocolKind, benchmark: Benchmark, cfg: &SystemConfig) -> RunResult {
    CmpSimulator::new(kind, benchmark, cfg).run()
}

/// Runs every (protocol, benchmark) pair of the given lists in parallel
/// across host cores, returning results in row-major order
/// (`benchmarks x protocols`).
pub fn run_matrix(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    cfg: &SystemConfig,
) -> Vec<RunResult> {
    let jobs: Vec<(ProtocolKind, Benchmark)> = benchmarks
        .iter()
        .flat_map(|&b| protocols.iter().map(move |&p| (p, b)))
        .collect();
    par_map(&jobs, |&(p, b)| run_benchmark(p, b, cfg))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_all_protocols_complete() {
        let cfg = SystemConfig::smoke();
        for kind in ProtocolKind::all() {
            let r = run_benchmark(kind, Benchmark::Radix, &cfg);
            assert!(r.measured_refs > 0, "{kind:?}");
            assert!(r.cycles > 0);
            assert!(r.proto_stats.l1_hits.get() > 0, "{kind:?} should have hits");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::smoke();
        let a = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg);
        let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg);
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.measured_refs, b.measured_refs);
        assert_eq!(a.noc_stats.messages.get(), b.noc_stats.messages.get());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SystemConfig::smoke();
        let a = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg);
        let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg.clone().with_seed(99));
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn alt_placement_runs() {
        let cfg = SystemConfig::smoke().with_placement(cmpsim_virt::Placement::Alternative);
        let r = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, &cfg);
        assert!(r.measured_refs > 0);
    }

    #[test]
    fn dedup_savings_reported() {
        let cfg = SystemConfig::small();
        let r = run_benchmark(ProtocolKind::Directory, Benchmark::Apache, &cfg);
        // Apache's pools are sized for ~21.7% savings once fully touched;
        // a short run underestimates but must be clearly nonzero.
        assert!(r.dedup_savings > 0.02, "savings {}", r.dedup_savings);
    }

    #[test]
    fn matrix_runs_in_parallel() {
        let cfg = SystemConfig::smoke();
        let rs = run_matrix(
            &[ProtocolKind::Directory, ProtocolKind::DiCoArin],
            &[Benchmark::Radix, Benchmark::Apache],
            &cfg,
        );
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].protocol, ProtocolKind::Directory);
        assert_eq!(rs[0].benchmark.name(), "radix4x16p");
        assert_eq!(rs[3].protocol, ProtocolKind::DiCoArin);
    }
}
