//! The whole-chip simulator: cores, NoC, memory controllers and one
//! coherence protocol, driven by a deterministic event loop.

use crate::attr::{classify, MsgClass, TxAttribution};
use crate::config::SystemConfig;
use crate::error::{
    CoreStallState, FaultAbort, FaultContext, HotBlock, InFlightMsg, InvariantReport,
    ProtocolFault, SimError, StallReason, StallReport, TimeoutReport,
};
use crate::interval::{CumSnapshot, IntervalSampler};
use crate::replay::ReplayArtifact;
use crate::result::{ArchState, RunResult, SpatialLog};
use crate::trace::TxTracer;
use crate::snapshot::{self, SnapshotError, SnapshotStore};
use cmpsim_engine::par::{num_threads, par_map_with_threads};
use cmpsim_engine::rng::splitmix64;
use cmpsim_engine::{
    Cycle, EventCounts, EventQueue, FaultDecision, FaultEngine, FaultPlan, FxHashMap, FxHashSet,
    HostProfiler, SimRng, Snap, SnapError, SnapReader, SnapWriter, WallDeadline,
};
use cmpsim_noc::Mesh;
use cmpsim_protocols::arin::Arin;
use cmpsim_protocols::checker::StepChecker;
use cmpsim_protocols::common::{
    AccessOutcome, Block, ChipSpec, CoherenceProtocol, Ctx, Msg, MsgKind, Node, ProtoError, Tile,
};
use cmpsim_protocols::dico::DiCo;
use cmpsim_protocols::directory::Directory;
use cmpsim_protocols::providers::Providers;
use cmpsim_protocols::{ProtoStats, ProtocolKind};
use cmpsim_virt::mem::{LogicalPage, PageKind, BLOCKS_PER_PAGE};
use cmpsim_virt::MachineMemory;
use cmpsim_workloads::{Benchmark, CoreStream};
use std::collections::BTreeMap;

/// Builds a protocol instance for `spec`.
pub fn build_protocol(kind: ProtocolKind, spec: ChipSpec) -> Box<dyn CoherenceProtocol> {
    match kind {
        ProtocolKind::Directory => Box::new(Directory::new(spec)),
        ProtocolKind::DiCo => Box::new(DiCo::new(spec)),
        ProtocolKind::DiCoProviders => Box::new(Providers::new(spec)),
        ProtocolKind::DiCoArin => Box::new(Arin::new(spec)),
    }
}

#[derive(Debug, Clone, Copy)]
enum Ev {
    /// The core of a tile wants to make progress.
    CoreResume(Tile),
    /// A coherence message arrives, tagged with its transport-layer
    /// retry sequence number (0 = untracked; always 0 with fault
    /// injection off).
    Deliver(Msg, u64),
    /// The MSHR timeout for tile's open miss fired. `generation`
    /// disambiguates stale timeouts: it must match the tile's current
    /// miss generation or the event is a no-op.
    ReqTimeout {
        /// Tile whose open request timed out.
        tile: Tile,
        /// Miss generation the timeout was armed for.
        generation: u64,
    },
}

impl Snap for Ev {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Ev::CoreResume(tile) => {
                w.u8(0);
                tile.save(w);
            }
            Ev::Deliver(msg, seq) => {
                w.u8(1);
                msg.save(w);
                seq.save(w);
            }
            Ev::ReqTimeout { tile, generation } => {
                w.u8(2);
                tile.save(w);
                generation.save(w);
            }
        }
    }
    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Ev::CoreResume(Snap::load(r)?)),
            1 => {
                let msg = Snap::load(r)?;
                let seq = Snap::load(r)?;
                Ok(Ev::Deliver(msg, seq))
            }
            2 => {
                let tile = Snap::load(r)?;
                let generation = Snap::load(r)?;
                Ok(Ev::ReqTimeout { tile, generation })
            }
            tag => Err(SnapError::BadTag { what: "Ev", tag }),
        }
    }
}

/// How a [`CmpSimulator::run_phase`] event loop ended.
enum PhaseExit {
    /// The event queue drained (the run is complete).
    Drained,
    /// The warm-up window closed (the snapshot boundary; only with
    /// `stop_at_warm`).
    Warmed,
}

/// The first hop of a miss transaction: the requestor L1's own request
/// with no forwarding history. Only this hop is retransmittable — the
/// home (or predicted owner) has no transient state for it yet, so a
/// lost copy can be re-sent by the MSHR timeout and a duplicate is
/// suppressed by the receiver-side sequence filter.
fn initial_req_of(msg: &Msg) -> Option<Tile> {
    match msg.kind {
        MsgKind::Req(r)
            if r.hops == 0
                && !r.via_home
                && r.forwarder.is_none()
                && msg.src == Node::L1(r.requestor) =>
        {
            Some(r.requestor)
        }
        _ => None,
    }
}

/// Payload-class messages (requests, data fills, memory responses,
/// hints) fail *safe* when lost or reordered: the worst case is a clean
/// wedge that the MSHR timeout or the watchdog detects and surfaces as
/// a typed error. Control notifications (invalidations, acks, owner /
/// provider bookkeeping) are excluded even in chaos mode — losing one
/// silently corrupts directory metadata, which models undetectable
/// state corruption outside this transport-layer fault model. They
/// still receive delays, duplicates and outage holds.
fn payload_class(kind: &MsgKind) -> bool {
    matches!(
        kind,
        MsgKind::Req(_) | MsgKind::Data(_) | MsgKind::MemData | MsgKind::Hint { .. }
    )
}

/// Retransmission state for one tile's open miss.
#[derive(Clone)]
struct RetryInfo {
    block: Block,
    msg: Msg,
    attempts: u32,
    generation: u64,
}

cmpsim_engine::impl_snap!(RetryInfo { block, msg, attempts, generation });

/// Driver-side fault state: the engine (plan + RNG + outage schedule),
/// the per-tile open-request registry feeding timeouts and
/// retransmissions, and the receiver-side duplicate filter. Exists only
/// when [`SystemConfig::fault_plan`] is set; with it `None` every hook
/// below is a single branch and the simulation is bit-identical to a
/// build without fault injection.
#[derive(Clone)]
struct FaultState {
    engine: FaultEngine,
    /// Per-tile open tracked request: block and its sequence number.
    open_reqs: FxHashMap<Tile, (Block, u64)>,
    /// Per-tile retransmission state for the open miss.
    retry: FxHashMap<Tile, RetryInfo>,
    /// Sequence numbers already delivered once. Entries live for the
    /// whole run: a retransmit can arrive after its miss completed, and
    /// forgetting the seq would let it reach the protocol as a spurious
    /// new request. One u64 per tracked miss is an acceptable bound.
    seen: FxHashSet<u64>,
    /// Per-tile miss generation counters (stale-timeout filter).
    generation: Vec<u64>,
    /// A completion arrived for a core with no outstanding access
    /// (possible only under chaos faults); latched here and surfaced as
    /// a typed protocol fault by the event loop.
    violation: Option<(Tile, Block)>,
}

impl FaultState {
    fn new(plan: FaultPlan, tiles: usize) -> Self {
        Self {
            engine: FaultEngine::new(plan, tiles),
            open_reqs: FxHashMap::default(),
            retry: FxHashMap::default(),
            seen: FxHashSet::default(),
            generation: vec![0; tiles],
            violation: None,
        }
    }

    /// The active plan and fired-fault counters, as embedded in stall
    /// reports and crash dumps.
    fn context(&self) -> FaultContext {
        FaultContext { plan: self.engine.plan().clone(), fired: *self.engine.stats() }
    }
}

cmpsim_engine::impl_snap!(FaultState {
    engine,
    open_reqs,
    retry,
    seen,
    generation,
    violation,
});

/// The cache-structure counters attribution charges per dispatch, in
/// [`EventCounts`] field order (the two network counters are charged
/// per message instead).
fn cache_counts(ps: &ProtoStats) -> [u64; 7] {
    [
        ps.l1_tag.get(),
        ps.l1_data_read.get() + ps.l1_data_write.get(),
        ps.l2_tag.get(),
        ps.l2_data_read.get() + ps.l2_data_write.get(),
        ps.dir_access.get(),
        ps.l1c_access.get(),
        ps.l2c_access.get(),
    ]
}

/// True when `block` is backed by a deduplicated (inter-VM shared)
/// page. Only consulted when attribution is on — a map lookup per
/// observed message, never on the timing path.
fn is_dedup_block(memory: &MachineMemory, block: Block) -> bool {
    matches!(memory.kind_of_block(block), Some(PageKind::Deduplicated))
}

#[derive(Clone)]
struct Core {
    stream: CoreStream,
    vm: usize,
    /// Translated reference waiting to issue (after its think gap, or a
    /// Blocked retry).
    pending: Option<(Block, bool)>,
    outstanding: bool,
    refs_done: u64,
    finished_at: Option<Cycle>,
}

/// One full-system simulation.
pub struct CmpSimulator {
    cfg: SystemConfig,
    proto: Box<dyn CoherenceProtocol>,
    mesh: Mesh,
    queue: EventQueue<Ev>,
    cores: Vec<Core>,
    memory: MachineMemory,
    benchmark: Benchmark,
    rng: SimRng,
    /// Point-to-point FIFO delivery floors (wormhole meshes preserve
    /// per-pair ordering; the protocols rely on it).
    fifo: FxHashMap<(Node, Node), Cycle>,
    /// Reusable dispatch context: one `Ctx` serves every event, so the
    /// hot path constructs no buffers (see [`Ctx::reset`]).
    ctx_pool: Ctx,
    /// Block filter from `CMPSIM_TRACE_BLOCK`, parsed once at build
    /// time (an env lookup per delivered message would dominate the
    /// event loop).
    trace_block: Option<u64>,
    /// Host wall-clock deadline (from `cfg.wall_deadline_ms`), armed at
    /// the start of each public run entry point. Host-side only: never
    /// snapshotted, never part of deterministic results.
    wall: Option<WallDeadline>,
    /// Memory controller availability.
    ctrl_free: Vec<Cycle>,
    /// Warm-up bookkeeping.
    warmed_up: bool,
    measure_start: Cycle,
    refs_at_reset: u64,
    events: u64,
    /// Cycle of the last retired reference (watchdog no-progress clock).
    last_progress: Cycle,
    /// Running sum of every core's `refs_done` (the warm-up check runs
    /// per event, so it must not rescan the cores).
    refs_total: u64,
    /// Per-message invariant checker (from `cfg.check_invariants`).
    checker: Option<StepChecker>,
    /// Coherence-transaction tracer (from `cfg.tracing`).
    tracer: Option<TxTracer>,
    /// Per-transaction critical-path and energy attribution (from
    /// `cfg.attribution`).
    attr: Option<TxAttribution>,
    /// Interval time-series sampler; created when the warm-up window
    /// ends (from `cfg.sample_interval`).
    sampler: Option<IntervalSampler>,
    /// Energy table for the sampler's cumulative dynamic-energy
    /// snapshots (built alongside the sampler).
    energy_model: Option<cmpsim_power::EnergyModel>,
    /// Fault-injection engine and recovery bookkeeping (from
    /// `cfg.fault_plan`; `None` keeps every fault hook inert).
    faults: Option<FaultState>,
    /// Per-tile L1 misses (spatial heatmap counter; zeroed with the
    /// stats at the end of warm-up).
    tile_misses: Vec<u64>,
    /// Per-tile `refs_done` at the warm-up reset (the baseline the
    /// spatial per-tile reference counts diff against).
    tile_refs_base: Vec<u64>,
}

impl CmpSimulator {
    /// Builds a simulator for one protocol/benchmark/config triple.
    pub fn new(kind: ProtocolKind, benchmark: Benchmark, cfg: &SystemConfig) -> Self {
        let tiles = cfg.tiles();
        assert_eq!(
            cfg.noc.cols * cfg.noc.rows,
            tiles,
            "NoC dimensions must match the chip"
        );
        let mut rng = SimRng::new(cfg.seed);
        let areas = &cfg.chip.areas;
        let cores = (0..tiles)
            .map(|t| {
                let vm = cfg.placement.vm_of_tile(areas, cfg.num_vms, t);
                let profile = benchmark.profile_for_vm(vm, cfg.num_vms);
                // Slot of this core within its VM (0..cores_per_vm).
                let core_in_vm = cfg
                    .placement
                    .tiles_of_vm(areas, cfg.num_vms, vm)
                    .iter()
                    .position(|&x| x == t)
                    .expect("tile in own VM") as u64;
                Core {
                    stream: CoreStream::new(profile, core_in_vm, rng.fork(t as u64)),
                    vm,
                    pending: None,
                    outstanding: false,
                    refs_done: 0,
                    finished_at: None,
                }
            })
            .collect::<Vec<Core>>();
        let vm_of: Vec<usize> = cores.iter().map(|c| c.vm).collect();
        Self {
            proto: build_protocol(kind, cfg.chip.clone()),
            mesh: Mesh::new(cfg.noc),
            queue: EventQueue::with_capacity(4 * tiles),
            cores,
            memory: MachineMemory::new(cfg.num_vms),
            benchmark,
            rng,
            fifo: FxHashMap::default(),
            ctx_pool: Ctx::default(),
            trace_block: cmpsim_engine::env::parsed_or_warn(
                cmpsim_engine::env::TRACE_BLOCK,
                "a block address (u64)",
            ),
            wall: None,
            ctrl_free: vec![0; cfg.mem_controllers],
            warmed_up: false,
            measure_start: 0,
            refs_at_reset: 0,
            events: 0,
            last_progress: 0,
            refs_total: 0,
            checker: cfg.check_invariants.then(StepChecker::new),
            tracer: cfg.tracing.then(|| TxTracer::new(tiles, cfg.trace_capacity)),
            attr: cfg.attribution.then(|| TxAttribution::with_vms(vm_of, cfg.num_vms)),
            sampler: None,
            energy_model: None,
            faults: cfg.fault_plan.clone().map(|p| FaultState::new(p, tiles)),
            tile_misses: vec![0; tiles],
            tile_refs_base: vec![0; tiles],
            cfg: cfg.clone(),
        }
    }

    /// Turns on the per-message invariant checker regardless of the
    /// configuration flag (used by `cmpsim-cli replay --check`).
    pub fn enable_invariant_checker(&mut self) {
        if self.checker.is_none() {
            self.checker = Some(StepChecker::new());
        }
    }

    fn flits(&self, kind: &MsgKind) -> u64 {
        if kind.carries_data() {
            self.cfg.noc.data_flits
        } else {
            self.cfg.noc.control_flits
        }
    }

    /// Snapshot of the cache-structure counters before a protocol
    /// dispatch. Paired with [`Self::attr_record_cache_delta`] around
    /// every `core_access` / `handle` call so each dispatch's energy
    /// events charge to the transaction that caused them. Callers skip
    /// both calls entirely when attribution is off.
    fn attr_cache_base(&self) -> [u64; 7] {
        cache_counts(self.proto.stats())
    }

    /// Charges the cache-counter delta since `base` to the transaction
    /// open on `block` (or the untracked bucket when none is).
    fn attr_record_cache_delta(&mut self, block: Block, base: [u64; 7]) {
        let cur = cache_counts(self.proto.stats());
        if let Some(a) = &mut self.attr {
            let delta = EventCounts {
                l1_tag: cur[0] - base[0],
                l1_data: cur[1] - base[1],
                l2_tag: cur[2] - base[2],
                l2_data: cur[3] - base[3],
                dir: cur[4] - base[4],
                l1c: cur[5] - base[5],
                l2c: cur[6] - base[6],
                routing: 0,
                flit_links: 0,
            };
            a.on_cache_events(block, delta);
        }
    }

    fn deliver(&mut self, at: Cycle, msg: Msg) {
        if self.faults.is_some() {
            return self.deliver_faulty(at, msg);
        }
        let floor = self.fifo.entry((msg.src, msg.dst)).or_insert(0);
        let at = at.max(*floor);
        *floor = at;
        self.queue.push(at, Ev::Deliver(msg, 0));
    }

    /// Fault-mode delivery: holds the message through any open router
    /// outage window its route crosses, then asks the engine for a
    /// per-delivery fault decision. Delays (and outage holds) raise the
    /// link's FIFO floor like any slow delivery; a reorder deliberately
    /// bypasses the floor; a duplicate enqueues two copies sharing one
    /// sequence number so the receiver-side filter masks the second.
    fn deliver_faulty(&mut self, at: Cycle, msg: Msg) {
        let fs = self.faults.as_mut().expect("fault mode");
        let mut at = at;
        let mut held = false;
        for o in fs.engine.outages() {
            if at >= o.start
                && at <= o.end
                && self.mesh.passes_through(msg.src.tile(), msg.dst.tile(), o.tile)
            {
                at = at.max(o.end + 1);
                held = true;
            }
        }
        if held {
            fs.engine.record_outage_hit();
        }
        // Sequence number: the tracked first hop of an open miss reuses
        // its registered seq (so retransmits collapse at the receiver).
        let seq = initial_req_of(&msg)
            .and_then(|t| fs.open_reqs.get(&t).copied())
            .and_then(|(b, s)| (b == msg.block).then_some(s))
            .unwrap_or(0);
        let payload = payload_class(&msg.kind);
        // Recoverable drops need a retransmission path (tracked initial
        // request) or no architectural effect (hint); chaos mode widens
        // to any payload-class message, whose loss wedges detectably.
        let droppable =
            seq != 0 || matches!(msg.kind, MsgKind::Hint { .. }) || (fs.engine.plan().chaos && payload);
        match fs.engine.decide(droppable, payload) {
            FaultDecision::Drop => {}
            FaultDecision::Reorder => {
                self.queue.push(at, Ev::Deliver(msg, seq));
            }
            FaultDecision::Duplicate(extra) => {
                let seq = if seq == 0 { fs.engine.alloc_seq() } else { seq };
                let floor = self.fifo.entry((msg.src, msg.dst)).or_insert(0);
                let at = at.max(*floor);
                *floor = at;
                self.queue.push(at, Ev::Deliver(msg, seq));
                self.queue.push(at + extra, Ev::Deliver(msg, seq));
            }
            FaultDecision::Delay(extra) => {
                let floor = self.fifo.entry((msg.src, msg.dst)).or_insert(0);
                let at = (at + extra).max(*floor);
                *floor = at;
                self.queue.push(at, Ev::Deliver(msg, seq));
            }
            FaultDecision::None => {
                let floor = self.fifo.entry((msg.src, msg.dst)).or_insert(0);
                let at = at.max(*floor);
                *floor = at;
                self.queue.push(at, Ev::Deliver(msg, seq));
            }
        }
    }

    /// Routes one Ctx worth of protocol output through the chip,
    /// draining the (pooled) context's buffers in a fixed order:
    /// sends, bcasts, replays, mem_ops, completions.
    fn apply_ctx(&mut self, now: Cycle, ctx: &mut Ctx) {
        for out in std::mem::take(&mut ctx.sends) {
            let flits = self.flits(&out.msg.kind);
            let d = self.mesh.send(now + out.delay, out.msg.src.tile(), out.msg.dst.tile(), flits);
            if let Some(tr) = &mut self.tracer {
                tr.on_message(
                    now + out.delay,
                    d.arrival,
                    out.msg.kind.label(),
                    "msg",
                    out.msg.block,
                    out.msg.src.tile(),
                    out.msg.dst.tile(),
                    d.links,
                );
            }
            if let Some(a) = &mut self.attr {
                a.on_message(
                    now + out.delay,
                    d.arrival,
                    classify(&out.msg.kind, out.msg.src),
                    out.msg.block,
                    out.msg.src,
                    out.msg.dst,
                    d.links,
                    flits,
                    is_dedup_block(&self.memory, out.msg.block),
                );
            }
            self.deliver(d.arrival, out.msg);
        }
        for b in ctx.bcasts.drain(..) {
            let flits = if b.kind.carries_data() {
                self.cfg.noc.data_flits
            } else {
                self.cfg.noc.control_flits
            };
            let arrivals = self.mesh.broadcast(now + b.delay, b.src.tile(), flits);
            let end = arrivals.iter().map(|&(_, at)| at).max().unwrap_or(now + b.delay);
            // The spanning-tree broadcast charges tiles - 1 links.
            let bcast_links = (self.cfg.tiles() - 1) as u64;
            if let Some(tr) = &mut self.tracer {
                let src = b.src.tile();
                tr.on_message(
                    now + b.delay,
                    end,
                    b.kind.label(),
                    "bcast",
                    b.block,
                    src,
                    src,
                    bcast_links,
                );
            }
            if let Some(a) = &mut self.attr {
                a.on_message(
                    now + b.delay,
                    end,
                    classify(&b.kind, b.src),
                    b.block,
                    b.src,
                    b.src,
                    bcast_links,
                    flits,
                    is_dedup_block(&self.memory, b.block),
                );
            }
            for (t, at) in arrivals {
                if Some(t) == b.exclude {
                    continue;
                }
                self.deliver(at, Msg { kind: b.kind, block: b.block, src: b.src, dst: Node::L1(t) });
            }
            // The source's own L1 may also be a destination (e.g. the
            // home bank broadcasting to its co-located L1).
            let src_tile = b.src.tile();
            if Some(src_tile) != b.exclude && matches!(b.src, Node::L2(_)) {
                self.deliver(
                    now + b.delay + 1,
                    Msg { kind: b.kind, block: b.block, src: b.src, dst: Node::L1(src_tile) },
                );
            }
        }
        for m in ctx.replays.drain(..) {
            // Replays are the protocol re-enqueueing a message it chose
            // to defer: they never re-cross the network, so they take
            // no faults and carry no sequence number (a replayed
            // message must not be mistaken for a duplicate).
            self.queue.push(now, Ev::Deliver(m, 0));
        }
        for op in ctx.mem_ops.drain(..) {
            let ctrl = self.cfg.mem_ctrl_of(op.block);
            let ctrl_tile = self.cfg.mem_ctrl_tile(ctrl);
            let flits =
                if op.is_write { self.cfg.noc.data_flits } else { self.cfg.noc.control_flits };
            let d = self.mesh.send(now + op.delay, op.home, ctrl_tile, flits);
            if let Some(tr) = &mut self.tracer {
                let name = if op.is_write { "MemWrite" } else { "MemRead" };
                tr.on_message(
                    now + op.delay,
                    d.arrival,
                    name,
                    "mem",
                    op.block,
                    op.home,
                    ctrl_tile,
                    d.links,
                );
            }
            if let Some(a) = &mut self.attr {
                let class = if op.is_write { MsgClass::MemWrite } else { MsgClass::MemRead };
                a.on_message(
                    now + op.delay,
                    d.arrival,
                    class,
                    op.block,
                    Node::L2(op.home),
                    Node::L2(ctrl_tile),
                    d.links,
                    flits,
                    is_dedup_block(&self.memory, op.block),
                );
            }
            let start = d.arrival.max(self.ctrl_free[ctrl]);
            self.ctrl_free[ctrl] = start + self.cfg.mem_service;
            if !op.is_write {
                let ready = start + self.cfg.mem_latency + self.rng.jitter(self.cfg.mem_jitter);
                let back =
                    self.mesh.send(ready, ctrl_tile, op.home, self.cfg.noc.data_flits);
                if let Some(tr) = &mut self.tracer {
                    tr.on_message(
                        ready,
                        back.arrival,
                        "MemData",
                        "mem",
                        op.block,
                        ctrl_tile,
                        op.home,
                        back.links,
                    );
                }
                if let Some(a) = &mut self.attr {
                    a.on_message(
                        ready,
                        back.arrival,
                        MsgClass::MemData,
                        op.block,
                        Node::L2(ctrl_tile),
                        Node::L2(op.home),
                        back.links,
                        self.cfg.noc.data_flits,
                        is_dedup_block(&self.memory, op.block),
                    );
                }
                self.deliver(
                    back.arrival,
                    Msg {
                        kind: MsgKind::MemData,
                        block: op.block,
                        src: Node::L2(op.home),
                        dst: Node::L2(op.home),
                    },
                );
            }
        }
        for c in std::mem::take(&mut ctx.completions) {
            if let Some(fs) = &mut self.faults {
                // The miss is closed: timeouts armed for it go stale
                // and its retransmission state is dropped (the seen-set
                // entry stays — see `FaultState::seen`).
                fs.open_reqs.remove(&c.tile);
                fs.retry.remove(&c.tile);
                if !self.cores[c.tile].outstanding {
                    // Chaos faults can desynchronize the protocol's
                    // notion of an outstanding miss; latch it as a
                    // typed violation instead of corrupting the core
                    // bookkeeping (the event loop aborts on it).
                    fs.violation.get_or_insert((c.tile, c.block));
                    continue;
                }
            }
            if let Some(tr) = &mut self.tracer {
                tr.on_completion(now, c.tile);
            }
            if let Some(a) = &mut self.attr {
                a.on_completion(now, c.tile);
            }
            let core = &mut self.cores[c.tile];
            debug_assert!(core.outstanding, "completion without outstanding access");
            core.outstanding = false;
            core.refs_done += 1;
            self.refs_total += 1;
            self.last_progress = now;
            self.queue.push(now + c.delay + 1, Ev::CoreResume(c.tile));
        }
    }

    fn core_resume(&mut self, now: Cycle, tile: Tile) -> Result<(), SimError> {
        if self.cores[tile].outstanding {
            return Ok(());
        }
        if self.cores[tile].refs_done >= self.cfg.refs_per_core {
            if self.cores[tile].finished_at.is_none() {
                self.cores[tile].finished_at = Some(now);
            }
            return Ok(());
        }
        // Generate (and translate) the next reference if none is pending.
        if self.cores[tile].pending.is_none() {
            let vm = self.cores[tile].vm;
            let r = self.cores[tile].stream.next_ref();
            let lp = LogicalPage { vm, region: r.region, index: r.page_index };
            let block = self.memory.translate(lp, r.block_in_page, r.is_write);
            self.cores[tile].pending = Some((block, r.is_write));
            if r.gap > 0 {
                // Non-memory work before the access issues.
                self.queue.push(now + r.gap, Ev::CoreResume(tile));
                return Ok(());
            }
        }
        let (block, write) = self.cores[tile].pending.expect("pending set above");
        if let Some(chk) = &mut self.checker {
            chk.record_access(now, tile, block, write);
        }
        let attr_on = self.attr.is_some();
        let mut ctx = std::mem::take(&mut self.ctx_pool);
        ctx.reset(now);
        let attr_base = if attr_on { self.attr_cache_base() } else { [0; 7] };
        let outcome = match self.proto.core_access(&mut ctx, tile, block, write) {
            Ok(o) => o,
            Err(e) => return Err(self.protocol_fault(now, e)),
        };
        match outcome {
            AccessOutcome::Hit { latency } => {
                self.cores[tile].pending = None;
                self.cores[tile].refs_done += 1;
                self.refs_total += 1;
                self.last_progress = now;
                if attr_on {
                    self.attr_record_cache_delta(block, attr_base);
                }
                self.apply_ctx(now, &mut ctx);
                self.queue.push(now + latency, Ev::CoreResume(tile));
            }
            AccessOutcome::Miss => {
                self.cores[tile].pending = None;
                self.cores[tile].outstanding = true;
                self.tile_misses[tile] += 1;
                // Open the transaction before routing the request so
                // its own messages (and this dispatch's cache probes)
                // attribute to it.
                if let Some(tr) = &mut self.tracer {
                    tr.on_issue(now, tile, block, write);
                }
                if let Some(a) = &mut self.attr {
                    a.on_issue(now, tile, block, write, is_dedup_block(&self.memory, block));
                }
                if attr_on {
                    self.attr_record_cache_delta(block, attr_base);
                }
                if self.faults.is_some() {
                    self.fault_open_miss(now, tile, block, &ctx);
                }
                self.apply_ctx(now, &mut ctx);
            }
            AccessOutcome::Blocked { reason } => {
                if attr_on {
                    self.attr_record_cache_delta(block, attr_base);
                }
                // The 7-cycle retry below is a pre-issue wait: it is
                // accounted chip-wide by reason, outside the per-miss
                // reconciliation window (the miss has not opened yet).
                if let Some(a) = &mut self.attr {
                    a.on_blocked(reason, 7, tile);
                }
                self.apply_ctx(now, &mut ctx);
                self.queue.push(now + 7, Ev::CoreResume(tile));
            }
        }
        self.ctx_pool = ctx;
        Ok(())
    }

    /// Registers a newly opened miss with the recovery layer: stashes
    /// the first-hop request for retransmission, allocates its
    /// transport-layer sequence number, and arms the MSHR timeout.
    /// Misses that send no first-hop request (served without leaving
    /// the tile) need no recovery and are skipped.
    fn fault_open_miss(&mut self, now: Cycle, tile: Tile, block: Block, ctx: &Ctx) {
        let Some(first_hop) = ctx
            .sends
            .iter()
            .map(|o| o.msg)
            .find(|m| m.block == block && initial_req_of(m) == Some(tile))
        else {
            return;
        };
        let fs = self.faults.as_mut().expect("fault mode");
        let seq = fs.engine.alloc_seq();
        fs.generation[tile] += 1;
        let generation = fs.generation[tile];
        fs.open_reqs.insert(tile, (block, seq));
        // The retransmission path re-derives `seq` from `open_reqs`, so
        // retransmits share the original's sequence number and are
        // masked by the receiver-side filter whenever it arrived.
        fs.retry.insert(tile, RetryInfo { block, msg: first_hop, attempts: 0, generation });
        let timeout = fs.engine.plan().timeout;
        self.queue.push(now + timeout, Ev::ReqTimeout { tile, generation });
    }

    /// Handles an MSHR timeout. Stale timeouts (the miss completed, or
    /// a newer miss bumped the tile's generation) are no-ops. A live
    /// one retransmits the stashed first-hop request — suppressed at
    /// the receiver if the original actually arrived — and re-arms with
    /// capped exponential backoff; past the retry cap it aborts the run
    /// with a typed [`SimError::Fault`].
    fn req_timeout(&mut self, now: Cycle, tile: Tile, generation: u64) -> Result<(), SimError> {
        let Some(fs) = self.faults.as_mut() else { return Ok(()) };
        let base_timeout = fs.engine.plan().timeout;
        let retry_cap = fs.engine.plan().retry_cap;
        let Some(info) = fs.retry.get_mut(&tile) else { return Ok(()) };
        if info.generation != generation {
            return Ok(());
        }
        info.attempts += 1;
        let (attempts, msg, block) = (info.attempts, info.msg, info.block);
        self.proto.stats_mut().timeouts.inc();
        if attempts > retry_cap {
            return Err(self.fault_abort(now, tile, block, attempts - 1));
        }
        self.proto.stats_mut().retries.inc();
        // The retransmission is charged as regular network traffic.
        let flits = self.flits(&msg.kind);
        let d = self.mesh.send(now, msg.src.tile(), msg.dst.tile(), flits);
        self.deliver(d.arrival, msg);
        let backoff = base_timeout << attempts.min(5);
        self.queue.push(now + backoff, Ev::ReqTimeout { tile, generation });
        Ok(())
    }

    /// Builds the typed error for a request that exhausted its retry
    /// budget (an unrecoverable injected fault).
    fn fault_abort(&self, now: Cycle, tile: Tile, block: Block, attempts: u32) -> SimError {
        let fs = self.faults.as_ref().expect("fault mode");
        SimError::Fault(Box::new(FaultAbort {
            cycle: now,
            events: self.events,
            tile,
            block,
            attempts,
            fault: fs.context(),
            pending_summary: self.proto.pending_summary(),
            artifact: None,
        }))
    }

    /// Timing-invariant digest of the architectural end state, keyed on
    /// *logical* coordinates: for every established page translation
    /// `(vm, region, index)` and block offset, the block's final
    /// committed version (the protocol's write-serialization authority)
    /// is folded into a splitmix64-chained digest. Physical page
    /// numbers are first-touch-order artifacts and stay out of it, so
    /// two runs whose injected faults were all recovered — identical
    /// reference streams, possibly different timing — digest equal.
    fn arch_state(&self) -> ArchState {
        fn mix(h: u64, w: u64) -> u64 {
            let mut s = h ^ w.wrapping_mul(0x9E37_79B9_7F4A_7C15);
            splitmix64(&mut s)
        }
        let snap = self.proto.snapshot();
        let mut digest: u64 = 0x243F_6A88_85A3_08D3;
        let mut versioned_blocks = 0u64;
        for (vm, region, index, ppn) in self.memory.mappings() {
            for off in 0..BLOCKS_PER_PAGE {
                let block = ppn * BLOCKS_PER_PAGE + off;
                let version = snap.authority.get(&block).copied().unwrap_or(0);
                if version == 0 {
                    continue;
                }
                versioned_blocks += 1;
                digest = mix(mix(mix(mix(mix(digest, vm as u64), region as u64), index), off), version);
            }
        }
        ArchState {
            version_digest: digest,
            versioned_blocks,
            cow_faults: self.memory.cow_faults,
            logical_pages: self.memory.logical_pages(),
            physical_pages: self.memory.physical_pages(),
            refs_done: self.refs_total,
        }
    }

    /// Builds the structured dump for a watchdog abort.
    fn stall_error(&self, now: Cycle, reason: StallReason) -> SimError {
        let mut in_flight: Vec<InFlightMsg> = self
            .queue
            .iter()
            .filter_map(|(due, ev)| match ev {
                Ev::Deliver(msg, _) => Some(InFlightMsg { due, msg: *msg }),
                Ev::CoreResume(_) | Ev::ReqTimeout { .. } => None,
            })
            .collect();
        in_flight.sort_by_key(|m| (m.due, m.msg.block));
        let stalled_cores: Vec<CoreStallState> = self
            .cores
            .iter()
            .enumerate()
            .filter(|(_, c)| c.refs_done < self.cfg.refs_per_core)
            .map(|(tile, c)| CoreStallState {
                tile,
                vm: c.vm,
                refs_done: c.refs_done,
                refs_target: self.cfg.refs_per_core,
                outstanding: c.outstanding,
                pending: c.pending,
            })
            .collect();
        // The blocks with the most in-flight traffic, with every
        // controller's view of them — the usual deadlock suspects.
        let mut traffic: BTreeMap<Block, usize> = BTreeMap::new();
        for m in &in_flight {
            *traffic.entry(m.msg.block).or_default() += 1;
        }
        let mut ranked: Vec<(Block, usize)> = traffic.into_iter().collect();
        ranked.sort_by_key(|&(block, n)| (std::cmp::Reverse(n), block));
        let snap = self.proto.snapshot();
        let hot_blocks = ranked
            .into_iter()
            .take(4)
            .map(|(block, queued)| {
                let mut views = Vec::new();
                for (t, l1) in snap.l1.iter().enumerate() {
                    if let Some(c) = l1.get(&block) {
                        views.push(format!("L1 tile {t}: {:?} (version {})", c.state, c.version));
                    }
                }
                if let Some(v) = snap.l2.get(&block) {
                    views.push(format!(
                        "home L2: has_data={}, dirty={}, owner_in_l1={:?}, version={}",
                        v.has_data, v.dirty, v.owner_in_l1, v.version
                    ));
                }
                HotBlock { block, queued, views }
            })
            .collect();
        SimError::Stalled(Box::new(StallReport {
            reason,
            cycle: now,
            events: self.events,
            stalled_cores,
            in_flight,
            pending_summary: self.proto.pending_summary(),
            hot_blocks,
            trace_tail: self.tracer.as_ref().map(|t| t.tail_lines(16)).unwrap_or_default(),
            phase_lines: self.attr.as_ref().map(|a| a.stall_lines(now, 8)).unwrap_or_default(),
            fault: self.faults.as_ref().map(FaultState::context),
            artifact: None,
        }))
    }

    /// Builds the structured dump for a wall-clock deadline abort.
    fn timeout_error(&self, now: Cycle) -> SimError {
        let w = self.wall.as_ref().expect("timeout fired without an armed deadline");
        SimError::Timeout(Box::new(TimeoutReport {
            budget_ms: w.budget_ms(),
            elapsed_ms: w.elapsed_ms(),
            cycle: now,
            events: self.events,
            refs_done: self.refs_total,
            fault: self.faults.as_ref().map(FaultState::context),
            artifact: None,
        }))
    }

    fn protocol_fault(&self, now: Cycle, error: ProtoError) -> SimError {
        SimError::Protocol(Box::new(ProtocolFault {
            cycle: now,
            events: self.events,
            error,
            pending_summary: self.proto.pending_summary(),
            artifact: None,
        }))
    }

    /// Runs the per-message invariant checks after `msg` was handled.
    fn check_invariants(&mut self, now: Cycle, msg: &Msg) -> Result<(), SimError> {
        if let Some(chk) = &mut self.checker {
            chk.record_message(now, msg);
        } else {
            return Ok(());
        }
        let snap = self.proto.snapshot();
        // True quiescence needs an empty event queue too: fire-and-forget
        // traffic (hints, acks, writebacks) is not tracked by the
        // protocol's pending state.
        let quiescent = self.queue.is_empty() && self.proto.quiescent();
        let chk = self.checker.as_ref().expect("checked above");
        if let Err(violations) = chk.check_step(msg, &snap, quiescent) {
            return Err(SimError::InvariantViolation(Box::new(InvariantReport {
                cycle: now,
                events: self.events,
                trigger: format!("{:?} -> {:?}: {:?}", msg.src, msg.dst, msg.kind),
                block: msg.block,
                violations,
                history: chk.history_for(msg.block),
                artifact: None,
            })));
        }
        Ok(())
    }

    fn maybe_finish_warmup(&mut self, now: Cycle) {
        if self.warmed_up {
            return;
        }
        let total = self.refs_total;
        let target = (self.cfg.warmup_frac
            * (self.cfg.refs_per_core * self.cores.len() as u64) as f64) as u64;
        if total >= target {
            self.warmed_up = true;
            self.measure_start = now;
            self.refs_at_reset = total;
            self.proto.reset_stats();
            self.mesh.reset_stats();
            // The tracer's hop accounting mirrors the NoC counters, so
            // it resets with them (open transactions are kept).
            if let Some(tr) = &mut self.tracer {
                tr.reset();
            }
            // Attribution likewise: aggregates zero with the stats, and
            // open transactions keep their recorded spans so misses
            // straddling the boundary still reconcile against the
            // protocol's full-latency miss record.
            if let Some(a) = &mut self.attr {
                a.reset();
            }
            // Spatial counters cover the measurement window only.
            self.tile_misses.iter_mut().for_each(|m| *m = 0);
            for (base, c) in self.tile_refs_base.iter_mut().zip(&self.cores) {
                *base = c.refs_done;
            }
            self.build_sampler(now);
        }
    }

    /// Builds the interval sampler and its energy model at the warm-up
    /// boundary (`now` = the cycle the window closed). Also called when
    /// a snapshot is restored or forked: the snapshot is captured at
    /// exactly this boundary — stats freshly reset, zero samples taken
    /// — so rebuilding here reproduces the cold-run sampler state
    /// bit-for-bit, and a sampling run can share snapshots with a
    /// non-sampling one.
    fn build_sampler(&mut self, now: Cycle) {
        if let Some(interval) = self.cfg.sample_interval {
            let tiles = self.cfg.tiles() as u64;
            let areas = self.cfg.chip.num_areas() as u64;
            let leak = cmpsim_power::leakage_per_tile(self.proto.kind(), tiles, areas);
            self.energy_model =
                Some(cmpsim_power::EnergyModel::new(self.proto.kind(), tiles, areas));
            // The proto/NoC stats were just reset, but the per-core
            // ref counters were not — snapshot after the resets so
            // interval deltas cover the measurement window only.
            let base = self.cum_snapshot();
            self.sampler = Some(IntervalSampler::new(
                interval,
                now,
                base,
                leak.total_mw,
                tiles,
                self.mesh.directed_links(),
            ));
        }
    }

    /// Cumulative counter snapshot the interval sampler diffs against.
    fn cum_snapshot(&self) -> CumSnapshot {
        let ps = self.proto.stats();
        let ns = self.mesh.stats();
        let model = self.energy_model.as_ref().expect("built with the sampler");
        CumSnapshot {
            messages: ns.messages.get(),
            hops: ns.routing_events.get(),
            flit_links: ns.flit_link_traversals.get(),
            contention: ns.contention_cycles.get(),
            link_busy: self.mesh.link_busy().to_vec(),
            link_stall: self.mesh.link_contention().to_vec(),
            tile_misses: self.tile_misses.clone(),
            pred_lookups: ps.pred_lookups.get(),
            pred_hits: ps.pred_hits.get(),
            home_lookups: ps.home_lookups.get(),
            home_hits: ps.home_hits.get(),
            refs: self.cores.iter().map(|c| c.refs_done).sum(),
            cache_nj: model.cache_energy(ps).total(),
            net_nj: model.network_energy(ns).total(),
            phase: self.attr.as_ref().map(|a| a.phase_totals().0).unwrap_or_default(),
            faults_injected: self.faults.as_ref().map(|f| f.engine.stats().total()).unwrap_or(0),
            retries: ps.retries.get(),
            timeouts: ps.timeouts.get(),
        }
    }

    /// Takes any interval samples due at `now`.
    fn maybe_sample(&mut self, now: Cycle) {
        let due = match &self.sampler {
            Some(s) => s.due(now),
            None => return,
        };
        if !due {
            return;
        }
        let cum = self.cum_snapshot();
        let occ = self.proto.occupancy();
        if let Some(s) = &mut self.sampler {
            s.sample(now, &cum, &occ);
        }
    }

    /// (Re-)arms the host wall-clock deadline from the configuration.
    /// Called at each public run entry point so a forked or restored
    /// simulator gets a fresh budget, not the parent's leftovers.
    fn arm_deadline(&mut self) {
        self.wall = self.cfg.wall_deadline_ms.map(WallDeadline::new);
    }

    /// Seeds the initial per-tile core wakeups of a fresh run.
    fn seed_initial_events(&mut self) {
        for t in 0..self.cores.len() {
            self.queue.push(0, Ev::CoreResume(t));
        }
    }

    /// Drives the event loop until the queue drains, or — with
    /// `stop_at_warm` — until the warm-up window closes (the snapshot
    /// boundary). The per-event body is identical either way, so a run
    /// split at the boundary is bit-for-bit the same as an
    /// uninterrupted one.
    ///
    /// The loop is watched for forward progress: exceeding the
    /// [`SystemConfig::event_budget`], going a full `stall_window`
    /// without any core retiring a reference, or draining the queue
    /// with unfinished cores all abort into [`SimError::Stalled`] with
    /// a structured dump instead of spinning or panicking.
    fn run_phase(&mut self, stop_at_warm: bool) -> Result<PhaseExit, SimError> {
        let budget = self.cfg.event_budget();
        let stall_window = self.cfg.stall_window;
        while let Some((now, ev)) = self.queue.pop() {
            self.events += 1;
            if self.events > budget {
                return Err(self.stall_error(now, StallReason::EventBudget { budget }));
            }
            if now.saturating_sub(self.last_progress) > stall_window {
                return Err(self.stall_error(
                    now,
                    StallReason::NoProgress {
                        window: stall_window,
                        last_progress: self.last_progress,
                    },
                ));
            }
            // Host wall-clock deadline, layered on the simulated-time
            // watchdog above. The poll is a counter+mask in the common
            // case; the host clock is read once per 4096 events.
            if self.wall.as_mut().is_some_and(|w| w.poll()) {
                return Err(self.timeout_error(now));
            }
            match ev {
                Ev::CoreResume(tile) => self.core_resume(now, tile)?,
                Ev::ReqTimeout { tile, generation } => self.req_timeout(now, tile, generation)?,
                Ev::Deliver(msg, seq) => {
                    // Idempotent receive: a tracked sequence number that
                    // was already delivered (injected duplicate, or a
                    // retransmit whose original arrived) is absorbed
                    // here, before the protocol can observe it.
                    let duplicate = seq != 0
                        && self.faults.as_mut().is_some_and(|fs| !fs.seen.insert(seq));
                    if duplicate {
                        self.proto.stats_mut().dedup_drops.inc();
                        self.maybe_finish_warmup(now);
                        self.maybe_sample(now);
                        continue;
                    }
                    if self.trace_block == Some(msg.block) {
                        cmpsim_engine::debug_log::trace(now, format_args!("{msg:?}"));
                    }
                    let attr_on = self.attr.is_some();
                    let mut ctx = std::mem::take(&mut self.ctx_pool);
                    ctx.reset(now);
                    let attr_base = if attr_on { self.attr_cache_base() } else { [0; 7] };
                    if let Err(e) = self.proto.handle(&mut ctx, msg) {
                        return Err(self.protocol_fault(now, e));
                    }
                    // Charge this dispatch's cache events before the
                    // Ctx is applied (which may close the transaction).
                    if attr_on {
                        self.attr_record_cache_delta(msg.block, attr_base);
                    }
                    self.apply_ctx(now, &mut ctx);
                    self.ctx_pool = ctx;
                    if let Some((tile, block)) =
                        self.faults.as_mut().and_then(|fs| fs.violation.take())
                    {
                        let e = ProtoError::new(
                            self.proto.kind(),
                            Node::L1(tile),
                            block,
                            "completion without outstanding access (under fault injection)",
                        );
                        return Err(self.protocol_fault(now, e));
                    }
                    self.check_invariants(now, &msg)?;
                }
            }
            self.maybe_finish_warmup(now);
            self.maybe_sample(now);
            if stop_at_warm && self.warmed_up {
                return Ok(PhaseExit::Warmed);
            }
        }
        Ok(PhaseExit::Drained)
    }

    /// Runs to completion and returns the measured results.
    ///
    /// Equivalent to [`Self::warm_up`] followed by [`Self::resume`],
    /// with the two phases reported as separate `warmup` / `measure`
    /// spans in the host profile.
    pub fn run(mut self) -> Result<RunResult, SimError> {
        let mut prof = HostProfiler::new();
        self.arm_deadline();
        self.seed_initial_events();
        let t = std::time::Instant::now();
        let exit = self.run_phase(true);
        prof.record("warmup", t.elapsed().as_nanos() as u64);
        exit?;
        self.run_measure(prof)
    }

    /// Runs a fresh simulator up to the warm-up boundary — the snapshot
    /// point. Returns `true` when the boundary was reached, `false`
    /// when the queue drained first (a run whose warm-up window covers
    /// every reference). Call at most once, on a newly built simulator;
    /// follow with [`Self::save_snapshot`], [`Self::fork`], or
    /// [`Self::resume`].
    pub fn warm_up(&mut self) -> Result<bool, SimError> {
        self.arm_deadline();
        self.seed_initial_events();
        Ok(matches!(self.run_phase(true)?, PhaseExit::Warmed))
    }

    /// Completes a simulation from its current state: a warmed
    /// simulator ([`Self::warm_up`]), a restored snapshot
    /// ([`Self::restore_snapshot`]), or a fork ([`Self::fork`]).
    pub fn resume(mut self) -> Result<RunResult, SimError> {
        self.arm_deadline();
        self.run_measure(HostProfiler::new())
    }

    /// Measurement phase + finalization, with the loop reported as the
    /// `measure` host-profile span.
    fn run_measure(mut self, mut prof: HostProfiler) -> Result<RunResult, SimError> {
        let t = std::time::Instant::now();
        let exit = self.run_phase(false);
        prof.record("measure", t.elapsed().as_nanos() as u64);
        exit?;
        self.finalize(prof)
    }

    /// Collects the measured results after the event queue drained.
    fn finalize(mut self, mut prof: HostProfiler) -> Result<RunResult, SimError> {
        let tiles = self.cores.len();
        // The queue drained; anything left unfinished means a message or
        // wakeup was lost (no event remains that could ever revive it).
        let now = self.queue.now();
        let unfinished = self.cores.iter().any(|c| c.refs_done < self.cfg.refs_per_core);
        if unfinished || !self.proto.quiescent() {
            return Err(self.stall_error(now, StallReason::IncompleteDrain));
        }

        let finalize_start = std::time::Instant::now();
        let last_finish =
            self.cores.iter().map(|c| c.finished_at.unwrap_or(0)).max().unwrap_or(0);
        let avg_finish = self.cores.iter().map(|c| c.finished_at.unwrap_or(0) as f64).sum::<f64>()
            / tiles as f64;
        let total_refs: u64 = self.cores.iter().map(|c| c.refs_done).sum();
        // Per-VM mean completion time (the paper's ExecTime metric).
        let mut vm_sum = vec![0.0f64; self.cfg.num_vms];
        let mut vm_n = vec![0u64; self.cfg.num_vms];
        for c in &self.cores {
            vm_sum[c.vm] += c.finished_at.unwrap_or(0) as f64 - self.measure_start as f64;
            vm_n[c.vm] += 1;
        }
        let vm_finish: Vec<f64> =
            vm_sum.iter().zip(&vm_n).map(|(s, &n)| s / n.max(1) as f64).collect();
        // Close out the observability layers before the stats are moved.
        let timeseries = self.sampler.take().map(|s| {
            let cum = self.cum_snapshot();
            let occ = self.proto.occupancy();
            s.finish(now, &cum, &occ)
        });
        let trace = self.tracer.take().map(TxTracer::finish);
        let mut result = RunResult::collect(
            self.proto.kind(),
            self.benchmark,
            self.cfg.placement,
            self.cfg.tiles() as u64,
            self.cfg.chip.num_areas() as u64,
            last_finish.saturating_sub(self.measure_start).max(1),
            total_refs - self.refs_at_reset,
            avg_finish.max(1.0) - self.measure_start as f64,
            vm_finish,
            self.proto.stats(),
            self.mesh.stats(),
            self.memory.dedup_savings(),
        );
        result.timeseries = timeseries;
        result.trace = trace;
        result.breakdown = self.attr.take().map(TxAttribution::finish);
        result.spatial = Some(SpatialLog {
            rows: self.cfg.noc.rows as u64,
            cols: self.cfg.noc.cols as u64,
            link_flits: self.mesh.link_busy().to_vec(),
            link_contention: self.mesh.link_contention().to_vec(),
            tile_misses: self.tile_misses.clone(),
            tile_refs: self
                .cores
                .iter()
                .zip(&self.tile_refs_base)
                .map(|(c, &base)| c.refs_done - base)
                .collect(),
            vm_of: self.cores.iter().map(|c| c.vm).collect(),
        });
        result.arch = Some(self.arch_state());
        result.faults = self.faults.as_ref().map(FaultState::context);
        result.manifest =
            Some(crate::manifest::RunManifest::new(result.protocol, self.benchmark, &self.cfg));
        prof.record("finalize", finalize_start.elapsed().as_nanos() as u64);
        result.host = prof.finish(self.events, result.cycles);
        Ok(result)
    }

    /// Stable wire tag for the protocol, embedded in snapshot payloads
    /// so an image decoded under the wrong protocol fails closed.
    fn proto_tag(kind: ProtocolKind) -> u8 {
        match kind {
            ProtocolKind::Directory => 0,
            ProtocolKind::DiCo => 1,
            ProtocolKind::DiCoProviders => 2,
            ProtocolKind::DiCoArin => 3,
        }
    }

    /// Serialises the complete machine state into a versioned snapshot
    /// image: protocol (caches, MSHRs, directory and every in-flight
    /// transaction), NoC link state, the calendar event queue, core and
    /// workload cursors, hypervisor memory, RNG streams, fault-plan
    /// cursors, and the warm-up bookkeeping. `key` must come from
    /// [`snapshot::snapshot_key`] for the same (protocol, benchmark,
    /// config) triple — restore validates it.
    ///
    /// Only valid on observer-free simulators (the [`snapshot_eligible`]
    /// precondition): the tracer, invariant checker and attribution
    /// accumulate pre-warm-up history that is deliberately not part of
    /// the image.
    pub fn save_snapshot(&self, key: u64) -> Vec<u8> {
        debug_assert!(
            self.checker.is_none() && self.tracer.is_none() && self.attr.is_none(),
            "snapshots are only taken from observer-free simulators"
        );
        let mut w = SnapWriter::with_capacity(1 << 16);
        w.u8(Self::proto_tag(self.proto.kind()));
        self.proto.save_state(&mut w);
        self.mesh.save(&mut w);
        w.u64(self.queue.now());
        self.queue.snapshot_events().save(&mut w);
        w.len_prefix(self.cores.len());
        for c in &self.cores {
            // The VM leads its core record: decoding needs it to pick
            // the workload profile the stream cursor belongs to.
            c.vm.save(&mut w);
            c.stream.snap_save(&mut w);
            c.pending.save(&mut w);
            c.outstanding.save(&mut w);
            c.refs_done.save(&mut w);
            c.finished_at.save(&mut w);
        }
        self.memory.save(&mut w);
        self.rng.save(&mut w);
        self.fifo.save(&mut w);
        self.ctrl_free.save(&mut w);
        self.warmed_up.save(&mut w);
        self.measure_start.save(&mut w);
        self.refs_at_reset.save(&mut w);
        self.events.save(&mut w);
        self.last_progress.save(&mut w);
        self.refs_total.save(&mut w);
        self.faults.save(&mut w);
        self.tile_misses.save(&mut w);
        self.tile_refs_base.save(&mut w);
        let payload = w.into_bytes();
        // Header + payload + trailing payload digest: flipping any
        // payload byte is detected before decoding starts.
        let mut out = SnapWriter::with_capacity(payload.len() + 32);
        snapshot::write_header(&mut out, key);
        out.raw(&payload);
        out.u64(crate::manifest::digest(&payload));
        out.into_bytes()
    }

    /// Rebuilds a simulator from a snapshot image taken by
    /// [`Self::save_snapshot`] under the same (protocol, benchmark,
    /// config) triple. Resuming it is bit-for-bit identical to the
    /// uninterrupted run. Every defect — wrong key, foreign version,
    /// truncation, corruption — surfaces as a typed
    /// [`SimError::Snapshot`]; this function never panics on bad input.
    pub fn restore_snapshot(
        kind: ProtocolKind,
        benchmark: Benchmark,
        cfg: &SystemConfig,
        bytes: &[u8],
    ) -> Result<Self, SimError> {
        let key = snapshot::snapshot_key(kind, benchmark, cfg);
        let mut r = snapshot::read_header(bytes, key)?;
        let rem = r.remaining();
        if rem < 8 {
            return Err(SnapshotError::new("truncated: no payload digest").into());
        }
        let payload = r.raw(rem - 8).expect("sized above");
        let sum = r.u64().expect("sized above");
        r.finish().map_err(|e| SnapshotError::from_snap("image", e))?;
        if crate::manifest::digest(payload) != sum {
            return Err(SnapshotError::new("payload digest mismatch: image is corrupted").into());
        }
        let mut pr = SnapReader::new(payload);
        let mut sim = Self::decode_payload(kind, benchmark, cfg, &mut pr)
            .map_err(|e| SnapshotError::from_snap("payload", e))?;
        pr.finish().map_err(|e| SnapshotError::from_snap("payload", e))?;
        if sim.warmed_up {
            sim.build_sampler(sim.measure_start);
        }
        Ok(sim)
    }

    fn decode_payload(
        kind: ProtocolKind,
        benchmark: Benchmark,
        cfg: &SystemConfig,
        r: &mut SnapReader<'_>,
    ) -> Result<Self, SnapError> {
        let mut sim = Self::new(kind, benchmark, cfg);
        let tag = r.u8()?;
        if tag != Self::proto_tag(kind) {
            return Err(SnapError::BadTag { what: "snapshot protocol", tag });
        }
        sim.proto.load_state(r)?;
        sim.mesh = Snap::load(r)?;
        let queue_now = r.u64()?;
        let events: Vec<(Cycle, Ev)> = Snap::load(r)?;
        sim.queue = EventQueue::from_snapshot(queue_now, events);
        let n = r.len_prefix("snapshot cores", 8)?;
        if n != sim.cores.len() {
            return Err(SnapError::Corrupt("core count does not match configuration"));
        }
        for c in sim.cores.iter_mut() {
            let vm: usize = Snap::load(r)?;
            if vm != c.vm {
                return Err(SnapError::Corrupt("core VM assignment does not match configuration"));
            }
            let profile = benchmark.profile_for_vm(vm, cfg.num_vms);
            c.stream = CoreStream::snap_load(profile, r)?;
            c.pending = Snap::load(r)?;
            c.outstanding = Snap::load(r)?;
            c.refs_done = Snap::load(r)?;
            c.finished_at = Snap::load(r)?;
        }
        sim.memory = Snap::load(r)?;
        sim.rng = Snap::load(r)?;
        sim.fifo = Snap::load(r)?;
        sim.ctrl_free = Snap::load(r)?;
        sim.warmed_up = Snap::load(r)?;
        sim.measure_start = Snap::load(r)?;
        sim.refs_at_reset = Snap::load(r)?;
        sim.events = Snap::load(r)?;
        sim.last_progress = Snap::load(r)?;
        sim.refs_total = Snap::load(r)?;
        sim.faults = Snap::load(r)?;
        sim.tile_misses = Snap::load(r)?;
        sim.tile_refs_base = Snap::load(r)?;
        Ok(sim)
    }

    /// Cheap in-memory fork: duplicates the full machine state so many
    /// measurement legs can branch from one warmed simulator without
    /// serialising anything. Only valid on observer-free simulators
    /// (the [`snapshot_eligible`] precondition), and meant to be taken
    /// at the warm-up boundary — the fork's interval sampler is rebuilt
    /// there, exactly like a snapshot restore.
    pub fn fork(&self) -> Self {
        assert!(
            self.checker.is_none() && self.tracer.is_none() && self.attr.is_none(),
            "fork is only valid on observer-free simulators"
        );
        let mut f = Self {
            cfg: self.cfg.clone(),
            proto: self.proto.clone(),
            mesh: self.mesh.clone(),
            queue: self.queue.clone(),
            cores: self.cores.clone(),
            memory: self.memory.clone(),
            benchmark: self.benchmark,
            rng: self.rng.clone(),
            fifo: self.fifo.clone(),
            ctx_pool: Ctx::default(),
            trace_block: self.trace_block,
            wall: None,
            ctrl_free: self.ctrl_free.clone(),
            warmed_up: self.warmed_up,
            measure_start: self.measure_start,
            refs_at_reset: self.refs_at_reset,
            events: self.events,
            last_progress: self.last_progress,
            refs_total: self.refs_total,
            checker: None,
            tracer: None,
            attr: None,
            sampler: None,
            energy_model: None,
            faults: self.faults.clone(),
            tile_misses: self.tile_misses.clone(),
            tile_refs_base: self.tile_refs_base.clone(),
        };
        if f.warmed_up {
            f.build_sampler(f.measure_start);
        }
        f
    }
}

/// True when runs under `cfg` may take and share warm-state snapshots:
/// the accumulating observers (tracer, invariant checker, attribution)
/// hold pre-warm-up history a restored run would lack, so runs using
/// them always execute cold. Interval sampling is fine — the sampler is
/// created at the warm-up boundary, exactly where snapshots restore.
pub fn snapshot_eligible(cfg: &SystemConfig) -> bool {
    !cfg.tracing && !cfg.check_invariants && !cfg.attribution
}

/// One cell through the snapshot store: restore the warmed state when
/// an image for this key exists, otherwise simulate the warm-up phase,
/// capture it for every later run sharing the key, and continue with
/// the same simulator (capturing costs one serialisation, never a
/// second warm-up). Snapshot spans (`snapshot.save` /
/// `snapshot.restore`) land in the host profile next to `warmup` and
/// `measure`.
fn run_via_store(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
    store: &SnapshotStore,
) -> Result<RunResult, SimError> {
    let key = snapshot::snapshot_key(kind, benchmark, cfg);
    let mut prof = HostProfiler::new();
    if let Some(bytes) = store.get(key)? {
        let t = std::time::Instant::now();
        let sim = CmpSimulator::restore_snapshot(kind, benchmark, cfg, &bytes)?;
        prof.record("snapshot.restore", t.elapsed().as_nanos() as u64);
        return sim.run_measure(prof);
    }
    let mut sim = CmpSimulator::new(kind, benchmark, cfg);
    sim.seed_initial_events();
    let t = std::time::Instant::now();
    let exit = sim.run_phase(true);
    prof.record("warmup", t.elapsed().as_nanos() as u64);
    if matches!(exit?, PhaseExit::Warmed) {
        let t = std::time::Instant::now();
        let bytes = sim.save_snapshot(key);
        prof.record("snapshot.save", t.elapsed().as_nanos() as u64);
        store.put(key, bytes)?;
    }
    sim.run_measure(prof)
}

/// Runs one protocol on one benchmark. On failure, a replay artifact
/// (protocol + benchmark + seed + full config, see [`ReplayArtifact`])
/// is written to [`ReplayArtifact::dump_dir`] and its path attached to
/// the returned [`SimError`], so `cmpsim-cli replay <file>` can re-run
/// the failure deterministically.
pub fn run_benchmark(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
) -> Result<RunResult, SimError> {
    run_benchmark_with_store(kind, benchmark, cfg, None)
}

/// [`run_benchmark`] with an optional [`SnapshotStore`]: eligible runs
/// (see [`snapshot_eligible`]) restore their warm-up phase from the
/// store when a matching image exists and contribute one when none
/// does. Ineligible runs execute cold, unchanged.
pub fn run_benchmark_with_store(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
    store: Option<&SnapshotStore>,
) -> Result<RunResult, SimError> {
    let result = match store.filter(|_| snapshot_eligible(cfg)) {
        Some(store) => run_via_store(kind, benchmark, cfg, store),
        None => CmpSimulator::new(kind, benchmark, cfg).run(),
    };
    result.map_err(|mut e| {
        // A wall-clock timeout is a host-side condition: replaying the
        // cell would not reproduce it (the artifact config carries no
        // deadline, deliberately), so no crash dump is written.
        if matches!(e, SimError::Timeout(_)) {
            return e;
        }
        let artifact = ReplayArtifact::new(
            kind,
            benchmark,
            e.kind_label(),
            e.failing_cycle(),
            e.events(),
            cfg,
        );
        if let Ok(path) = artifact.save(None) {
            e.set_artifact(path);
        }
        e
    })
}

/// Runs every (protocol, benchmark) pair of the given lists in parallel
/// across host cores, returning results in row-major order
/// (`benchmarks x protocols`). The first failing cell's error is
/// returned (its replay artifact is still written).
pub fn run_matrix(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    cfg: &SystemConfig,
) -> Result<Vec<RunResult>, SimError> {
    run_matrix_with_progress(protocols, benchmarks, cfg, None)
}

/// [`run_matrix`] with an optional live-telemetry sink: every finished
/// cell reports its name, host events/s and ETA to `progress` as it
/// completes (completion order, not row-major order — the stream is
/// host-side telemetry, the returned results stay deterministic).
pub fn run_matrix_with_progress(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    cfg: &SystemConfig,
    progress: Option<&crate::progress::ProgressSink>,
) -> Result<Vec<RunResult>, SimError> {
    run_matrix_with_options(protocols, benchmarks, cfg, progress, None, None)
}

/// [`run_matrix_with_progress`] plus the sweep-level knobs: an explicit
/// worker-thread count (`None` = one per host core) and a shared
/// [`SnapshotStore`]. With a store, all cells sharing a snapshot key
/// warm up once; the rest fork from the captured image — and with a
/// disk-backed store the warm-up survives across invocations.
pub fn run_matrix_with_options(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    cfg: &SystemConfig,
    progress: Option<&crate::progress::ProgressSink>,
    threads: Option<usize>,
    store: Option<&SnapshotStore>,
) -> Result<Vec<RunResult>, SimError> {
    let jobs: Vec<(ProtocolKind, Benchmark)> = benchmarks
        .iter()
        .flat_map(|&b| protocols.iter().map(move |&p| (p, b)))
        .collect();
    let threads = threads.unwrap_or_else(num_threads);
    let out = par_map_with_threads(&jobs, threads, |&(p, b)| {
        let r = run_benchmark_with_store(p, b, cfg, store);
        if let Some(sink) = progress {
            let cell = format!("{}/{}", p.name(), b.name());
            match &r {
                Ok(res) => {
                    sink.cell_done(&cell, "ok", res.host.events, res.host.events_per_sec())
                }
                Err(e) => sink.cell_done(&cell, e.kind_label(), 0, 0.0),
            }
        }
        r
    })
    .into_iter()
    .collect();
    if let Some(sink) = progress {
        sink.finish();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_all_protocols_complete() {
        let cfg = SystemConfig::smoke();
        for kind in ProtocolKind::all() {
            let r = run_benchmark(kind, Benchmark::Radix, &cfg).expect("run");
            assert!(r.measured_refs > 0, "{kind:?}");
            assert!(r.cycles > 0);
            assert!(r.proto_stats.l1_hits.get() > 0, "{kind:?} should have hits");
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = SystemConfig::smoke();
        let a = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
        let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.measured_refs, b.measured_refs);
        assert_eq!(a.noc_stats.messages.get(), b.noc_stats.messages.get());
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = SystemConfig::smoke();
        let a = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
        let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg.clone().with_seed(99))
            .expect("run");
        assert_ne!(a.cycles, b.cycles);
    }

    #[test]
    fn alt_placement_runs() {
        let cfg = SystemConfig::smoke().with_placement(cmpsim_virt::Placement::Alternative);
        let r = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, &cfg).expect("run");
        assert!(r.measured_refs > 0);
    }

    #[test]
    fn dedup_savings_reported() {
        let cfg = SystemConfig::small();
        let r = run_benchmark(ProtocolKind::Directory, Benchmark::Apache, &cfg).expect("run");
        // Apache's pools are sized for ~21.7% savings once fully touched;
        // a short run underestimates but must be clearly nonzero.
        assert!(r.dedup_savings > 0.02, "savings {}", r.dedup_savings);
    }

    #[test]
    fn matrix_runs_in_parallel() {
        let cfg = SystemConfig::smoke();
        let rs = run_matrix(
            &[ProtocolKind::Directory, ProtocolKind::DiCoArin],
            &[Benchmark::Radix, Benchmark::Apache],
            &cfg,
        )
        .expect("matrix");
        assert_eq!(rs.len(), 4);
        assert_eq!(rs[0].protocol, ProtocolKind::Directory);
        assert_eq!(rs[0].benchmark.name(), "radix4x16p");
        assert_eq!(rs[3].protocol, ProtocolKind::DiCoArin);
    }

    #[test]
    fn event_budget_trips_watchdog() {
        let cfg = SystemConfig::smoke().with_event_budget(100);
        let err = CmpSimulator::new(ProtocolKind::DiCo, Benchmark::Radix, &cfg)
            .run()
            .expect_err("a 100-event budget cannot finish a smoke run");
        match err {
            SimError::Stalled(r) => {
                assert_eq!(r.reason, StallReason::EventBudget { budget: 100 });
                assert_eq!(r.events, 101);
                assert!(!r.stalled_cores.is_empty(), "no core can have finished");
            }
            other => panic!("expected Stalled, got {other}"),
        }
    }

    #[test]
    fn stall_window_trips_watchdog() {
        // Every L1 miss takes >= mem_latency cycles, so a tiny window
        // declares NoProgress on the first one.
        let cfg = SystemConfig::smoke().with_stall_window(3);
        let err = CmpSimulator::new(ProtocolKind::Directory, Benchmark::Radix, &cfg)
            .run()
            .expect_err("a 3-cycle window cannot survive a memory access");
        match err {
            SimError::Stalled(r) => {
                assert!(matches!(r.reason, StallReason::NoProgress { window: 3, .. }));
            }
            other => panic!("expected Stalled, got {other}"),
        }
    }

    #[test]
    fn invariant_checker_passes_clean_runs() {
        let cfg = SystemConfig::smoke().with_invariant_checks();
        for kind in ProtocolKind::all() {
            let r = run_benchmark(kind, Benchmark::Radix, &cfg)
                .unwrap_or_else(|e| panic!("{kind:?}: {e}"));
            assert!(r.measured_refs > 0);
        }
    }

    #[test]
    fn attribution_does_not_change_timing() {
        let cfg = SystemConfig::smoke();
        let plain = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Apache, &cfg).expect("run");
        let attributed = run_benchmark(
            ProtocolKind::DiCoArin,
            Benchmark::Apache,
            &cfg.clone().with_attribution(),
        )
        .expect("attributed run");
        assert_eq!(plain.cycles, attributed.cycles);
        assert_eq!(plain.measured_refs, attributed.measured_refs);
        assert_eq!(plain.noc_stats.messages.get(), attributed.noc_stats.messages.get());
        assert!(plain.breakdown.is_none());
        assert!(attributed.breakdown.is_some());
    }

    #[test]
    fn attribution_reconciles_every_miss() {
        let cfg = SystemConfig::smoke().with_attribution();
        for kind in ProtocolKind::all() {
            let r = run_benchmark(kind, Benchmark::Radix, &cfg).expect("run");
            let b = r.breakdown.as_ref().expect("breakdown enabled");
            assert_eq!(b.completed, r.proto_stats.miss_latency.count(), "{kind:?}");
            assert_eq!(b.reconciled, b.completed, "{kind:?} must reconcile every miss");
            assert_eq!(b.phase_cycles.total(), b.latency_cycles, "{kind:?}");
            assert_eq!(b.latency_cycles, r.proto_stats.miss_latency.sum(), "{kind:?}");
            assert_eq!(b.open_txs, 0, "{kind:?}: a drained run leaves no open tx");
        }
    }

    #[test]
    fn spatial_counters_tile_chip_aggregates() {
        let cfg = SystemConfig::smoke().with_attribution();
        let r = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
        let s = r.spatial.as_ref().expect("spatial log always attached");
        assert_eq!((s.rows * s.cols) as usize, s.tile_misses.len());
        assert_eq!(
            s.tile_misses.iter().sum::<u64>(),
            r.proto_stats.l1_misses.get(),
            "per-tile misses must sum to the chip L1 miss counter"
        );
        assert_eq!(
            s.link_flits.iter().sum::<u64>(),
            r.noc_stats.flit_link_traversals.get(),
            "per-link flits must sum to the chip flit counter"
        );
        assert_eq!(
            s.link_contention.iter().sum::<u64>(),
            r.noc_stats.contention_cycles.get(),
            "per-link stalls must sum to the chip contention counter"
        );
        assert_eq!(s.tile_refs.iter().sum::<u64>(), r.measured_refs);
        // Per-VM attribution buckets tile the chip aggregates.
        let b = r.breakdown.as_ref().expect("attribution on");
        assert_eq!(b.vm.len(), cfg.num_vms);
        assert_eq!(b.vm.iter().map(|v| v.completed).sum::<u64>(), b.completed);
        assert_eq!(b.vm.iter().map(|v| v.latency_cycles).sum::<u64>(), b.latency_cycles);
        assert!(b.vm.iter().any(|v| v.completed > 0), "some VM saw traffic");
    }

    #[test]
    fn checker_does_not_change_timing() {
        let cfg = SystemConfig::smoke();
        let plain = run_benchmark(ProtocolKind::DiCo, Benchmark::Radix, &cfg).expect("run");
        let checked =
            run_benchmark(ProtocolKind::DiCo, Benchmark::Radix, &cfg.clone().with_invariant_checks())
                .expect("checked run");
        assert_eq!(plain.cycles, checked.cycles);
        assert_eq!(plain.measured_refs, checked.measured_refs);
    }
}
