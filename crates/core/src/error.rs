//! Typed simulation failures with structured diagnostic dumps.
//!
//! The event loop's watchdog produces [`SimError::Stalled`] when the
//! chip stops making forward progress, the optional invariant checker
//! produces [`SimError::InvariantViolation`] when a coherence invariant
//! breaks mid-run, and [`SimError::Protocol`] wraps a controller
//! state-machine fault surfaced by the protocol itself. All three carry
//! enough state to diagnose the failure offline, and
//! [`run_benchmark`](crate::run_benchmark) additionally serializes the
//! failing run into a replay artifact (see [`crate::replay`]).

use cmpsim_engine::{Cycle, FaultKind, FaultPlan, FaultStats};
use cmpsim_protocols::common::{Msg, ProtoError};
use std::fmt;
use std::path::{Path, PathBuf};

/// The active fault-injection plan plus the faults fired so far,
/// embedded in every failure dump of a faulty run so the failure can be
/// reproduced exactly (`cmpsim-cli replay` re-runs the same plan).
#[derive(Debug, Clone)]
pub struct FaultContext {
    /// The plan the run executed under.
    pub plan: FaultPlan,
    /// Per-kind counts of faults fired before the failure.
    pub fired: FaultStats,
}

impl fmt::Display for FaultContext {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "fault plan {} ({} faults fired:",
            self.plan.spec(),
            self.fired.total()
        )?;
        for kind in FaultKind::all() {
            write!(f, " {}={}", kind.label(), self.fired.count(kind))?;
        }
        write!(f, ")")
    }
}

/// Why the watchdog declared the simulation stalled.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StallReason {
    /// The hard event budget was exhausted (classic deadlock signature:
    /// events keep circulating without retiring references).
    EventBudget {
        /// The budget that was exceeded.
        budget: u64,
    },
    /// No core retired a reference for a full stall window.
    NoProgress {
        /// The window, in cycles.
        window: Cycle,
        /// Cycle of the last retired reference.
        last_progress: Cycle,
    },
    /// The event queue drained but cores or protocol state were left
    /// hanging (lost message / lost wakeup).
    IncompleteDrain,
}

impl fmt::Display for StallReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StallReason::EventBudget { budget } => {
                write!(f, "event budget exhausted ({budget} events)")
            }
            StallReason::NoProgress { window, last_progress } => write!(
                f,
                "no reference retired for {window} cycles (last progress at cycle {last_progress})"
            ),
            StallReason::IncompleteDrain => {
                write!(f, "event queue drained with unfinished cores or protocol state")
            }
        }
    }
}

/// One core's state at the moment of a stall.
#[derive(Debug, Clone)]
pub struct CoreStallState {
    /// Tile index.
    pub tile: usize,
    /// VM the core belongs to.
    pub vm: usize,
    /// References retired so far.
    pub refs_done: u64,
    /// Reference target (`refs_per_core`).
    pub refs_target: u64,
    /// A miss is outstanding in the memory system.
    pub outstanding: bool,
    /// A translated reference is waiting to issue: `(block, is_write)`.
    pub pending: Option<(u64, bool)>,
}

/// One queued/in-flight message at the moment of a stall.
#[derive(Debug, Clone)]
pub struct InFlightMsg {
    /// Cycle the message would have been delivered at.
    pub due: Cycle,
    /// The message.
    pub msg: Msg,
}

/// A block with in-flight traffic, plus each controller's view of it.
#[derive(Debug, Clone)]
pub struct HotBlock {
    /// Block address.
    pub block: u64,
    /// In-flight messages concerning it.
    pub queued: usize,
    /// Human-readable per-controller views (from the protocol snapshot).
    pub views: Vec<String>,
}

/// Structured dump attached to [`SimError::Stalled`].
#[derive(Debug, Clone)]
pub struct StallReport {
    /// What tripped the watchdog.
    pub reason: StallReason,
    /// Cycle the stall was declared at.
    pub cycle: Cycle,
    /// Events processed up to that point.
    pub events: u64,
    /// Cores that had not finished their reference budget.
    pub stalled_cores: Vec<CoreStallState>,
    /// Everything still in the event queue, ordered by due cycle.
    pub in_flight: Vec<InFlightMsg>,
    /// The protocol's own dump of in-flight transactions.
    pub pending_summary: String,
    /// Blocks with the most in-flight traffic, with each controller's
    /// view of them.
    pub hot_blocks: Vec<HotBlock>,
    /// The last few coherence-trace events before the stall (rendered
    /// lines; empty unless the run had tracing enabled).
    pub trace_tail: Vec<String>,
    /// Per-transaction phase timelines of the in-flight misses — which
    /// phase each one is stuck in (rendered lines; empty unless the run
    /// had attribution enabled).
    pub phase_lines: Vec<String>,
    /// Replay artifact written for this failure, if any.
    pub artifact: Option<PathBuf>,
    /// The active fault plan and fired-fault counts, when the run was
    /// executing under fault injection.
    pub fault: Option<FaultContext>,
}

/// Structured dump attached to [`SimError::InvariantViolation`].
#[derive(Debug, Clone)]
pub struct InvariantReport {
    /// Cycle the violation was detected at.
    pub cycle: Cycle,
    /// Events processed up to that point.
    pub events: u64,
    /// The message whose handling exposed the violation.
    pub trigger: String,
    /// Block the violation concerns.
    pub block: u64,
    /// Every violated invariant.
    pub violations: Vec<String>,
    /// The checker's recent history window for the offending block.
    pub history: Vec<String>,
    /// Replay artifact written for this failure, if any.
    pub artifact: Option<PathBuf>,
}

/// Structured dump attached to [`SimError::Protocol`].
#[derive(Debug, Clone)]
pub struct ProtocolFault {
    /// Cycle the fault happened at.
    pub cycle: Cycle,
    /// Events processed up to that point.
    pub events: u64,
    /// The protocol's own description of the fault.
    pub error: ProtoError,
    /// The protocol's dump of in-flight transactions.
    pub pending_summary: String,
    /// Replay artifact written for this failure, if any.
    pub artifact: Option<PathBuf>,
}

/// Structured dump attached to [`SimError::Fault`]: a request exhausted
/// its retransmission budget under fault injection.
#[derive(Debug, Clone)]
pub struct FaultAbort {
    /// Cycle the abort was declared at.
    pub cycle: Cycle,
    /// Events processed up to that point.
    pub events: u64,
    /// Tile whose request could not be recovered.
    pub tile: usize,
    /// Block the request concerned.
    pub block: u64,
    /// Retransmissions attempted before giving up.
    pub attempts: u32,
    /// The active plan and fired-fault counts.
    pub fault: FaultContext,
    /// The protocol's dump of in-flight transactions.
    pub pending_summary: String,
    /// Replay artifact written for this failure, if any.
    pub artifact: Option<PathBuf>,
}

/// Structured dump attached to [`SimError::Timeout`]: the run exceeded
/// its host wall-clock budget (`SystemConfig::wall_deadline_ms`). Unlike
/// a stall, this says nothing about simulated progress — the run may
/// simply be too slow for the sweep's per-cell deadline — so timeouts
/// are classified as *transient* by the orchestrator and retried.
#[derive(Debug, Clone)]
pub struct TimeoutReport {
    /// The wall-clock budget that was exceeded, in milliseconds.
    pub budget_ms: u64,
    /// Host milliseconds actually elapsed when the deadline fired.
    pub elapsed_ms: u64,
    /// Simulated cycle the run had reached.
    pub cycle: Cycle,
    /// Events processed up to that point.
    pub events: u64,
    /// References retired chip-wide up to that point.
    pub refs_done: u64,
    /// The active fault plan and fired-fault counts, when the run was
    /// executing under fault injection.
    pub fault: Option<FaultContext>,
    /// Replay artifact written for this failure, if any.
    pub artifact: Option<PathBuf>,
}

/// A failed simulation run.
///
/// The reports are boxed so a `Result<RunResult, SimError>` stays small
/// on the happy path — the dumps are only materialized on failure.
///
/// The enum is `#[non_exhaustive]`: downstream tooling must keep a
/// wildcard arm and should prefer matching on [`SimError::code`], a
/// stable machine-readable string per variant, over parsing `Display`
/// output.
#[derive(Debug, Clone)]
#[non_exhaustive]
pub enum SimError {
    /// The watchdog declared the run stuck.
    Stalled(Box<StallReport>),
    /// The invariant checker caught a coherence violation.
    InvariantViolation(Box<InvariantReport>),
    /// A protocol controller hit a state-machine inconsistency.
    Protocol(Box<ProtocolFault>),
    /// An injected fault could not be recovered: a request exhausted
    /// its retransmission budget.
    Fault(Box<FaultAbort>),
    /// The snapshot subsystem failed: unreadable snapshot directory, or
    /// a corrupted / version-mismatched image. Snapshots fail closed —
    /// a bad image is reported, never silently re-simulated around.
    Snapshot(Box<crate::snapshot::SnapshotError>),
    /// The run exceeded its host wall-clock budget
    /// (`SystemConfig::wall_deadline_ms`). A host-side condition, not a
    /// simulated one: the same cell re-run with a larger budget (or a
    /// faster host) may well complete, which is why sweep orchestration
    /// treats it as transient.
    Timeout(Box<TimeoutReport>),
}

impl SimError {
    /// Cycle the failure was detected at.
    pub fn failing_cycle(&self) -> Cycle {
        match self {
            SimError::Stalled(r) => r.cycle,
            SimError::InvariantViolation(r) => r.cycle,
            SimError::Protocol(r) => r.cycle,
            SimError::Fault(r) => r.cycle,
            SimError::Snapshot(_) => 0,
            SimError::Timeout(r) => r.cycle,
        }
    }

    /// Events processed before the failure.
    pub fn events(&self) -> u64 {
        match self {
            SimError::Stalled(r) => r.events,
            SimError::InvariantViolation(r) => r.events,
            SimError::Protocol(r) => r.events,
            SimError::Fault(r) => r.events,
            SimError::Snapshot(_) => 0,
            SimError::Timeout(r) => r.events,
        }
    }

    /// Stable label used in replay artifacts.
    pub fn kind_label(&self) -> &'static str {
        match self {
            SimError::Stalled(_) => "stalled",
            SimError::InvariantViolation(_) => "invariant-violation",
            SimError::Protocol(_) => "protocol-fault",
            SimError::Fault(_) => "fault-unrecoverable",
            SimError::Snapshot(_) => "snapshot",
            SimError::Timeout(_) => "wall-timeout",
        }
    }

    /// Stable machine-readable error code, one per variant. Downstream
    /// tooling (the chaos harness, CI scripts) matches on these instead
    /// of string-parsing `Display` output; codes never change once
    /// shipped, even as `#[non_exhaustive]` grows the enum.
    pub fn code(&self) -> &'static str {
        match self {
            SimError::Stalled(_) => "E-STALL",
            SimError::InvariantViolation(_) => "E-INVARIANT",
            SimError::Protocol(_) => "E-PROTOCOL",
            SimError::Fault(_) => "E-FAULT",
            SimError::Snapshot(_) => "E-SNAPSHOT",
            SimError::Timeout(_) => "E-TIMEOUT",
        }
    }

    /// True when the failure is *transient* under the sweep retry
    /// policy: it models interference external to the protocol (an
    /// injected-fault retransmission budget exhausted, a host wall-clock
    /// deadline missed on a loaded machine) rather than a deterministic
    /// property of the cell's inputs. Watchdog stalls, invariant
    /// violations, protocol faults and snapshot corruption are
    /// reproducible defects — retrying them wastes the worker, so the
    /// orchestrator quarantines those immediately.
    pub fn is_transient(&self) -> bool {
        matches!(self, SimError::Fault(_) | SimError::Timeout(_))
    }

    /// The active fault plan and fired-fault counts, when the failing
    /// run was executing under fault injection.
    pub fn fault_context(&self) -> Option<&FaultContext> {
        match self {
            SimError::Stalled(r) => r.fault.as_ref(),
            SimError::Fault(r) => Some(&r.fault),
            SimError::Timeout(r) => r.fault.as_ref(),
            SimError::InvariantViolation(_) | SimError::Protocol(_) | SimError::Snapshot(_) => {
                None
            }
        }
    }

    /// Replay artifact written for this failure, if any.
    pub fn artifact(&self) -> Option<&Path> {
        match self {
            SimError::Stalled(r) => r.artifact.as_deref(),
            SimError::InvariantViolation(r) => r.artifact.as_deref(),
            SimError::Protocol(r) => r.artifact.as_deref(),
            SimError::Fault(r) => r.artifact.as_deref(),
            SimError::Snapshot(r) => r.artifact.as_deref(),
            SimError::Timeout(r) => r.artifact.as_deref(),
        }
    }

    /// Records where the replay artifact was written.
    pub fn set_artifact(&mut self, path: PathBuf) {
        match self {
            SimError::Stalled(r) => r.artifact = Some(path),
            SimError::InvariantViolation(r) => r.artifact = Some(path),
            SimError::Protocol(r) => r.artifact = Some(path),
            SimError::Fault(r) => r.artifact = Some(path),
            SimError::Snapshot(r) => r.artifact = Some(path),
            SimError::Timeout(r) => r.artifact = Some(path),
        }
    }
}

/// How many in-flight messages / stalled cores / history lines the
/// Display rendering shows before eliding (the structs keep everything).
const DISPLAY_CAP: usize = 32;

fn elided(total: usize) -> String {
    if total > DISPLAY_CAP {
        format!("  … {} more elided\n", total - DISPLAY_CAP)
    } else {
        String::new()
    }
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Stalled(r) => {
                writeln!(
                    f,
                    "simulation stalled at cycle {} after {} events: {}",
                    r.cycle, r.events, r.reason
                )?;
                writeln!(f, "stalled cores ({}):", r.stalled_cores.len())?;
                for c in r.stalled_cores.iter().take(DISPLAY_CAP) {
                    writeln!(
                        f,
                        "  tile {} (vm {}): {}/{} refs, outstanding={}, pending={:?}",
                        c.tile, c.vm, c.refs_done, c.refs_target, c.outstanding, c.pending
                    )?;
                }
                write!(f, "{}", elided(r.stalled_cores.len()))?;
                writeln!(f, "in-flight messages ({}):", r.in_flight.len())?;
                for m in r.in_flight.iter().take(DISPLAY_CAP) {
                    writeln!(f, "  due {}: {:?}", m.due, m.msg)?;
                }
                write!(f, "{}", elided(r.in_flight.len()))?;
                if !r.hot_blocks.is_empty() {
                    writeln!(f, "hot blocks:")?;
                    for hb in &r.hot_blocks {
                        writeln!(f, "  block {:#x}: {} in-flight messages", hb.block, hb.queued)?;
                        for v in &hb.views {
                            writeln!(f, "    {v}")?;
                        }
                    }
                }
                if !r.trace_tail.is_empty() {
                    writeln!(f, "recent trace events:")?;
                    for line in &r.trace_tail {
                        writeln!(f, "  {line}")?;
                    }
                }
                if !r.phase_lines.is_empty() {
                    writeln!(f, "in-flight miss phase timelines:")?;
                    for line in &r.phase_lines {
                        writeln!(f, "  {line}")?;
                    }
                }
                if !r.pending_summary.is_empty() {
                    writeln!(f, "protocol pending state:\n{}", r.pending_summary.trim_end())?;
                }
                if let Some(fc) = &r.fault {
                    writeln!(f, "{fc}")?;
                }
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
            SimError::InvariantViolation(r) => {
                writeln!(
                    f,
                    "coherence invariant violated at cycle {} after {} events (block {:#x})",
                    r.cycle, r.events, r.block
                )?;
                writeln!(f, "trigger: {}", r.trigger)?;
                for v in &r.violations {
                    writeln!(f, "  {v}")?;
                }
                if !r.history.is_empty() {
                    writeln!(f, "recent history of block {:#x}:", r.block)?;
                    let skip = r.history.len().saturating_sub(DISPLAY_CAP);
                    for h in r.history.iter().skip(skip) {
                        writeln!(f, "  {h}")?;
                    }
                }
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
            SimError::Protocol(r) => {
                writeln!(f, "at cycle {} after {} events: {}", r.cycle, r.events, r.error)?;
                if !r.pending_summary.is_empty() {
                    writeln!(f, "protocol pending state:\n{}", r.pending_summary.trim_end())?;
                }
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
            SimError::Fault(r) => {
                writeln!(
                    f,
                    "unrecoverable injected fault at cycle {} after {} events: \
                     tile {} gave up on block {:#x} after {} retransmissions",
                    r.cycle, r.events, r.tile, r.block, r.attempts
                )?;
                writeln!(f, "{}", r.fault)?;
                if !r.pending_summary.is_empty() {
                    writeln!(f, "protocol pending state:\n{}", r.pending_summary.trim_end())?;
                }
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
            SimError::Snapshot(r) => {
                writeln!(f, "{r}")?;
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
            SimError::Timeout(r) => {
                writeln!(
                    f,
                    "wall-clock deadline exceeded: {} ms elapsed against a {} ms budget \
                     (simulated cycle {}, {} events, {} refs retired)",
                    r.elapsed_ms, r.budget_ms, r.cycle, r.events, r.refs_done
                )?;
                if let Some(fc) = &r.fault {
                    writeln!(f, "{fc}")?;
                }
                if let Some(p) = &r.artifact {
                    writeln!(f, "replay artifact: {}", p.display())?;
                }
                Ok(())
            }
        }
    }
}

impl From<crate::snapshot::SnapshotError> for SimError {
    fn from(e: crate::snapshot::SnapshotError) -> Self {
        SimError::Snapshot(Box::new(e))
    }
}

impl std::error::Error for SimError {}
