//! Plain-text report formatting shared by the benchmark binaries and
//! examples: aligned tables and normalized series, in the style of the
//! paper's figures.

/// Formats a table with a header row and aligned columns.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out += &fmt_row(&head, &widths);
    out += "\n";
    out += &"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1));
    out += "\n";
    for r in rows {
        out += &fmt_row(r, &widths);
        out += "\n";
    }
    out
}

/// Normalizes a series to its first element (the paper normalizes every
/// figure to the Directory bar).
pub fn normalize(series: &[f64]) -> Vec<f64> {
    let base = series.first().copied().unwrap_or(1.0);
    series.iter().map(|v| if base != 0.0 { v / base } else { 0.0 }).collect()
}

/// A unicode bar for quick visual comparison in terminal reports.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(60);
    "#".repeat(n)
}

/// Formats a ratio as a percent delta ("-38%", "+6%").
pub fn pct_delta(value: f64, base: f64) -> String {
    let d = 100.0 * (value / base - 1.0);
    format!("{:+.1}%", d)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn normalize_to_first() {
        assert_eq!(normalize(&[2.0, 1.0, 4.0]), vec![1.0, 0.5, 2.0]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn pct_delta_signs() {
        assert_eq!(pct_delta(0.62, 1.0), "-38.0%");
        assert_eq!(pct_delta(1.06, 1.0), "+6.0%");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(100.0, 1.0).len(), 60);
        assert_eq!(bar(0.2, 10.0).len(), 2);
    }
}
