//! Plain-text report formatting shared by the benchmark binaries and
//! examples: aligned tables and normalized series, in the style of the
//! paper's figures.
//!
//! The `breakdown_*` builders render the per-transaction attribution
//! of a protocol sweep ([`RunResult::breakdown`]) in the style of the
//! paper's Figure 7 (miss latency decomposed into critical-path
//! phases) and Figure 8 (dynamic energy decomposed per structure),
//! as aligned text, deterministic JSON, and CSV.

use crate::replay::Value;
use crate::result::RunResult;
use cmpsim_engine::phase::Phase;
use cmpsim_engine::EventCounts;
use cmpsim_protocols::MissClass;
use std::fmt::Write as _;

/// Formats a table with a header row and aligned columns.
pub fn table(header: &[&str], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for r in rows {
        for (i, cell) in r.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    out += &fmt_row(&head, &widths);
    out += "\n";
    out += &"-".repeat(widths.iter().sum::<usize>() + 2 * (cols - 1));
    out += "\n";
    for r in rows {
        out += &fmt_row(r, &widths);
        out += "\n";
    }
    out
}

/// Normalizes a series to its first element (the paper normalizes every
/// figure to the Directory bar).
pub fn normalize(series: &[f64]) -> Vec<f64> {
    let base = series.first().copied().unwrap_or(1.0);
    series.iter().map(|v| if base != 0.0 { v / base } else { 0.0 }).collect()
}

/// A unicode bar for quick visual comparison in terminal reports.
pub fn bar(value: f64, scale: f64) -> String {
    let n = ((value * scale).round() as usize).min(60);
    "#".repeat(n)
}

/// Formats a ratio as a percent delta ("-38%", "+6%").
pub fn pct_delta(value: f64, base: f64) -> String {
    let d = 100.0 * (value / base - 1.0);
    format!("{:+.1}%", d)
}

/// The seven Figure-8 structure categories of one attributed
/// event-count bucket, in nJ: `[l1_tag, l1_data, l2_tag, l2_data,
/// aux, routing, links]`.
fn bucket_categories_nj(r: &RunResult, c: &EventCounts) -> [f64; 7] {
    let model = r.energy_model();
    let cache = model.counts_cache_energy(c);
    let net = model.counts_network_energy(c);
    [cache.l1_tag, cache.l1_data, cache.l2_tag, cache.l2_data, cache.aux, net.routing, net.links]
}

/// Fig. 7-style table: average miss-latency cycles per critical-path
/// phase, one row per attribution-enabled result (results without a
/// breakdown are skipped).
pub fn breakdown_latency_table(results: &[RunResult]) -> String {
    let mut header = vec!["protocol"];
    header.extend(Phase::all().iter().map(|p| p.key()));
    header.push("total");
    header.push("misses");
    let rows: Vec<Vec<String>> = results
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .map(|(r, b)| {
            let mut row = vec![r.protocol.name().to_string()];
            row.extend(Phase::all().iter().map(|&p| format!("{:.1}", b.phase_avg(p))));
            row.push(format!("{:.1}", r.avg_miss_latency()));
            row.push(b.completed.to_string());
            row
        })
        .collect();
    table(&header, &rows)
}

/// Fig. 8-style table: transaction-attributed dynamic energy per
/// structure (uJ), one row per attribution-enabled result. The
/// `background` column is traffic no open transaction caused (hits,
/// writebacks, evictions); `total` tiles exactly into the aggregate
/// dynamic energy of the run.
pub fn breakdown_energy_table(results: &[RunResult]) -> String {
    let header = [
        "protocol", "l1_tag", "l1_data", "l2_tag", "l2_data", "aux", "routing", "links",
        "tx total", "background", "total",
    ];
    let rows: Vec<Vec<String>> = results
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .map(|(r, b)| {
            let model = r.energy_model();
            let tx = bucket_categories_nj(r, &b.tx_counts);
            let tx_total = r.counts_nj(&model, &b.tx_counts);
            let mut background = b.untracked_counts;
            background.merge(&b.open_counts);
            let bg_total = r.counts_nj(&model, &background);
            let mut row = vec![r.protocol.name().to_string()];
            row.extend(tx.iter().map(|nj| format!("{:.1}", nj / 1000.0)));
            row.push(format!("{:.1}", tx_total / 1000.0));
            row.push(format!("{:.1}", bg_total / 1000.0));
            row.push(format!("{:.1}", (tx_total + bg_total) / 1000.0));
            row
        })
        .collect();
    table(&header, &rows)
}

/// Renders one event-count bucket as a JSON object (categories + total,
/// nJ).
fn bucket_json(r: &RunResult, c: &EventCounts) -> Value {
    let cats = bucket_categories_nj(r, c);
    let mut j = Value::object();
    for (name, nj) in
        ["l1_tag_nj", "l1_data_nj", "l2_tag_nj", "l2_data_nj", "aux_nj", "routing_nj", "links_nj"]
            .iter()
            .zip(cats.iter())
    {
        j.set(name, Value::float(*nj));
    }
    j.set("total_nj", Value::float(cats.iter().sum()));
    j
}

/// Renders a breakdown sweep as a deterministic JSON document
/// (validated by `schemas/breakdown.schema.json`). Results without a
/// breakdown are skipped.
pub fn breakdown_json(results: &[RunResult]) -> String {
    let mut doc = Value::object();
    doc.set("schema", Value::string("cmpsim-breakdown-v1"));
    if let Some(r) = results.first() {
        doc.set("benchmark", Value::string(r.benchmark.name()));
    }
    // Provenance: one manifest per contributing run, in table order.
    let manifests: Vec<Value> =
        results.iter().filter_map(|r| r.manifest.as_ref().map(|m| m.to_value())).collect();
    if !manifests.is_empty() {
        doc.set("manifests", Value::Arr(manifests));
    }
    let protos = results
        .iter()
        .filter_map(|r| r.breakdown.as_ref().map(|b| (r, b)))
        .map(|(r, b)| {
            let mut p = Value::object();
            p.set("protocol", Value::string(r.protocol.name()));
            p.set("completed", Value::uint(b.completed));
            p.set("reconciled", Value::uint(b.reconciled));
            p.set("open_txs", Value::uint(b.open_txs));
            p.set("latency_cycles", Value::uint(b.latency_cycles));
            p.set("avg_miss_latency", Value::float(r.avg_miss_latency()));
            p.set("mshr_wait_cycles", Value::uint(b.mshr_wait_cycles));
            p.set("retry_wait_cycles", Value::uint(b.retry_wait_cycles));
            let phases = Phase::all()
                .iter()
                .map(|&ph| {
                    let mut v = Value::object();
                    v.set("key", Value::string(ph.key()));
                    v.set("label", Value::string(ph.label()));
                    v.set("cycles", Value::uint(b.phase_cycles.get(ph)));
                    v.set("avg", Value::float(b.phase_avg(ph)));
                    v.set("frac", Value::float(b.phase_frac(ph)));
                    v
                })
                .collect();
            p.set("phases", Value::Arr(phases));
            let model = r.energy_model();
            let mut e = Value::object();
            e.set("tx", bucket_json(r, &b.tx_counts));
            e.set("untracked", bucket_json(r, &b.untracked_counts));
            e.set("open", bucket_json(r, &b.open_counts));
            e.set("attributed_nj", Value::float(r.counts_nj(&model, &b.total_counts())));
            e.set("aggregate_dynamic_nj", Value::float(r.total_dynamic_nj()));
            p.set("energy", e);
            p
        })
        .collect();
    doc.set("protocols", Value::Arr(protos));
    let mut out = String::new();
    doc.render_to(&mut out);
    out.push('\n');
    out
}

/// Renders a breakdown sweep as CSV: one row per protocol, phase
/// cycles then attributed energy buckets.
pub fn breakdown_csv(results: &[RunResult]) -> String {
    let mut out = String::from(
        "protocol,completed,reconciled,latency_cycles,\
         phase_req_net,phase_home,phase_owner_ind,phase_memory,\
         phase_data_net,phase_inv,phase_retry,phase_fill,\
         tx_nj,untracked_nj,open_nj,aggregate_dynamic_nj",
    );
    out.push('\n');
    for (r, b) in results.iter().filter_map(|r| r.breakdown.as_ref().map(|b| (r, b))) {
        let model = r.energy_model();
        let _ = write!(out, "{},{},{},{}", r.protocol.name(), b.completed, b.reconciled, b.latency_cycles);
        for &p in &Phase::all() {
            let _ = write!(out, ",{}", b.phase_cycles.get(p));
        }
        let _ = writeln!(
            out,
            ",{:.3},{:.3},{:.3},{:.3}",
            r.counts_nj(&model, &b.tx_counts),
            r.counts_nj(&model, &b.untracked_counts),
            r.counts_nj(&model, &b.open_counts),
            r.total_dynamic_nj(),
        );
    }
    out
}

/// Formats a GitHub-flavored Markdown table.
pub fn md_table(header: &[&str], rows: &[Vec<String>]) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "| {} |", header.join(" | "));
    let _ = writeln!(out, "|{}", "---|".repeat(header.len()));
    for r in rows {
        let _ = writeln!(out, "| {} |", r.join(" | "));
    }
    out
}

/// One deterministic Markdown report over a matrix run: the run
/// ledger (per-cell manifests), the paper's throughput/energy table
/// per benchmark, miss-class mix, Fig. 7/8 breakdowns plus the tenant
/// (per-VM / cross-VM interference) breakdown when attribution ran,
/// interval-series summaries when sampling ran, and fault-recovery
/// counts when the matrix ran under fault injection.
///
/// Only deterministic fields of the results are rendered — no host
/// profile, no wall clock — so the report is byte-identical across
/// reruns of the same cells. Results arrive in `run_matrix`'s
/// row-major (benchmark x protocol) order.
pub fn markdown_report(results: &[RunResult]) -> String {
    let mut out = String::from("# cmpsim matrix report\n\n");
    if results.is_empty() {
        out.push_str("No results.\n");
        return out;
    }
    let first = &results[0];
    if let Some(m) = &first.manifest {
        let _ = writeln!(out, "- tool: {} {}", m.tool, m.tool_version);
        let _ = writeln!(out, "- config digest: `{}`", m.config_digest);
        let _ = writeln!(
            out,
            "- seed: {}, refs/core: {}, placement: {}",
            m.seed, m.refs_per_core, m.placement
        );
        let _ = writeln!(out, "- fault plan: {}", m.fault_spec.as_deref().unwrap_or("none"));
        out.push('\n');
    }

    out.push_str("## Run ledger\n\n");
    let ledger_rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.benchmark.name().to_string(),
                r.protocol.name().to_string(),
                r.manifest
                    .as_ref()
                    .map(|m| format!("`{}`", m.run_id))
                    .unwrap_or_else(|| "-".to_string()),
            ]
        })
        .collect();
    out.push_str(&md_table(&["benchmark", "protocol", "run_id"], &ledger_rows));
    out.push('\n');

    // Group into per-benchmark protocol sweeps, preserving order.
    let mut groups: Vec<(&str, Vec<&RunResult>)> = Vec::new();
    for r in results {
        match groups.last_mut() {
            Some((name, rs)) if *name == r.benchmark.name() => rs.push(r),
            _ => groups.push((r.benchmark.name(), vec![r])),
        }
    }

    for (bench, rs) in &groups {
        let base = rs[0];
        let _ = writeln!(out, "## {bench}{}\n", base.placement.suffix());

        out.push_str("### Throughput & energy (Tables V-VII style)\n\n");
        let rows: Vec<Vec<String>> = rs
            .iter()
            .map(|r| {
                vec![
                    r.protocol.name().to_string(),
                    format!("{:.4}", r.throughput()),
                    pct_delta(r.performance(), base.performance()),
                    format!("{:.1}", r.total_dynamic_uj()),
                    pct_delta(r.total_dynamic_nj(), base.total_dynamic_nj()),
                    format!("{:.2}", r.avg_links_per_message()),
                    format!("{:.1}", r.avg_miss_latency()),
                ]
            })
            .collect();
        out.push_str(&md_table(
            &[
                "protocol",
                "throughput (refs/cycle)",
                "perf vs dir",
                "dyn energy (uJ)",
                "energy vs dir",
                "links/msg",
                "avg miss lat",
            ],
            &rows,
        ));
        out.push('\n');

        out.push_str("### L1 miss mix\n\n");
        let mut header = vec!["protocol"];
        header.extend(MissClass::all().iter().map(|c| c.label()));
        let rows: Vec<Vec<String>> = rs
            .iter()
            .map(|r| {
                let mut row = vec![r.protocol.name().to_string()];
                row.extend(
                    MissClass::all()
                        .iter()
                        .map(|&c| format!("{:.1}%", 100.0 * r.miss_class_frac(c))),
                );
                row
            })
            .collect();
        out.push_str(&md_table(&header, &rows));
        out.push('\n');

        let attributed: Vec<RunResult> =
            rs.iter().filter(|r| r.breakdown.is_some()).map(|&r| r.clone()).collect();
        if !attributed.is_empty() {
            out.push_str("### Miss latency by phase (Fig. 7 style, avg cycles)\n\n```text\n");
            out.push_str(&breakdown_latency_table(&attributed));
            out.push_str("```\n\n");
            out.push_str("### Attributed dynamic energy (Fig. 8 style, uJ)\n\n```text\n");
            out.push_str(&breakdown_energy_table(&attributed));
            out.push_str("```\n\n");
            out.push_str(&crate::vmstat::tenant_section(rs));
        }

        if rs.iter().any(|r| r.timeseries.is_some()) {
            out.push_str("### Interval series\n\n");
            let rows: Vec<Vec<String>> = rs
                .iter()
                .filter_map(|r| r.timeseries.as_ref().map(|ts| (r, ts)))
                .map(|(r, ts)| {
                    let max_util = ts
                        .samples
                        .iter()
                        .map(|s| s.link_util_max)
                        .fold(0.0f64, f64::max);
                    vec![
                        r.protocol.name().to_string(),
                        ts.samples.len().to_string(),
                        ts.interval.to_string(),
                        format!("{:.3}", max_util),
                    ]
                })
                .collect();
            out.push_str(&md_table(
                &["protocol", "samples", "interval (cycles)", "peak link util"],
                &rows,
            ));
            out.push('\n');
        }

        if rs.iter().any(|r| r.faults.is_some()) {
            out.push_str("### Fault injection\n\n");
            let rows: Vec<Vec<String>> = rs
                .iter()
                .filter_map(|r| r.faults.as_ref().map(|f| (r, f)))
                .map(|(r, f)| {
                    vec![
                        r.protocol.name().to_string(),
                        f.plan.spec(),
                        f.fired.total().to_string(),
                        r.proto_stats.retries.get().to_string(),
                        r.proto_stats.timeouts.get().to_string(),
                        r.effective_cycles
                            .map(|ec| r.cycles.saturating_sub(ec).to_string())
                            .unwrap_or_else(|| "-".to_string()),
                    ]
                })
                .collect();
            out.push_str(&md_table(
                &["protocol", "plan", "faults fired", "retries", "timeouts", "overhead cycles"],
                &rows,
            ));
            out.push('\n');
        }
    }
    out
}

/// Markdown section summarizing a chaos sweep, appended to a matrix
/// report by `cmpsim-cli chaos --report-out`.
pub fn markdown_chaos_section(report: &crate::chaos::ChaosReport) -> String {
    let mut out = String::from("## Chaos sweep\n\n");
    let _ = writeln!(
        out,
        "- cells: {}, recovered: {}, faulted: {}, violations: {}",
        report.cells.len(),
        report.recovered(),
        report.faulted(),
        report.violations().len()
    );
    let _ = writeln!(out, "- verdict: {}\n", if report.passed() { "PASS" } else { "FAIL" });
    let rows: Vec<Vec<String>> = report
        .cells
        .iter()
        .map(|c| {
            vec![
                c.plan.spec(),
                c.protocol.name().to_string(),
                c.benchmark.name().to_string(),
                c.outcome.status().to_string(),
                format!("`{}`", c.manifest.run_id),
            ]
        })
        .collect();
    out.push_str(&md_table(&["plan", "protocol", "benchmark", "status", "run_id"], &rows));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns() {
        let t = table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[2].ends_with('1'));
        assert!(lines[3].starts_with("longer"));
    }

    #[test]
    fn normalize_to_first() {
        assert_eq!(normalize(&[2.0, 1.0, 4.0]), vec![1.0, 0.5, 2.0]);
        assert!(normalize(&[]).is_empty());
    }

    #[test]
    fn pct_delta_signs() {
        assert_eq!(pct_delta(0.62, 1.0), "-38.0%");
        assert_eq!(pct_delta(1.06, 1.0), "+6.0%");
    }

    #[test]
    fn bar_clamps() {
        assert_eq!(bar(100.0, 1.0).len(), 60);
        assert_eq!(bar(0.2, 10.0).len(), 2);
    }
}
