//! Live sweep telemetry: a heartbeat progress stream for matrix and
//! chaos sweeps.
//!
//! A [`ProgressSink`] counts completed cells and emits one event per
//! cell — an NDJSON line to an optional file (`--progress-out`) and a
//! human-readable line to stderr — with cells done/total, the cell's
//! events/s from the host self-profiler, and an ETA extrapolated from
//! the elapsed wall clock. This is *host-side telemetry*: lines carry
//! wall-clock timings, arrive in completion order and are explicitly
//! nondeterministic. They never touch the deterministic artifacts; the
//! future sweep orchestrator (ROADMAP item 5) tails this stream.
//!
//! Stream shape (one JSON document per line, `cmpsim-progress-v1`):
//!
//! ```text
//! {"schema":"cmpsim-progress-v1","event":"start","label":"matrix","total":32,...}
//! {"schema":"cmpsim-progress-v1","event":"cell","done":1,"total":32,"cell":"DiCo/apache4x16p",...}
//! {"schema":"cmpsim-progress-v1","event":"finish","done":32,"total":32,...}
//! ```

use std::io::Write;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// Schema tag of each NDJSON progress line.
pub const PROGRESS_SCHEMA: &str = "cmpsim-progress-v1";

/// Thread-safe sink for sweep progress events. Cheap to share by
/// reference across the sweep's worker threads.
pub struct ProgressSink {
    out: Option<Mutex<std::fs::File>>,
    stderr: bool,
    label: String,
    total: usize,
    done: AtomicUsize,
    started: Instant,
}

impl ProgressSink {
    /// A sink over `total` cells. `path` receives the NDJSON stream
    /// (`None` = stderr lines only); `stderr` controls the human line.
    pub fn new(
        label: &str,
        total: usize,
        path: Option<&str>,
        stderr: bool,
    ) -> std::io::Result<Self> {
        let out = match path {
            Some(p) => Some(Mutex::new(std::fs::File::create(p)?)),
            None => None,
        };
        let sink = Self {
            out,
            stderr,
            label: label.to_string(),
            total,
            done: AtomicUsize::new(0),
            started: Instant::now(),
        };
        sink.write_line(&format!(
            "{{\"schema\":\"{PROGRESS_SCHEMA}\",\"event\":\"start\",\"label\":\"{}\",\"total\":{}}}",
            sink.label, sink.total
        ));
        Ok(sink)
    }

    /// Records one finished cell. `cell` names it (`protocol/benchmark`
    /// or `plan:protocol/benchmark`), `status` is a short outcome tag
    /// (`ok`, `recovered`, `faulted`, ...), `events`/`events_per_sec`
    /// come from the run's host self-profile (0 when unavailable).
    pub fn cell_done(&self, cell: &str, status: &str, events: u64, events_per_sec: f64) {
        let done = self.done.fetch_add(1, Ordering::Relaxed) + 1;
        let elapsed = self.started.elapsed();
        let elapsed_ms = elapsed.as_millis() as u64;
        let eta_ms = if done > 0 && self.total >= done {
            elapsed_ms.saturating_mul((self.total - done) as u64) / done as u64
        } else {
            0
        };
        self.write_line(&format!(
            "{{\"schema\":\"{PROGRESS_SCHEMA}\",\"event\":\"cell\",\"label\":\"{}\",\"done\":{done},\"total\":{},\"cell\":\"{cell}\",\"status\":\"{status}\",\"events\":{events},\"events_per_sec\":{events_per_sec:.1},\"elapsed_ms\":{elapsed_ms},\"eta_ms\":{eta_ms}}}",
            self.label, self.total
        ));
        if self.stderr {
            let rate = if events_per_sec > 0.0 {
                format!(", {:.2} Mev/s", events_per_sec / 1e6)
            } else {
                String::new()
            };
            eprintln!(
                "{} [{done}/{}] {cell}: {status}{rate}, ETA {:.1}s",
                self.label,
                self.total,
                eta_ms as f64 / 1e3
            );
        }
    }

    /// Emits the final summary event. Called once after the sweep.
    pub fn finish(&self) {
        let done = self.done.load(Ordering::Relaxed);
        self.write_line(&format!(
            "{{\"schema\":\"{PROGRESS_SCHEMA}\",\"event\":\"finish\",\"label\":\"{}\",\"done\":{done},\"total\":{},\"elapsed_ms\":{}}}",
            self.label,
            self.total,
            self.started.elapsed().as_millis() as u64
        ));
    }

    fn write_line(&self, line: &str) {
        if let Some(out) = &self.out {
            let mut f = out.lock().unwrap();
            let _ = writeln!(f, "{line}");
            let _ = f.flush();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::Value;

    #[test]
    fn ndjson_stream_counts_cells_and_parses() {
        let dir = std::env::temp_dir().join(format!("cmpsim-progress-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("progress.ndjson");
        let sink =
            ProgressSink::new("matrix", 2, Some(path.to_str().unwrap()), false).unwrap();
        sink.cell_done("DiCo/apache4x16p", "ok", 1000, 2.5e6);
        sink.cell_done("Directory/apache4x16p", "ok", 900, 2.0e6);
        sink.finish();

        let text = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 4, "{text}");
        for line in &lines {
            let v = Value::parse(line).expect("each line is a JSON document");
            assert_eq!(v.field("schema").unwrap().as_str().unwrap(), PROGRESS_SCHEMA);
        }
        let first = Value::parse(lines[0]).unwrap();
        assert_eq!(first.field("event").unwrap().as_str().unwrap(), "start");
        let last = Value::parse(lines[3]).unwrap();
        assert_eq!(last.field("event").unwrap().as_str().unwrap(), "finish");
        assert_eq!(last.field("done").unwrap().as_u64().unwrap(), 2);
        let cell = Value::parse(lines[1]).unwrap();
        assert_eq!(cell.field("total").unwrap().as_u64().unwrap(), 2);
        assert!(cell.field("eta_ms").unwrap().as_u64().is_ok());
        std::fs::remove_dir_all(&dir).ok();
    }
}
