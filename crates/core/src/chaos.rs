//! Chaos soak harness: differential golden verification of fault
//! recovery.
//!
//! The contract under test: a run whose injected faults were all
//! recovered must end in the **bit-identical architectural state** as
//! the fault-free run of the same cell — same memory-version digest,
//! same committed-reference count, same page-table shape. Cycles may
//! differ (recovery costs time); [`RunResult::effective_cycles`] records
//! the fault-free cycle count so the overhead is measurable.
//!
//! [`run_differential`] checks one `(protocol, benchmark)` cell against
//! its golden twin. [`chaos_sweep`] fans a set of seeded [`FaultPlan`]s
//! across the protocol x benchmark matrix and classifies every cell:
//! recovered-and-verified, typed error with a replay artifact, or — the
//! failure modes the harness exists to catch — silent divergence and
//! panic. The sweep itself never panics: worker panics are caught and
//! reported as [`CellOutcome::Panicked`].

use std::panic::{self, AssertUnwindSafe};
use std::path::PathBuf;

use cmpsim_engine::par::{num_threads, par_map_with_threads};
use cmpsim_engine::{Cycle, FaultPlan};
use cmpsim_protocols::ProtocolKind;
use cmpsim_workloads::Benchmark;

use crate::config::SystemConfig;
use crate::error::SimError;
use crate::sim::run_benchmark_with_store;
use crate::snapshot::SnapshotStore;
use crate::manifest::RunManifest;
use crate::progress::ProgressSink;
use crate::replay::Value;
use crate::result::RunResult;

/// Outcome of a single differential run ([`run_differential`]).
#[derive(Debug)]
pub enum DiffOutcome {
    /// All faults recovered and the architectural end state matches the
    /// fault-free golden run. The carried result has
    /// [`RunResult::effective_cycles`] set to the golden cycle count.
    Verified(Box<RunResult>),
    /// The faulty run completed but its architectural state differs
    /// from the golden run — a recovery bug, never acceptable.
    Diverged {
        /// Field-by-field description of the mismatch.
        detail: String,
        /// The divergent faulty result.
        faulty: Box<RunResult>,
    },
    /// The faulty run aborted with a typed error (expected for
    /// unrecoverable plans; the replay artifact is attached).
    Faulted(Box<SimError>),
    /// One of the two legs panicked. Always a bug; caught so the caller
    /// still gets a report.
    Panicked {
        /// The panic payload, plus which leg it came from.
        message: String,
    },
}

/// How one chaos cell (protocol x benchmark x plan) ended.
#[derive(Debug)]
pub enum CellOutcome {
    /// Faults recovered; architectural state verified against golden.
    Recovered {
        /// Total faults injected by the engine.
        faults_fired: u64,
        /// Protocol-level retransmissions issued.
        retries: u64,
        /// MSHR timeouts that fired.
        timeouts: u64,
        /// Cycle count of the faulty run.
        cycles: Cycle,
        /// Cycle count of the fault-free golden run.
        effective_cycles: Cycle,
    },
    /// The run ended in a typed [`SimError`] — acceptable iff a replay
    /// artifact was written.
    Faulted {
        /// Stable machine-readable error code ([`SimError::code`]).
        code: &'static str,
        /// Human-readable error kind ([`SimError::kind_label`]).
        label: &'static str,
        /// Path of the crash-dump artifact, if one was saved.
        artifact: Option<PathBuf>,
    },
    /// The run completed but silently diverged from golden. Always a
    /// bug.
    Diverged {
        /// Field-by-field description of the mismatch.
        detail: String,
    },
    /// The run panicked. Always a bug; the harness catches it so the
    /// rest of the sweep still reports.
    Panicked {
        /// The panic payload, if it was a string.
        message: String,
    },
    /// The fault-free golden run itself failed, so the cell could not
    /// be judged. Always a bug.
    GoldenFailed {
        /// What went wrong in the golden run.
        message: String,
    },
}

impl CellOutcome {
    /// Whether this outcome satisfies the chaos contract: verified
    /// recovery, or a typed error with a replayable artifact.
    pub fn acceptable(&self) -> bool {
        match self {
            CellOutcome::Recovered { .. } => true,
            CellOutcome::Faulted { artifact, .. } => artifact.is_some(),
            CellOutcome::Diverged { .. }
            | CellOutcome::Panicked { .. }
            | CellOutcome::GoldenFailed { .. } => false,
        }
    }

    /// Short status word for table output.
    pub fn status(&self) -> &'static str {
        match self {
            CellOutcome::Recovered { .. } => "recovered",
            CellOutcome::Faulted { .. } => "faulted",
            CellOutcome::Diverged { .. } => "DIVERGED",
            CellOutcome::Panicked { .. } => "PANICKED",
            CellOutcome::GoldenFailed { .. } => "GOLDEN-FAILED",
        }
    }
}

/// One judged cell of a [`chaos_sweep`].
#[derive(Debug)]
pub struct ChaosCell {
    /// Protocol under test.
    pub protocol: ProtocolKind,
    /// Benchmark under test.
    pub benchmark: Benchmark,
    /// The fault plan this cell ran.
    pub plan: FaultPlan,
    /// How the cell ended.
    pub outcome: CellOutcome,
    /// Provenance manifest of the faulty leg (config + plan), keying
    /// this cell to its crash dump / metrics artifacts.
    pub manifest: RunManifest,
}

/// Full result of a [`chaos_sweep`].
#[derive(Debug)]
pub struct ChaosReport {
    /// Every judged cell, in (plan, benchmark, protocol) row-major
    /// order.
    pub cells: Vec<ChaosCell>,
}

impl ChaosReport {
    /// Number of cells that recovered and verified.
    pub fn recovered(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Recovered { .. }))
            .count()
    }

    /// Number of cells that ended in a typed error.
    pub fn faulted(&self) -> usize {
        self.cells
            .iter()
            .filter(|c| matches!(c.outcome, CellOutcome::Faulted { .. }))
            .count()
    }

    /// Cells violating the chaos contract (divergence, panic, missing
    /// artifact, golden failure).
    pub fn violations(&self) -> Vec<&ChaosCell> {
        self.cells.iter().filter(|c| !c.outcome.acceptable()).collect()
    }

    /// True iff every cell ended in verified recovery or a typed error
    /// with a replayable artifact.
    pub fn passed(&self) -> bool {
        self.cells.iter().all(|c| c.outcome.acceptable())
    }

    /// Deterministic JSON export of the sweep: summary counts plus one
    /// entry per cell carrying its provenance manifest, so every cell
    /// can be keyed back to the crash dumps and metrics it produced.
    pub fn to_json(&self) -> String {
        let mut cells = Vec::new();
        for c in &self.cells {
            let mut j = Value::object();
            j.set("protocol", Value::string(c.protocol.name()));
            j.set("benchmark", Value::string(c.benchmark.name()));
            j.set("plan", Value::string(&c.plan.spec()));
            j.set("status", Value::string(c.outcome.status()));
            j.set("acceptable", Value::boolean(c.outcome.acceptable()));
            match &c.outcome {
                CellOutcome::Recovered {
                    faults_fired,
                    retries,
                    timeouts,
                    cycles,
                    effective_cycles,
                } => {
                    j.set("faults_fired", Value::uint(*faults_fired));
                    j.set("retries", Value::uint(*retries));
                    j.set("timeouts", Value::uint(*timeouts));
                    j.set("cycles", Value::uint(*cycles));
                    j.set("effective_cycles", Value::uint(*effective_cycles));
                }
                CellOutcome::Faulted { code, label, artifact } => {
                    j.set("code", Value::string(code));
                    j.set("label", Value::string(label));
                    j.set(
                        "artifact",
                        artifact.as_ref().map_or(Value::Null, |p| {
                            Value::string(&p.display().to_string())
                        }),
                    );
                }
                CellOutcome::Diverged { detail } => j.set("detail", Value::string(detail)),
                CellOutcome::Panicked { message } | CellOutcome::GoldenFailed { message } => {
                    j.set("detail", Value::string(message))
                }
            }
            j.set("manifest", c.manifest.to_value());
            cells.push(j);
        }
        let mut j = Value::object();
        j.set("schema", Value::string("cmpsim-chaos-v1"));
        j.set("cells_total", Value::uint(self.cells.len() as u64));
        j.set("recovered", Value::uint(self.recovered() as u64));
        j.set("faulted", Value::uint(self.faulted() as u64));
        j.set("violations", Value::uint(self.violations().len() as u64));
        j.set("passed", Value::boolean(self.passed()));
        j.set("cells", Value::Arr(cells));
        let mut out = String::new();
        j.render_to(&mut out);
        out.push('\n');
        out
    }
}

/// Runs one cell twice — fault-free golden, then with `cfg`'s fault
/// plan — and compares the architectural end states. With no plan in
/// `cfg` the comparison is trivially against itself. Never panics.
pub fn run_differential(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
) -> DiffOutcome {
    let mut golden_cfg = cfg.clone();
    golden_cfg.fault_plan = None;
    let golden = match run_caught(kind, benchmark, &golden_cfg, None) {
        Ok(Ok(r)) => r,
        Ok(Err(e)) => return DiffOutcome::Faulted(Box::new(e)),
        Err(msg) => {
            return DiffOutcome::Panicked { message: format!("golden run panicked: {msg}") }
        }
    };
    judge(kind, benchmark, cfg, &golden, None)
}

/// Judges the faulty leg of one cell against an already-computed golden
/// result.
fn judge(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
    golden: &RunResult,
    store: Option<&SnapshotStore>,
) -> DiffOutcome {
    match run_caught(kind, benchmark, cfg, store) {
        Ok(Ok(mut faulty)) => match describe_divergence(golden, &faulty) {
            None => {
                faulty.effective_cycles = Some(golden.cycles);
                DiffOutcome::Verified(Box::new(faulty))
            }
            Some(detail) => DiffOutcome::Diverged { detail, faulty: Box::new(faulty) },
        },
        Ok(Err(e)) => DiffOutcome::Faulted(Box::new(e)),
        Err(msg) => DiffOutcome::Panicked { message: format!("faulty run panicked: {msg}") },
    }
}

/// Fans `plans` across the `protocols` x `benchmarks` matrix. Golden
/// runs are computed once per (protocol, benchmark) pair and shared by
/// every plan. Cells run in parallel across host cores.
pub fn chaos_sweep(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    plans: &[FaultPlan],
    cfg: &SystemConfig,
) -> ChaosReport {
    chaos_sweep_with_progress(protocols, benchmarks, plans, cfg, None)
}

/// [`chaos_sweep`] with an optional live-telemetry sink: every judged
/// cell reports `plan:protocol/benchmark`, its status and the faulty
/// leg's host events/s as it completes (completion order — the stream
/// is host-side telemetry, the returned report stays deterministic).
pub fn chaos_sweep_with_progress(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    plans: &[FaultPlan],
    cfg: &SystemConfig,
    progress: Option<&ProgressSink>,
) -> ChaosReport {
    chaos_sweep_with_options(protocols, benchmarks, plans, cfg, progress, None, None)
}

/// [`chaos_sweep_with_progress`] plus the sweep-level knobs: an
/// explicit worker-thread count (`None` = one per host core) and a
/// shared [`SnapshotStore`]. The fault plan is part of the snapshot key
/// (faults fire during warm-up too), so golden and per-plan legs never
/// share an image within one sweep — the wins come from repeated cells
/// and, with a disk-backed store, from re-running a sweep after the
/// images were captured.
pub fn chaos_sweep_with_options(
    protocols: &[ProtocolKind],
    benchmarks: &[Benchmark],
    plans: &[FaultPlan],
    cfg: &SystemConfig,
    progress: Option<&ProgressSink>,
    threads: Option<usize>,
    store: Option<&SnapshotStore>,
) -> ChaosReport {
    let threads = threads.unwrap_or_else(num_threads);
    let mut golden_cfg = cfg.clone();
    golden_cfg.fault_plan = None;
    let pairs: Vec<(ProtocolKind, Benchmark)> = benchmarks
        .iter()
        .flat_map(|&b| protocols.iter().map(move |&p| (p, b)))
        .collect();
    let goldens =
        par_map_with_threads(&pairs, threads, |&(p, b)| run_caught(p, b, &golden_cfg, store));

    let jobs: Vec<(usize, usize)> = plans
        .iter()
        .enumerate()
        .flat_map(|(pi, _)| (0..pairs.len()).map(move |ci| (pi, ci)))
        .collect();
    let outcomes = par_map_with_threads(&jobs, threads, |&(pi, ci)| {
        let (proto, bench) = pairs[ci];
        let cell_cfg = cfg.clone().with_fault_plan(Some(plans[pi].clone()));
        let mut host = (0u64, 0.0f64);
        let outcome = match &goldens[ci] {
            Ok(Ok(golden)) => {
                let diff = judge(proto, bench, &cell_cfg, golden, store);
                if let DiffOutcome::Verified(r) = &diff {
                    host = (r.host.events, r.host.events_per_sec());
                }
                cell_outcome(diff)
            }
            Ok(Err(e)) => CellOutcome::GoldenFailed {
                message: format!("{} ({})", e.kind_label(), e.code()),
            },
            Err(msg) => CellOutcome::GoldenFailed { message: msg.clone() },
        };
        if let Some(sink) = progress {
            let cell =
                format!("{}:{}/{}", plans[pi].spec(), proto.name(), bench.name());
            sink.cell_done(&cell, outcome.status(), host.0, host.1);
        }
        let manifest = RunManifest::new(proto, bench, &cell_cfg);
        ChaosCell { protocol: proto, benchmark: bench, plan: plans[pi].clone(), outcome, manifest }
    });
    if let Some(sink) = progress {
        sink.finish();
    }
    ChaosReport { cells: outcomes }
}

fn cell_outcome(diff: DiffOutcome) -> CellOutcome {
    match diff {
        DiffOutcome::Verified(r) => {
            let fired = r.faults.as_ref().map(|f| f.fired.total()).unwrap_or(0);
            CellOutcome::Recovered {
                faults_fired: fired,
                retries: r.proto_stats.retries.get(),
                timeouts: r.proto_stats.timeouts.get(),
                cycles: r.cycles,
                effective_cycles: r.effective_cycles.unwrap_or(r.cycles),
            }
        }
        DiffOutcome::Diverged { detail, .. } => CellOutcome::Diverged { detail },
        DiffOutcome::Panicked { message } => CellOutcome::Panicked { message },
        DiffOutcome::Faulted(e) => CellOutcome::Faulted {
            code: e.code(),
            label: e.kind_label(),
            artifact: e.artifact().map(|p| p.to_path_buf()),
        },
    }
}

/// Compares the architectural end states of two completed runs.
/// Returns `None` when identical, else a description of every
/// mismatched field.
fn describe_divergence(golden: &RunResult, faulty: &RunResult) -> Option<String> {
    let (g, f) = match (golden.arch, faulty.arch) {
        (Some(g), Some(f)) => (g, f),
        (g, f) => {
            return Some(format!(
                "missing architectural state: golden={} faulty={}",
                g.is_some(),
                f.is_some()
            ))
        }
    };
    if g == f {
        return None;
    }
    let mut parts = Vec::new();
    let mut cmp = |name: &str, gv: u64, fv: u64| {
        if gv != fv {
            parts.push(format!("{name}: golden={gv} faulty={fv}"));
        }
    };
    cmp("version_digest", g.version_digest, f.version_digest);
    cmp("versioned_blocks", g.versioned_blocks, f.versioned_blocks);
    cmp("cow_faults", g.cow_faults, f.cow_faults);
    cmp("logical_pages", g.logical_pages, f.logical_pages);
    cmp("physical_pages", g.physical_pages, f.physical_pages);
    cmp("refs_done", g.refs_done, f.refs_done);
    Some(parts.join("; "))
}

/// Runs one benchmark with panics converted into `Err(message)` so a
/// worker bug cannot take down the whole sweep.
fn run_caught(
    kind: ProtocolKind,
    benchmark: Benchmark,
    cfg: &SystemConfig,
    store: Option<&SnapshotStore>,
) -> Result<Result<RunResult, SimError>, String> {
    panic::catch_unwind(AssertUnwindSafe(|| {
        run_benchmark_with_store(kind, benchmark, cfg, store)
    }))
    .map_err(cmpsim_engine::par::panic_message)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn differential_recovers_and_verifies() {
        let cfg = SystemConfig::smoke()
            .with_fault_plan(Some(FaultPlan::recoverable(42)));
        match run_differential(ProtocolKind::DiCo, Benchmark::Apache, &cfg) {
            DiffOutcome::Verified(r) => {
                assert!(r.effective_cycles.is_some());
                assert!(r.faults.is_some());
            }
            other => panic!("expected verified recovery, got {other:?}"),
        }
    }

    #[test]
    fn sweep_smoke_passes() {
        let cfg = SystemConfig::smoke();
        let plans = [FaultPlan::recoverable(1), FaultPlan::recoverable(2)];
        let report = chaos_sweep(
            &[ProtocolKind::Directory, ProtocolKind::DiCoArin],
            &[Benchmark::Radix],
            &plans,
            &cfg,
        );
        assert_eq!(report.cells.len(), 4);
        assert!(report.passed(), "violations: {:?}", report.violations());
    }
}
