//! Run provenance manifests: deterministic content-hashed identity for
//! every simulation run and every JSON artifact it produces.
//!
//! A [`RunManifest`] is computed from the run's *inputs* — the full
//! [`SystemConfig`] (canonical JSON, including seed and fault plan),
//! the protocol, the benchmark, the artifact schema versions and the
//! tool version. Two runs with the same manifest `run_id` are the same
//! experiment and (because the simulator is deterministic) must produce
//! byte-identical deterministic artifacts; `cmpsim-cli compare` treats
//! a counter mismatch under an equal `run_id` as a determinism
//! violation rather than an ordinary regression.
//!
//! Observability knobs (tracing, interval sampling, attribution) do
//! **not** change the hash: they are timing-invariant observers, so a
//! traced run is still the same run. Host-side data (wall clock, RSS)
//! never enters the manifest either — it lives in the separate
//! host-profile export, which *references* the `run_id`.
//!
//! The `run_id` is exactly the content-addressed cache key the ROADMAP
//! sweep orchestrator (item 5) needs: artifact already exists for this
//! `run_id` → skip the cell.

use crate::config::SystemConfig;
use crate::replay::{config_to_json, Value};
use cmpsim_engine::rng::splitmix64;
use cmpsim_protocols::ProtocolKind;
use cmpsim_workloads::Benchmark;

/// Schema tag of the manifest object itself.
pub const MANIFEST_SCHEMA: &str = "cmpsim-manifest-v1";

/// Schema tags/versions of every artifact family this tool emits, in a
/// fixed order. They are part of the content hash: bumping any artifact
/// schema re-keys all runs, which is intended — the artifacts are no
/// longer interchangeable with the old ones.
pub const ARTIFACT_SCHEMAS: &[(&str, &str)] = &[
    ("crashdump", "2"),
    ("breakdown", "cmpsim-breakdown-v1"),
    ("manifest", MANIFEST_SCHEMA),
    ("compare", "cmpsim-compare-v1"),
    ("progress", "cmpsim-progress-v1"),
    ("hostprofile", "cmpsim-hostprofile-v1"),
    ("vmstat", "cmpsim-vmstat-v1"),
    ("heatmap", "cmpsim-heatmap-v1"),
    ("sweep", "cmpsim-sweep-v1"),
];

/// Provenance record of one simulation run, embedded in every JSON
/// artifact under the `"manifest"` key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunManifest {
    /// Content hash over (config, protocol, benchmark, schema
    /// versions, tool version), as 16 lowercase hex digits.
    pub run_id: String,
    /// Content hash of the canonical config JSON alone (shared by the
    /// whole protocol matrix of one configuration).
    pub config_digest: String,
    /// Emitting tool name.
    pub tool: &'static str,
    /// Emitting tool version (crate version).
    pub tool_version: &'static str,
    /// Protocol report name.
    pub protocol: String,
    /// Benchmark report name.
    pub benchmark: String,
    /// PRNG seed (also inside the hashed config; surfaced for humans).
    pub seed: u64,
    /// References per core (the run-length knob).
    pub refs_per_core: u64,
    /// VM placement, `matched` or `alternative`.
    pub placement: String,
    /// Fault plan spec (`mode@seed`), or `None` for fault-free runs.
    pub fault_spec: Option<String>,
}

/// FNV-1a over `bytes` folded into `h`, with a splitmix64 finalizer so
/// single-bit input changes diffuse through all 64 output bits.
pub(crate) fn digest(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h = (h ^ u64::from(b)).wrapping_mul(0x0000_0100_0000_01b3);
    }
    let mut state = h;
    splitmix64(&mut state)
}

pub(crate) fn hex16(h: u64) -> String {
    format!("{h:016x}")
}

impl RunManifest {
    /// Builds the manifest of one (protocol, benchmark, config) cell.
    pub fn new(protocol: ProtocolKind, benchmark: Benchmark, cfg: &SystemConfig) -> Self {
        let mut canon = String::new();
        config_to_json(cfg).render_to(&mut canon);
        let config_digest = digest(canon.as_bytes());

        let mut keyed = canon;
        keyed.push('\n');
        keyed.push_str(protocol.name());
        keyed.push('\n');
        keyed.push_str(benchmark.name());
        for (name, tag) in ARTIFACT_SCHEMAS {
            keyed.push('\n');
            keyed.push_str(name);
            keyed.push('=');
            keyed.push_str(tag);
        }
        keyed.push('\n');
        keyed.push_str(env!("CARGO_PKG_VERSION"));

        Self {
            run_id: hex16(digest(keyed.as_bytes())),
            config_digest: hex16(config_digest),
            tool: "cmpsim",
            tool_version: env!("CARGO_PKG_VERSION"),
            protocol: protocol.name().to_string(),
            benchmark: benchmark.name().to_string(),
            seed: cfg.seed,
            refs_per_core: cfg.refs_per_core,
            placement: match cfg.placement {
                cmpsim_virt::Placement::Matched => "matched".to_string(),
                cmpsim_virt::Placement::Alternative => "alternative".to_string(),
            },
            fault_spec: cfg.fault_plan.as_ref().map(|p| p.spec()),
        }
    }

    /// The manifest as a JSON value (the `"manifest"` artifact field).
    pub fn to_value(&self) -> Value {
        let mut schemas = Value::object();
        for (name, tag) in ARTIFACT_SCHEMAS {
            schemas.set(name, Value::string(tag));
        }
        let mut j = Value::object();
        j.set("schema", Value::string(MANIFEST_SCHEMA));
        j.set("run_id", Value::string(&self.run_id));
        j.set("config_digest", Value::string(&self.config_digest));
        j.set("tool", Value::string(self.tool));
        j.set("tool_version", Value::string(self.tool_version));
        j.set("protocol", Value::string(&self.protocol));
        j.set("benchmark", Value::string(&self.benchmark));
        j.set("seed", Value::uint(self.seed));
        j.set("refs_per_core", Value::uint(self.refs_per_core));
        j.set("placement", Value::string(&self.placement));
        j.set(
            "fault_spec",
            match &self.fault_spec {
                Some(s) => Value::string(s),
                None => Value::Null,
            },
        );
        j.set("schemas", schemas);
        j
    }

    /// Standalone manifest JSON document (for `--manifest-out`).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        self.to_value().render_to(&mut out);
        out.push('\n');
        out
    }

    /// Reads a manifest back from an artifact's `"manifest"` field.
    pub fn from_value(v: &Value) -> Result<Self, String> {
        let schema = v.field("schema")?.as_str()?;
        if schema != MANIFEST_SCHEMA {
            return Err(format!("unsupported manifest schema {schema:?}"));
        }
        Ok(Self {
            run_id: v.field("run_id")?.as_str()?.to_string(),
            config_digest: v.field("config_digest")?.as_str()?.to_string(),
            tool: "cmpsim",
            tool_version: env!("CARGO_PKG_VERSION"),
            protocol: v.field("protocol")?.as_str()?.to_string(),
            benchmark: v.field("benchmark")?.as_str()?.to_string(),
            seed: v.field("seed")?.as_u64()?,
            refs_per_core: v.field("refs_per_core")?.as_u64()?,
            placement: v.field("placement")?.as_str()?.to_string(),
            fault_spec: match v.field("fault_spec")? {
                Value::Null => None,
                other => Some(other.as_str()?.to_string()),
            },
        })
    }

    /// Stamps this manifest into an existing JSON artifact: parses the
    /// document, inserts `"manifest"` as the *first* object field and
    /// re-renders. The rest of the document round-trips byte-exactly
    /// (the JSON tree keeps raw number tokens and field order), so
    /// stamping preserves determinism: same artifact + same manifest →
    /// same stamped bytes.
    pub fn stamp(&self, body: &str) -> Result<String, String> {
        let had_newline = body.ends_with('\n');
        let mut doc = Value::parse(body)?;
        match &mut doc {
            Value::Obj(fields) => {
                fields.retain(|(k, _)| k != "manifest");
                fields.insert(0, ("manifest".to_string(), self.to_value()));
            }
            _ => return Err("cannot stamp a manifest into a non-object artifact".to_string()),
        }
        let mut out = String::new();
        doc.render_to(&mut out);
        if had_newline {
            out.push('\n');
        }
        Ok(out)
    }
}

/// Reads the manifest embedded in an artifact JSON document, if any.
pub fn manifest_of(doc: &Value) -> Option<RunManifest> {
    doc.field("manifest").ok().and_then(|m| RunManifest::from_value(m).ok())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn base() -> SystemConfig {
        SystemConfig::smoke()
    }

    #[test]
    fn same_inputs_same_id() {
        let a = RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base());
        let b = RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base());
        assert_eq!(a, b);
        assert_eq!(a.run_id.len(), 16);
    }

    #[test]
    fn any_input_change_changes_id() {
        let a = RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base());
        let ids = [
            RunManifest::new(ProtocolKind::Directory, Benchmark::Apache, &base()),
            RunManifest::new(ProtocolKind::DiCo, Benchmark::Radix, &base()),
            RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base().with_seed(99)),
            RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base().with_refs(777)),
            RunManifest::new(
                ProtocolKind::DiCo,
                Benchmark::Apache,
                &base().with_fault_plan(Some(cmpsim_engine::FaultPlan::recoverable(7))),
            ),
        ];
        for other in &ids {
            assert_ne!(a.run_id, other.run_id);
        }
    }

    #[test]
    fn observability_knobs_do_not_change_id() {
        let plain = RunManifest::new(ProtocolKind::DiCoArin, Benchmark::Jbb, &base());
        let traced = RunManifest::new(
            ProtocolKind::DiCoArin,
            Benchmark::Jbb,
            &base().with_tracing().with_interval(500).with_attribution(),
        );
        assert_eq!(plain.run_id, traced.run_id);
    }

    #[test]
    fn stamp_round_trips_and_leads_document() {
        let m = RunManifest::new(ProtocolKind::DiCo, Benchmark::Apache, &base());
        let body = "{\n  \"counters\": {\n    \"sim.cycles\": 42\n  }\n}\n";
        let stamped = m.stamp(body).unwrap();
        assert!(stamped.starts_with("{\n  \"manifest\": {"), "{stamped}");
        assert!(stamped.ends_with('\n'));
        let doc = Value::parse(&stamped).unwrap();
        let got = manifest_of(&doc).expect("embedded manifest parses");
        assert_eq!(got.run_id, m.run_id);
        assert_eq!(doc.field("counters").unwrap().field("sim.cycles").unwrap().as_u64().unwrap(), 42);
        // Stamping is idempotent: re-stamping replaces, not duplicates.
        assert_eq!(m.stamp(&stamped).unwrap(), stamped);
    }
}
