//! Interval time-series sampling.
//!
//! When [`SystemConfig::sample_interval`](crate::SystemConfig) is set,
//! the simulator snapshots the chip every `N` cycles of the measured
//! (post-warm-up) window: link utilization, cache occupancy, prediction
//! and home (directory / owner-cache) hit rates, and dynamic + static
//! energy. Each sample is a *delta* over its interval, so the series
//! integrates back to the end-of-run totals, and a final partial sample
//! covers the tail when the run does not end on an interval boundary.
//!
//! Samples are taken at the first processed event at or after each
//! boundary — the event loop only observes time at event granularity —
//! so a sample labelled `[start, end)` may include the counters of one
//! event past `end`. The slop is bounded by a single event and the
//! series stays deterministic.

use crate::replay::Value;
use cmpsim_engine::phase::{Phase, PHASES};
use cmpsim_engine::Cycle;
use cmpsim_protocols::Occupancy;
use std::fmt::Write as _;

/// The cumulative counter snapshot a sample is diffed against.
#[derive(Debug, Clone, Default)]
pub struct CumSnapshot {
    /// NoC messages sent.
    pub messages: u64,
    /// Per-router routing events (link traversals).
    pub hops: u64,
    /// Flit-link traversals.
    pub flit_links: u64,
    /// Link contention stall cycles.
    pub contention: u64,
    /// Per-directed-link busy flit counts (`Mesh::link_busy`).
    pub link_busy: Vec<u64>,
    /// Per-directed-link contention stall cycles
    /// (`Mesh::link_contention`).
    pub link_stall: Vec<u64>,
    /// Per-tile L1 miss counts (measurement window).
    pub tile_misses: Vec<u64>,
    /// Predictor lookups / hits (DiCo family).
    pub pred_lookups: u64,
    /// Predictor hits.
    pub pred_hits: u64,
    /// Ordering-point (directory / L2C$) lookups.
    pub home_lookups: u64,
    /// Ordering-point hits.
    pub home_hits: u64,
    /// References retired across all cores.
    pub refs: u64,
    /// Cumulative cache dynamic energy (nJ).
    pub cache_nj: f64,
    /// Cumulative network dynamic energy (nJ).
    pub net_nj: f64,
    /// Cumulative per-phase miss-latency cycles (attribution totals,
    /// indexed by [`Phase::index`]; all zero when attribution is off).
    pub phase: [u64; PHASES],
    /// Faults injected so far (all kinds; zero when injection is off).
    pub faults_injected: u64,
    /// Protocol-level retransmissions so far (zero when injection is
    /// off).
    pub retries: u64,
    /// MSHR timeouts fired so far (zero when injection is off).
    pub timeouts: u64,
}

/// One interval's worth of activity.
#[derive(Debug, Clone)]
pub struct IntervalSample {
    /// First cycle of the interval.
    pub start: Cycle,
    /// One past the last cycle of the interval.
    pub end: Cycle,
    /// References retired in the interval.
    pub refs: u64,
    /// NoC messages sent.
    pub messages: u64,
    /// Link traversals (routing events).
    pub hops: u64,
    /// Flit-link traversals.
    pub flit_links: u64,
    /// Link contention stall cycles.
    pub contention: u64,
    /// Mean utilization over all physical directed links, in `[0, 1]`.
    pub link_util_mean: f64,
    /// Utilization of the busiest directed link.
    pub link_util_max: f64,
    /// Flits the single busiest directed link carried in the interval
    /// (numerator of [`Self::link_util_max`]).
    pub hot_link_flits: u64,
    /// Stall cycles on the single most contended directed link in the
    /// interval.
    pub hot_link_stall: u64,
    /// L1 misses of the single hottest tile in the interval.
    pub hot_tile_misses: u64,
    /// L1 fill fraction at the sample point.
    pub l1_occ: f64,
    /// L2 fill fraction at the sample point.
    pub l2_occ: f64,
    /// Auxiliary-structure fill fraction at the sample point.
    pub aux_occ: f64,
    /// Predictor lookups in the interval.
    pub pred_lookups: u64,
    /// Predictor hits in the interval.
    pub pred_hits: u64,
    /// Ordering-point lookups in the interval.
    pub home_lookups: u64,
    /// Ordering-point hits in the interval.
    pub home_hits: u64,
    /// Cache dynamic energy spent in the interval (nJ).
    pub cache_nj: f64,
    /// Network dynamic energy spent in the interval (nJ).
    pub net_nj: f64,
    /// Static (leakage) energy over the interval (nJ).
    pub static_nj: f64,
    /// Per-phase miss-latency cycles attributed to transactions that
    /// completed in the interval (all zero when attribution is off).
    pub phase: [u64; PHASES],
    /// Faults injected in the interval (all kinds; zero when fault
    /// injection is off).
    pub faults_injected: u64,
    /// Request retransmissions in the interval (zero when injection is
    /// off).
    pub retries: u64,
    /// MSHR timeouts fired in the interval (zero when injection is
    /// off).
    pub timeouts: u64,
}

impl IntervalSample {
    /// Cycles the interval covers.
    pub fn cycles(&self) -> u64 {
        self.end - self.start
    }

    /// Total energy (dynamic + static) of the interval (nJ).
    pub fn total_nj(&self) -> f64 {
        self.cache_nj + self.net_nj + self.static_nj
    }
}

/// Collects [`IntervalSample`]s over the measured window.
#[derive(Debug, Clone)]
pub struct IntervalSampler {
    interval: u64,
    /// Start of the interval being accumulated.
    window_start: Cycle,
    /// Next boundary a sample is due at.
    next_boundary: Cycle,
    prev: CumSnapshot,
    /// Per-tile static power in mW (1 GHz: 1 mW = 1 pJ/cycle).
    static_mw_per_tile: f64,
    tiles: u64,
    /// Physical directed links (mean-utilization denominator).
    links: usize,
    samples: Vec<IntervalSample>,
}

impl IntervalSampler {
    /// Creates a sampler whose first interval starts at `start` (the
    /// warm-up boundary, right after the stat reset — `base` is the
    /// cumulative snapshot at that point, normally all zeros).
    pub fn new(
        interval: u64,
        start: Cycle,
        base: CumSnapshot,
        static_mw_per_tile: f64,
        tiles: u64,
        links: usize,
    ) -> Self {
        let interval = interval.max(1);
        Self {
            interval,
            window_start: start,
            next_boundary: start + interval,
            prev: base,
            static_mw_per_tile,
            tiles,
            links: links.max(1),
            samples: Vec::new(),
        }
    }

    /// True when `now` has reached the next boundary (caller should
    /// take a snapshot and call [`Self::sample`]).
    pub fn due(&self, now: Cycle) -> bool {
        now >= self.next_boundary
    }

    /// Closes the interval `[window_start, end)` against `cum` and
    /// opens the next one.
    fn close(&mut self, end: Cycle, cum: &CumSnapshot, occ: &Occupancy) {
        let dur = end.saturating_sub(self.window_start).max(1);
        let busy_dt: Vec<u64> = cum
            .link_busy
            .iter()
            .zip(self.prev.link_busy.iter().chain(std::iter::repeat(&0)))
            .map(|(now, then)| now.saturating_sub(*then))
            .collect();
        let total_busy: u64 = busy_dt.iter().sum();
        let max_busy = busy_dt.iter().copied().max().unwrap_or(0);
        let delta_max = |now: &[u64], then: &[u64]| {
            now.iter()
                .zip(then.iter().chain(std::iter::repeat(&0)))
                .map(|(n, t)| n.saturating_sub(*t))
                .max()
                .unwrap_or(0)
        };
        let hot_stall = delta_max(&cum.link_stall, &self.prev.link_stall);
        let hot_misses = delta_max(&cum.tile_misses, &self.prev.tile_misses);
        self.samples.push(IntervalSample {
            start: self.window_start,
            end,
            refs: cum.refs - self.prev.refs,
            messages: cum.messages - self.prev.messages,
            hops: cum.hops - self.prev.hops,
            flit_links: cum.flit_links - self.prev.flit_links,
            contention: cum.contention - self.prev.contention,
            link_util_mean: total_busy as f64 / (self.links as u64 * dur) as f64,
            link_util_max: max_busy as f64 / dur as f64,
            hot_link_flits: max_busy,
            hot_link_stall: hot_stall,
            hot_tile_misses: hot_misses,
            l1_occ: occ.l1_frac(),
            l2_occ: occ.l2_frac(),
            aux_occ: occ.aux_frac(),
            pred_lookups: cum.pred_lookups - self.prev.pred_lookups,
            pred_hits: cum.pred_hits - self.prev.pred_hits,
            home_lookups: cum.home_lookups - self.prev.home_lookups,
            home_hits: cum.home_hits - self.prev.home_hits,
            cache_nj: cum.cache_nj - self.prev.cache_nj,
            net_nj: cum.net_nj - self.prev.net_nj,
            static_nj: self.static_mw_per_tile * self.tiles as f64 * dur as f64 * 1e-3,
            phase: std::array::from_fn(|i| cum.phase[i] - self.prev.phase[i]),
            faults_injected: cum.faults_injected - self.prev.faults_injected,
            retries: cum.retries - self.prev.retries,
            timeouts: cum.timeouts - self.prev.timeouts,
        });
        self.prev = cum.clone();
        self.window_start = end;
    }

    /// Takes the sample(s) due at `now`. Quiet stretches spanning
    /// several boundaries produce one sample per boundary, so the
    /// series has no gaps.
    pub fn sample(&mut self, now: Cycle, cum: &CumSnapshot, occ: &Occupancy) {
        while now >= self.next_boundary {
            let end = self.next_boundary;
            self.close(end, cum, occ);
            self.next_boundary += self.interval;
        }
    }

    /// Ends the series at `now`, emitting a final partial sample when
    /// the run stopped mid-interval.
    pub fn finish(mut self, now: Cycle, cum: &CumSnapshot, occ: &Occupancy) -> TimeSeries {
        self.sample(now, cum, occ);
        if now > self.window_start {
            self.close(now, cum, occ);
        }
        TimeSeries { interval: self.interval, samples: self.samples }
    }
}

/// The exported per-interval series of one run.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    /// The configured sampling interval (the last sample may be
    /// shorter).
    pub interval: u64,
    /// Samples in time order, covering the measured window end to end.
    pub samples: Vec<IntervalSample>,
}

/// CSV column headers, in emission order. The eight `phase_*` columns
/// follow [`Phase::all`] order (attribution cycles; zero when off).
const CSV_HEADER: &str = "start,end,cycles,refs,messages,hops,flit_links,contention_cycles,\
link_util_mean,link_util_max,hot_link_flits,hot_link_stall,hot_tile_misses,\
l1_occ,l2_occ,aux_occ,\
pred_lookups,pred_hits,home_lookups,home_hits,\
cache_dyn_nj,net_dyn_nj,static_nj,total_nj,\
phase_req_net,phase_home,phase_owner_ind,phase_memory,\
phase_data_net,phase_inv,phase_retry,phase_fill,\
faults_injected,fault_retries,fault_timeouts";

impl TimeSeries {
    /// Renders the series as CSV (deterministic, one row per sample).
    pub fn to_csv(&self) -> String {
        let mut out = String::from(CSV_HEADER);
        out.push('\n');
        for s in &self.samples {
            let _ = writeln!(
                out,
                "{},{},{},{},{},{},{},{},{:.6},{:.6},{},{},{},{:.6},{:.6},{:.6},{},{},{},{},\
                 {:.3},{:.3},{:.3},{:.3},{},{},{},{},{},{},{},{},{},{},{}",
                s.start,
                s.end,
                s.cycles(),
                s.refs,
                s.messages,
                s.hops,
                s.flit_links,
                s.contention,
                s.link_util_mean,
                s.link_util_max,
                s.hot_link_flits,
                s.hot_link_stall,
                s.hot_tile_misses,
                s.l1_occ,
                s.l2_occ,
                s.aux_occ,
                s.pred_lookups,
                s.pred_hits,
                s.home_lookups,
                s.home_hits,
                s.cache_nj,
                s.net_nj,
                s.static_nj,
                s.total_nj(),
                s.phase[0],
                s.phase[1],
                s.phase[2],
                s.phase[3],
                s.phase[4],
                s.phase[5],
                s.phase[6],
                s.phase[7],
                s.faults_injected,
                s.retries,
                s.timeouts,
            );
        }
        out
    }

    /// Renders the series as a JSON document.
    pub fn to_json(&self) -> String {
        let mut j = Value::object();
        j.set("interval", Value::uint(self.interval));
        let rows = self
            .samples
            .iter()
            .map(|s| {
                let mut r = Value::object();
                r.set("start", Value::uint(s.start));
                r.set("end", Value::uint(s.end));
                r.set("refs", Value::uint(s.refs));
                r.set("messages", Value::uint(s.messages));
                r.set("hops", Value::uint(s.hops));
                r.set("flit_links", Value::uint(s.flit_links));
                r.set("contention_cycles", Value::uint(s.contention));
                r.set("link_util_mean", Value::float(s.link_util_mean));
                r.set("link_util_max", Value::float(s.link_util_max));
                r.set("hot_link_flits", Value::uint(s.hot_link_flits));
                r.set("hot_link_stall", Value::uint(s.hot_link_stall));
                r.set("hot_tile_misses", Value::uint(s.hot_tile_misses));
                r.set("l1_occ", Value::float(s.l1_occ));
                r.set("l2_occ", Value::float(s.l2_occ));
                r.set("aux_occ", Value::float(s.aux_occ));
                r.set("pred_lookups", Value::uint(s.pred_lookups));
                r.set("pred_hits", Value::uint(s.pred_hits));
                r.set("home_lookups", Value::uint(s.home_lookups));
                r.set("home_hits", Value::uint(s.home_hits));
                r.set("cache_dyn_nj", Value::float(s.cache_nj));
                r.set("net_dyn_nj", Value::float(s.net_nj));
                r.set("static_nj", Value::float(s.static_nj));
                for p in Phase::all() {
                    r.set(&format!("phase_{}", p.key()), Value::uint(s.phase[p.index()]));
                }
                r.set("faults_injected", Value::uint(s.faults_injected));
                r.set("fault_retries", Value::uint(s.retries));
                r.set("fault_timeouts", Value::uint(s.timeouts));
                r
            })
            .collect();
        j.set("samples", Value::Arr(rows));
        let mut out = String::new();
        j.render_to(&mut out);
        out.push('\n');
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cum(refs: u64, hops: u64, busy: Vec<u64>) -> CumSnapshot {
        CumSnapshot {
            messages: hops / 2,
            hops,
            flit_links: hops * 3,
            contention: 0,
            link_stall: busy.iter().map(|b| b / 4).collect(),
            tile_misses: vec![refs, refs / 2],
            link_busy: busy,
            pred_lookups: refs / 10,
            pred_hits: refs / 20,
            home_lookups: refs / 5,
            home_hits: refs / 10,
            refs,
            cache_nj: refs as f64 * 0.5,
            net_nj: hops as f64 * 0.1,
            phase: std::array::from_fn(|i| refs * (i as u64 + 1)),
            faults_injected: refs / 4,
            retries: 0,
            timeouts: 0,
        }
    }

    #[test]
    fn samples_are_deltas() {
        let mut s = IntervalSampler::new(100, 1000, CumSnapshot::default(), 200.0, 4, 8);
        assert!(!s.due(1099));
        assert!(s.due(1100));
        s.sample(1100, &cum(40, 80, vec![40; 8]), &Occupancy::default());
        s.sample(1200, &cum(100, 200, vec![100; 8]), &Occupancy::default());
        let ts = s.finish(1200, &cum(100, 200, vec![100; 8]), &Occupancy::default());
        assert_eq!(ts.samples.len(), 2);
        assert_eq!(ts.samples[0].refs, 40);
        assert_eq!(ts.samples[1].refs, 60);
        assert_eq!(ts.samples[1].hops, 120);
        // Phase columns are deltas too (helper: phase[i] = refs * (i+1)).
        assert_eq!(ts.samples[0].phase[0], 40);
        assert_eq!(ts.samples[1].phase[0], 60);
        assert_eq!(ts.samples[1].phase[7], 60 * 8);
        // Fault counters are deltas too (helper: faults = refs / 4).
        assert_eq!(ts.samples[0].faults_injected, 10);
        assert_eq!(ts.samples[1].faults_injected, 15);
        // 40 busy flit-cycles per link over a 100-cycle interval.
        assert!((ts.samples[0].link_util_mean - 0.4).abs() < 1e-12);
        assert!((ts.samples[0].link_util_max - 0.4).abs() < 1e-12);
        // Hot-spot columns are per-interval maxima of the spatial deltas
        // (helper: stall = busy / 4, tile_misses = [refs, refs / 2]).
        assert_eq!(ts.samples[0].hot_link_flits, 40);
        assert_eq!(ts.samples[0].hot_link_stall, 10);
        assert_eq!(ts.samples[0].hot_tile_misses, 40);
        assert_eq!(ts.samples[1].hot_link_flits, 60);
        assert_eq!(ts.samples[1].hot_link_stall, 15);
        assert_eq!(ts.samples[1].hot_tile_misses, 60);
        // 200 mW x 4 tiles x 100 cycles = 80 nJ of leakage.
        assert!((ts.samples[0].static_nj - 80.0).abs() < 1e-9);
    }

    #[test]
    fn final_partial_sample_covers_the_tail() {
        let mut s = IntervalSampler::new(100, 0, CumSnapshot::default(), 0.0, 1, 4);
        s.sample(100, &cum(10, 20, vec![5; 4]), &Occupancy::default());
        let ts = s.finish(130, &cum(16, 24, vec![8; 4]), &Occupancy::default());
        assert_eq!(ts.samples.len(), 2);
        let tail = &ts.samples[1];
        assert_eq!((tail.start, tail.end), (100, 130));
        assert_eq!(tail.cycles(), 30);
        assert_eq!(tail.refs, 6);
        assert_eq!(tail.hops, 4);
    }

    #[test]
    fn series_integrates_to_totals() {
        let mut s = IntervalSampler::new(50, 0, CumSnapshot::default(), 100.0, 2, 4);
        for t in 1..=7 {
            s.sample(t * 50, &cum(t * 9, t * 13, vec![t; 4]), &Occupancy::default());
        }
        let last = cum(80, 100, vec![9; 4]);
        let ts = s.finish(371, &last, &Occupancy::default());
        assert_eq!(ts.samples.iter().map(|x| x.refs).sum::<u64>(), 80);
        assert_eq!(ts.samples.iter().map(|x| x.hops).sum::<u64>(), 100);
        assert_eq!(ts.samples.last().unwrap().end, 371);
        // Static energy integrates over the whole covered window.
        let static_total: f64 = ts.samples.iter().map(|x| x.static_nj).sum();
        assert!((static_total - 100.0 * 2.0 * 371.0 * 1e-3).abs() < 1e-9);
    }

    #[test]
    fn quiet_stretches_emit_empty_samples() {
        let mut s = IntervalSampler::new(10, 0, CumSnapshot::default(), 0.0, 1, 4);
        // One event at cycle 35 crosses three boundaries at once.
        s.sample(35, &cum(5, 5, vec![1; 4]), &Occupancy::default());
        let ts = s.finish(35, &cum(5, 5, vec![1; 4]), &Occupancy::default());
        assert_eq!(ts.samples.len(), 4);
        // All activity lands in the first closed interval; the rest are
        // zero-delta fillers.
        assert_eq!(ts.samples[0].refs, 5);
        assert!(ts.samples[1..].iter().all(|x| x.refs == 0 && x.hops == 0));
    }

    #[test]
    fn csv_and_json_shape() {
        let mut s = IntervalSampler::new(10, 0, CumSnapshot::default(), 0.0, 1, 4);
        s.sample(5, &cum(2, 3, vec![1; 4]), &Occupancy::default());
        let ts = s.finish(10, &cum(5, 8, vec![2; 4]), &Occupancy::default());
        let csv = ts.to_csv();
        let mut lines = csv.lines();
        let header = lines.next().unwrap();
        assert!(header.starts_with("start,end,cycles,refs"));
        let row = lines.next().unwrap();
        assert_eq!(row.split(',').count(), header.split(',').count());
        let json = ts.to_json();
        let v = Value::parse(&json).expect("valid json");
        assert_eq!(v.field("interval").unwrap().as_u64().unwrap(), 10);
        match v.field("samples").unwrap() {
            Value::Arr(rows) => assert_eq!(rows.len(), 1),
            other => panic!("samples not an array: {other:?}"),
        }
    }
}
