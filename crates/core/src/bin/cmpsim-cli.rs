//! Command-line front end for the simulator.
//!
//! ```text
//! cmpsim-cli run  [--protocol P] [--benchmark B] [--refs N] [--alt] [--seed S]
//!                 [--max-events N] [--check] [observability flags]
//! cmpsim-cli stats [run options]                # run + full metrics registry dump
//! cmpsim-cli matrix [--refs N] [--alt] [...]    # all protocols x one benchmark set
//! cmpsim-cli breakdown [run options]            # Fig. 7/8-style latency & energy
//!                                               # attribution, all four protocols
//! cmpsim-cli vmstat [run options]               # per-VM tables, cross-VM
//!                                               # interference matrix, ASCII mesh
//!                                               # heatmaps, all four protocols
//! cmpsim-cli report [run options] [--all-benchmarks] [--out report.md]
//!                                               # deterministic Markdown matrix
//!                                               # report (run ledger + tables)
//! cmpsim-cli compare A.json B.json [--tol F] [--allow-improved] [--out diff.json]
//! cmpsim-cli compare --baseline cur.json base.json [--threshold F] [--rebaseline]
//!                                               # structural run diff / CI
//!                                               # regression gate (nonzero exit)
//! cmpsim-cli tables                             # Tables V, VI, VII (analytic)
//! cmpsim-cli replay <artifact.json> [--check] [--snapshot-dir D]
//!                                               # re-run a crash dump (resumes
//!                                               # from the warmed checkpoint
//!                                               # when one is on disk)
//! cmpsim-cli sweep [-p P[,P..]] [-b B[,B..]] [--seeds S,S..] [--plans SPEC,..]
//!                  [--refs N] [--small|--paper] [--alt] [--out-dir D]
//!                  [--journal F] [--deadline-ms N] [--retries N]
//!                  [--backoff-ms N] [--inject panic@I|hang@I|flaky@I[:N]]...
//!                  [--threads N] [--snapshot-dir D] [--report-out F]
//! cmpsim-cli sweep --resume <journal> [--threads N] [--report-out F]
//!                                               # resilient job-queue sweep:
//!                                               # per-cell catch_unwind +
//!                                               # deadline, retry w/ backoff,
//!                                               # quarantine, crash-resumable
//!                                               # NDJSON journal; exits nonzero
//!                                               # when cells were lost (the
//!                                               # partial report still lists
//!                                               # every failed cell + E-code)
//! cmpsim-cli chaos [--plans N] [--mode M] [--seed S] [--refs N]
//!                  [--small] [--alt] [-p P] [-b B] [--progress-out F]
//!                  [--json-out F] [--report-out F] [--threads N]
//!                  [--snapshot-dir D]           # seeded fault-injection soak
//! cmpsim-cli list                               # protocols & benchmarks
//! ```
//!
//! Observability flags (run / stats / matrix / breakdown / vmstat):
//!
//! ```text
//! --trace-out <file>      record the coherence-transaction trace and
//!                         write Chrome trace-event JSON (Perfetto-loadable)
//! --interval <cycles>     sample an interval time-series every N cycles
//! --series-out <file>     write the time-series (.csv -> CSV, else JSON)
//! --metrics-out <file>    write the unified metrics registry as JSON
//! --attr                  per-transaction critical-path & energy attribution
//! --breakdown-out <file>  write the attribution breakdown
//!                         (.csv -> CSV, else JSON; implies --attr)
//! --vmstat-out <file>     write per-VM stats + the cross-VM interference
//!                         matrix as JSON (implies --attr)
//! --heatmap-out <file>    write per-tile/per-link spatial counters
//!                         (.csv -> long-format CSV, else JSON grids)
//! --threads <n>           worker threads for sweeps (default: one per host
//!                         core; the CMPSIM_THREADS environment variable sets
//!                         the default)
//! --snapshot-dir <dir>    cache warmed-state checkpoints: the first run of a
//!                         configuration snapshots at the warm-up boundary,
//!                         every later run sharing its key forks from the
//!                         image and skips warm-up entirely (results stay
//!                         bit-identical; observer runs — --trace-out,
//!                         --check, --attr — always run cold)
//! --manifest-out <file>   write the run manifest (run ledger entry) alone
//! --host-profile-out <f>  write the host self-profile JSON (wall-clock,
//!                         nondeterministic; keyed by manifest run_id)
//! --progress-out <file>   live sweep telemetry as NDJSON (run/matrix/report/chaos)
//! ```
//!
//! Every deterministic JSON artifact (metrics, time-series, trace,
//! breakdown, crash dump) embeds a `manifest` object: a content-hashed
//! `run_id` over (config, protocol, benchmark, seed, fault plan, schema
//! versions) plus the tool version, so any two artifacts can be traced
//! to — and compared against — the exact run that produced them.
//!
//! `matrix` writes one file per cell, suffixing the protocol name
//! before the extension (the breakdown artifact is one combined file).
//! Every simulating command prints a host self-profile line (wall-clock
//! spans + simulated-cycles/s throughput) to **stderr**, keeping stdout
//! and every artifact deterministic.
//!
//! Fault injection: `--faults recoverable[@SEED]` or `--faults
//! chaos[@SEED]` (or the `CMPSIM_FAULTS` environment variable) arms a
//! deterministic fault plan on any simulating command. `chaos` sweeps N
//! seeded plans across the protocol x benchmark matrix, verifies every
//! recovered cell bit-identical (in architectural state) against its
//! fault-free golden twin, and exits nonzero on any divergence, panic,
//! or typed error lacking a replay artifact.
//!
//! Protocols: directory | dico | providers | arin.
//! Benchmarks: apache | jbb | radix | lu | volrend | tomcatv |
//! mixed-com | mixed-sci.
//!
//! A failing `run`/`matrix` writes a JSON replay artifact (path printed
//! with the error); `replay` re-runs it deterministically and reports
//! whether the original failure reproduced at the same cycle.
//! `--check` force-enables the coherence invariant checker during the
//! replay, often turning an end-state deadlock into the first broken
//! invariant.

use cmpsim::report::{
    breakdown_csv, breakdown_energy_table, breakdown_json, breakdown_latency_table,
    markdown_chaos_section, markdown_report, table,
};
use cmpsim::chaos::{chaos_sweep_with_options, CellOutcome};
use cmpsim::snapshot::key_hex;
use cmpsim::vmstat::{heatmap_csv, heatmap_json, vmstat_json, vmstat_tables};
use cmpsim::{
    run_benchmark_with_store, run_matrix_with_options, snapshot_eligible, snapshot_key, Benchmark,
    CmpSimulator, FaultPlan, MissClass, Placement, ProtocolKind, ReplayArtifact, RunResult,
    SimError, SnapshotStore, SystemConfig,
};
use cmpsim_power::{leakage_per_tile, overhead_percent};
use std::path::Path;

fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    match s.to_ascii_lowercase().as_str() {
        "directory" | "dir" => Some(ProtocolKind::Directory),
        "dico" => Some(ProtocolKind::DiCo),
        "providers" | "dico-providers" => Some(ProtocolKind::DiCoProviders),
        "arin" | "dico-arin" => Some(ProtocolKind::DiCoArin),
        _ => None,
    }
}

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    match s.to_ascii_lowercase().as_str() {
        "apache" => Some(Benchmark::Apache),
        "jbb" => Some(Benchmark::Jbb),
        "radix" => Some(Benchmark::Radix),
        "lu" => Some(Benchmark::Lu),
        "volrend" => Some(Benchmark::Volrend),
        "tomcatv" => Some(Benchmark::Tomcatv),
        "mixed-com" => Some(Benchmark::MixedCom),
        "mixed-sci" => Some(Benchmark::MixedSci),
        _ => None,
    }
}

struct Options {
    protocol: ProtocolKind,
    benchmark: Benchmark,
    refs: u64,
    seed: u64,
    alt: bool,
    max_events: Option<u64>,
    check: bool,
    trace_out: Option<String>,
    interval: Option<u64>,
    series_out: Option<String>,
    metrics_out: Option<String>,
    attr: bool,
    breakdown_out: Option<String>,
    vmstat_out: Option<String>,
    heatmap_out: Option<String>,
    faults: Option<FaultPlan>,
    manifest_out: Option<String>,
    host_profile_out: Option<String>,
    progress_out: Option<String>,
    out: Option<String>,
    all_benchmarks: bool,
    threads: Option<usize>,
    snapshot_dir: Option<String>,
}

/// Worker-thread default from `CMPSIM_THREADS` (`None` when unset;
/// `--threads` overrides it).
fn env_threads() -> Result<Option<usize>, String> {
    cmpsim::env::positive(cmpsim::env::THREADS).map_err(|e| e.to_string())
}

fn parse_threads(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("bad thread count {v} (want an integer >= 1)")),
    }
}

/// Opens the disk-backed snapshot store when `--snapshot-dir` was
/// given. An unusable directory is fatal: the user asked for reuse.
fn snapshot_store(dir: Option<&str>) -> Option<SnapshotStore> {
    dir.map(|d| {
        SnapshotStore::with_dir(d).unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        })
    })
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        protocol: ProtocolKind::DiCoArin,
        benchmark: Benchmark::Apache,
        refs: 20_000,
        seed: 0xC0FFEE,
        alt: false,
        max_events: None,
        check: false,
        trace_out: None,
        interval: None,
        series_out: None,
        metrics_out: None,
        attr: false,
        breakdown_out: None,
        vmstat_out: None,
        heatmap_out: None,
        faults: None,
        manifest_out: None,
        host_profile_out: None,
        progress_out: None,
        out: None,
        all_benchmarks: false,
        threads: env_threads()?,
        snapshot_dir: None,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--protocol" | "-p" => {
                let v = it.next().ok_or("--protocol needs a value")?;
                o.protocol = parse_protocol(v).ok_or_else(|| format!("unknown protocol {v}"))?;
            }
            "--benchmark" | "-b" => {
                let v = it.next().ok_or("--benchmark needs a value")?;
                o.benchmark =
                    parse_benchmark(v).ok_or_else(|| format!("unknown benchmark {v}"))?;
            }
            "--refs" | "-n" => {
                let v = it.next().ok_or("--refs needs a value")?;
                o.refs = v.parse().map_err(|_| format!("bad refs {v}"))?;
            }
            "--seed" | "-s" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--alt" => o.alt = true,
            "--max-events" => {
                let v = it.next().ok_or("--max-events needs a value")?;
                o.max_events = Some(v.parse().map_err(|_| format!("bad event budget {v}"))?);
            }
            "--check" => o.check = true,
            "--trace-out" => {
                let v = it.next().ok_or("--trace-out needs a file path")?;
                o.trace_out = Some(v.clone());
            }
            "--interval" => {
                let v = it.next().ok_or("--interval needs a cycle count")?;
                o.interval = Some(v.parse().map_err(|_| format!("bad interval {v}"))?);
            }
            "--series-out" => {
                let v = it.next().ok_or("--series-out needs a file path")?;
                o.series_out = Some(v.clone());
            }
            "--metrics-out" => {
                let v = it.next().ok_or("--metrics-out needs a file path")?;
                o.metrics_out = Some(v.clone());
            }
            "--attr" => o.attr = true,
            "--faults" => {
                let v = it.next().ok_or("--faults needs a spec (recoverable[@SEED] | chaos[@SEED])")?;
                o.faults = Some(FaultPlan::parse(v)?);
            }
            "--breakdown-out" => {
                let v = it.next().ok_or("--breakdown-out needs a file path")?;
                o.breakdown_out = Some(v.clone());
            }
            "--vmstat-out" => {
                let v = it.next().ok_or("--vmstat-out needs a file path")?;
                o.vmstat_out = Some(v.clone());
            }
            "--heatmap-out" => {
                let v = it.next().ok_or("--heatmap-out needs a file path")?;
                o.heatmap_out = Some(v.clone());
            }
            "--manifest-out" => {
                let v = it.next().ok_or("--manifest-out needs a file path")?;
                o.manifest_out = Some(v.clone());
            }
            "--host-profile-out" => {
                let v = it.next().ok_or("--host-profile-out needs a file path")?;
                o.host_profile_out = Some(v.clone());
            }
            "--progress-out" => {
                let v = it.next().ok_or("--progress-out needs a file path")?;
                o.progress_out = Some(v.clone());
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a file path")?;
                o.out = Some(v.clone());
            }
            "--all-benchmarks" => o.all_benchmarks = true,
            "--threads" => {
                let v = it.next().ok_or("--threads needs a count")?;
                o.threads = Some(parse_threads(v)?);
            }
            "--snapshot-dir" => {
                let v = it.next().ok_or("--snapshot-dir needs a directory path")?;
                o.snapshot_dir = Some(v.clone());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn config(o: &Options) -> SystemConfig {
    let mut cfg = SystemConfig::paper().with_refs(o.refs).with_seed(o.seed);
    if o.alt {
        cfg = cfg.with_placement(Placement::Alternative);
    }
    if let Some(n) = o.max_events {
        cfg = cfg.with_event_budget(n);
    }
    if o.check {
        cfg = cfg.with_invariant_checks();
    }
    if o.trace_out.is_some() {
        cfg = cfg.with_tracing();
    }
    if let Some(n) = o.interval {
        cfg = cfg.with_interval(n);
    }
    if o.attr || o.breakdown_out.is_some() || o.vmstat_out.is_some() {
        cfg = cfg.with_attribution();
    }
    // The CLI flag wins over the CMPSIM_FAULTS environment variable.
    let plan = match &o.faults {
        Some(p) => Some(p.clone()),
        None => FaultPlan::from_env().unwrap_or_else(|e| {
            eprintln!("error: {e}");
            std::process::exit(2);
        }),
    };
    cfg.with_fault_plan(plan)
}

/// Inserts `tag` before the extension: `out.json` -> `out-dico.json`.
fn suffixed(path: &str, tag: &str) -> String {
    match path.rsplit_once('.') {
        Some((stem, ext)) => format!("{stem}-{tag}.{ext}"),
        None => format!("{path}-{tag}"),
    }
}

fn write_file(path: &str, contents: &str, what: &str) {
    if let Err(e) = std::fs::write(path, contents) {
        eprintln!("error: cannot write {what} to {path}: {e}");
        std::process::exit(1);
    }
    println!("{what}: {path}");
}

/// Writes the per-run observability artifacts the flags asked for.
/// `tag` distinguishes matrix cells (None for single runs).
fn write_outputs(o: &Options, r: &RunResult, tag: Option<&str>) {
    let name = |p: &str| tag.map_or_else(|| p.to_string(), |t| suffixed(p, t));
    if let Some(p) = &o.trace_out {
        let t = r.trace.as_ref().expect("tracing enabled by --trace-out");
        let label = format!("{} on {}", r.protocol.name(), r.benchmark.name());
        println!(
            "trace: {} transactions, {} events buffered ({} dropped), {} hops attributed",
            t.completed_txs,
            t.ring.len(),
            t.ring.dropped(),
            t.tx_hops
        );
        write_file(&name(p), &r.stamp_artifact(t.to_chrome_json(&label)), "trace");
    }
    if let Some(ts) = &r.timeseries {
        println!("time-series: {} samples of {} cycles", ts.samples.len(), ts.interval);
        if let Some(p) = &o.series_out {
            let p = name(p);
            let body = if p.ends_with(".csv") {
                ts.to_csv()
            } else {
                r.stamp_artifact(ts.to_json())
            };
            write_file(&p, &body, "time-series");
        }
    }
    if let Some(p) = &o.metrics_out {
        write_file(&name(p), &r.metrics_json(), "metrics");
    }
    if let Some(p) = &o.manifest_out {
        let m = r.manifest.as_ref().expect("simulator-produced results carry a manifest");
        write_file(&name(p), &m.to_json(), "manifest");
    }
    // The host self-profile is wall-clock (nondeterministic), so it
    // goes to stderr only — stdout and every artifact stay
    // deterministic and byte-comparable. `--host-profile-out` is the
    // side-channel export: its own file, keyed by the manifest run_id.
    if let Some(p) = &o.host_profile_out {
        let run_id = r.manifest.as_ref().map(|m| m.run_id.as_str());
        if let Err(e) = std::fs::write(name(p), r.host.to_json(run_id)) {
            eprintln!("error: cannot write host profile to {p}: {e}");
            std::process::exit(1);
        }
        eprintln!("host profile: {}", name(p));
    }
    eprintln!("{}: {}", r.protocol.name(), r.host.throughput_line());
}

/// Writes the combined breakdown artifact (CSV or JSON by extension).
fn write_breakdown(path: &str, results: &[RunResult]) {
    let body =
        if path.ends_with(".csv") { breakdown_csv(results) } else { breakdown_json(results) };
    write_file(path, &body, "breakdown");
}

/// Writes the combined per-VM statistics artifact (always JSON).
fn write_vmstat(path: &str, results: &[RunResult]) {
    write_file(path, &vmstat_json(results), "vmstat");
}

/// Writes the combined spatial-heatmap artifact (CSV or JSON by
/// extension).
fn write_heatmap(path: &str, results: &[RunResult]) {
    let body = if path.ends_with(".csv") { heatmap_csv(results) } else { heatmap_json(results) };
    write_file(path, &body, "heatmap");
}

/// Writes the sweep-level tenant/spatial artifacts the flags asked
/// for (one combined file each, like the breakdown artifact).
fn write_tenant_outputs(o: &Options, results: &[RunResult]) {
    if let Some(p) = &o.vmstat_out {
        write_vmstat(p, results);
    }
    if let Some(p) = &o.heatmap_out {
        write_heatmap(p, results);
    }
}

/// Prints the Fig. 7/8-style attribution summary for one result on
/// stdout (used by `run`/`stats` when `--attr` is on).
fn print_breakdown_summary(r: &RunResult) {
    let Some(b) = &r.breakdown else { return };
    println!(
        "  attribution: {} misses, {} reconciled exactly, {} still open",
        b.completed, b.reconciled, b.open_txs
    );
    let slice = std::slice::from_ref(r);
    println!("{}", breakdown_latency_table(slice));
    println!("{}", breakdown_energy_table(slice));
}

/// Prints a simulation failure and exits (the replay artifact path is
/// part of the error's rendering).
fn bail(e: SimError) -> ! {
    eprintln!("error: {e}");
    std::process::exit(1);
}

fn cmd_run(o: &Options) {
    // A single run is a one-cell sweep as far as telemetry goes; only
    // build the sink when asked so the default stderr output is
    // unchanged.
    let sink = o.progress_out.as_deref().map(|p| progress_sink("run", 1, Some(p)));
    let store = snapshot_store(o.snapshot_dir.as_deref());
    let r = run_matrix_with_options(
        &[o.protocol],
        &[o.benchmark],
        &config(o),
        sink.as_ref(),
        o.threads,
        store.as_ref(),
    )
    .unwrap_or_else(|e| bail(e))
    .pop()
    .expect("one cell");
    println!("{} on {}{}", r.protocol.name(), r.benchmark.name(), r.placement.suffix());
    println!("  cycles            {:>12}", r.cycles);
    println!("  throughput        {:>12.4} refs/cycle", r.throughput());
    println!("  L1 miss rate      {:>11.2}%", 100.0 * r.l1_miss_rate());
    println!("  off-chip rate     {:>11.2}%", 100.0 * r.l2_miss_rate());
    println!("  dedup savings     {:>11.1}%", 100.0 * r.dedup_savings);
    println!("  cache energy      {:>12.1} uJ", r.cache_energy.total() / 1000.0);
    println!("  network energy    {:>12.1} uJ", r.net_energy.total() / 1000.0);
    println!("  links/message     {:>12.2}", r.avg_links_per_message());
    println!("  avg miss latency  {:>12.1} cycles", r.avg_miss_latency());
    println!("  p95 miss latency  {:>12} cycles", r.miss_latency_percentile(95.0));
    println!("  broadcasts        {:>12}", r.proto_stats.broadcast_invs.get());
    println!("  VM imbalance      {:>12.3}", r.vm_imbalance());
    println!("  miss classes:");
    for class in MissClass::all() {
        println!("    {:<18} {:>6.1}%", class.label(), 100.0 * r.miss_class_frac(class));
    }
    print_breakdown_summary(&r);
    if let Some(p) = &o.breakdown_out {
        write_breakdown(p, std::slice::from_ref(&r));
    }
    write_tenant_outputs(o, std::slice::from_ref(&r));
    write_outputs(o, &r, None);
}

/// `stats`: one run, then the full metrics registry, one line per
/// metric (hierarchical names, sorted).
fn cmd_stats(o: &Options) {
    let store = snapshot_store(o.snapshot_dir.as_deref());
    let r = run_benchmark_with_store(o.protocol, o.benchmark, &config(o), store.as_ref())
        .unwrap_or_else(|e| bail(e));
    println!(
        "{} on {}{} ({} refs/core, seed {})",
        r.protocol.name(),
        r.benchmark.name(),
        r.placement.suffix(),
        o.refs,
        o.seed
    );
    println!();
    print!("{}", r.metrics().dump());
    if let Some(p) = &o.breakdown_out {
        write_breakdown(p, std::slice::from_ref(&r));
    }
    write_tenant_outputs(o, std::slice::from_ref(&r));
    write_outputs(o, &r, None);
}

/// Builds the live-telemetry sink for a sweep (`--progress-out` NDJSON
/// plus a human heartbeat line per cell on stderr).
fn progress_sink(label: &str, total: usize, path: Option<&str>) -> cmpsim::ProgressSink {
    cmpsim::ProgressSink::new(label, total, path, true).unwrap_or_else(|e| {
        eprintln!("error: cannot open progress stream: {e}");
        std::process::exit(1);
    })
}

fn cmd_matrix(o: &Options) {
    let cfg = config(o);
    let protocols = ProtocolKind::all();
    let sink = progress_sink("matrix", protocols.len(), o.progress_out.as_deref());
    let store = snapshot_store(o.snapshot_dir.as_deref());
    let results = run_matrix_with_options(
        &protocols,
        &[o.benchmark],
        &cfg,
        Some(&sink),
        o.threads,
        store.as_ref(),
    )
    .unwrap_or_else(|e| bail(e));
    let base = &results[0];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.protocol.name().to_string(),
                format!("{:.4}", r.throughput()),
                format!("{:+.1}%", 100.0 * (r.performance() / base.performance() - 1.0)),
                format!("{:.1} uJ", r.total_dynamic_uj()),
                format!("{:+.1}%", 100.0 * (r.total_dynamic_nj() / base.total_dynamic_nj() - 1.0)),
                format!("{:.2}", r.avg_links_per_message()),
            ]
        })
        .collect();
    println!("{}{} at {} refs/core:", o.benchmark.name(), cfg.placement.suffix(), cfg.refs_per_core);
    println!(
        "{}",
        table(
            &["protocol", "throughput", "perf vs dir", "dyn energy", "vs dir", "links/msg"],
            &rows
        )
    );
    if let Some(p) = &o.breakdown_out {
        write_breakdown(p, &results);
    }
    write_tenant_outputs(o, &results);
    for r in &results {
        let tag = r.protocol.name().to_lowercase();
        write_outputs(o, r, Some(&tag));
    }
}

/// `breakdown`: runs all four protocols with attribution on and prints
/// the paper's Figure 7 (miss latency per critical-path phase) and
/// Figure 8 (dynamic energy per structure) breakdowns.
fn cmd_breakdown(o: &Options) {
    let cfg = config(o).with_attribution();
    let results =
        run_matrix_with_options(&ProtocolKind::all(), &[o.benchmark], &cfg, None, o.threads, None)
            .unwrap_or_else(|e| bail(e));
    println!(
        "critical-path & energy attribution: {}{} at {} refs/core, seed {}",
        o.benchmark.name(),
        cfg.placement.suffix(),
        cfg.refs_per_core,
        cfg.seed
    );
    println!();
    println!("miss latency by phase (avg cycles per miss, Fig. 7 style):");
    println!("{}", breakdown_latency_table(&results));
    println!("attributed dynamic energy by structure (uJ, Fig. 8 style):");
    println!("{}", breakdown_energy_table(&results));
    for r in &results {
        let b = r.breakdown.as_ref().expect("attribution enabled");
        let model = r.energy_model();
        let tiled = r.counts_nj(&model, &b.total_counts());
        println!(
            "{:<10} {} misses, {} reconciled exactly; attributed {:.1} uJ of {:.1} uJ aggregate",
            r.protocol.name(),
            b.completed,
            b.reconciled,
            tiled / 1000.0,
            r.total_dynamic_nj() / 1000.0,
        );
    }
    if let Some(p) = &o.breakdown_out {
        write_breakdown(p, &results);
    }
    for r in &results {
        eprintln!("{}: {}", r.protocol.name(), r.host.throughput_line());
    }
}

/// `vmstat`: runs all four protocols with attribution on and prints
/// the tenant view — per-VM latency/energy tables, the cross-VM
/// interference matrix, and ASCII mesh heatmaps of the per-tile
/// counters. `--vmstat-out`/`--heatmap-out` export the same data as
/// manifest-stamped JSON/CSV artifacts.
fn cmd_vmstat(o: &Options) {
    let cfg = config(o).with_attribution();
    let results =
        run_matrix_with_options(&ProtocolKind::all(), &[o.benchmark], &cfg, None, o.threads, None)
            .unwrap_or_else(|e| bail(e));
    println!(
        "tenant observability: {}{} at {} refs/core, seed {}",
        o.benchmark.name(),
        cfg.placement.suffix(),
        cfg.refs_per_core,
        cfg.seed
    );
    println!();
    print!("{}", vmstat_tables(&results));
    write_tenant_outputs(o, &results);
    for r in &results {
        eprintln!("{}: {}", r.protocol.name(), r.host.throughput_line());
    }
}

/// `report`: one deterministic Markdown report over a matrix run — the
/// run ledger, the paper-style tables, Fig. 7/8 breakdowns, interval
/// summaries and fault counts. Attribution is always enabled so the
/// breakdown sections are populated. Byte-identical across reruns of
/// the same configuration (`--out` or stdout).
fn cmd_report(o: &Options) {
    let cfg = config(o).with_attribution();
    let benchmarks: Vec<Benchmark> =
        if o.all_benchmarks { Benchmark::all().to_vec() } else { vec![o.benchmark] };
    let protocols = ProtocolKind::all();
    let sink =
        progress_sink("report", protocols.len() * benchmarks.len(), o.progress_out.as_deref());
    let results = run_matrix_with_options(
        &protocols,
        &benchmarks,
        &cfg,
        Some(&sink),
        o.threads,
        snapshot_store(o.snapshot_dir.as_deref()).as_ref(),
    )
    .unwrap_or_else(|e| bail(e));
    let md = markdown_report(&results);
    match &o.out {
        Some(p) => write_file(p, &md, "report"),
        None => print!("{md}"),
    }
    for r in &results {
        eprintln!("{}: {}", r.protocol.name(), r.host.throughput_line());
    }
}

/// `compare`: structural diff of two runs/matrices, or (`--baseline`)
/// the host-throughput regression gate. Exits nonzero when the
/// comparison fails, writing a machine-readable JSON diff with
/// `--out`.
fn cmd_compare(args: &[String]) {
    let bad = |e: String| -> ! {
        eprintln!("error: {e}");
        eprintln!(
            "usage: cmpsim-cli compare A.json B.json [--tol F] [--allow-improved] [--out diff.json]"
        );
        eprintln!(
            "       cmpsim-cli compare --baseline current.json baseline.json [--threshold F] [--rebaseline] [--out diff.json]"
        );
        std::process::exit(2);
    };
    let mut paths: Vec<String> = Vec::new();
    let mut baseline_mode = false;
    let mut rebaseline = false;
    let mut threshold = 0.20f64;
    let mut opts = cmpsim::CompareOptions::default();
    let mut out: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--baseline" => baseline_mode = true,
            "--rebaseline" => rebaseline = true,
            "--allow-improved" => opts.allow_improved = true,
            "--threshold" => {
                let v = it.next().unwrap_or_else(|| bad("--threshold needs a value".into()));
                threshold = v.parse().unwrap_or_else(|_| bad(format!("bad threshold {v}")));
            }
            "--tol" => {
                let v = it.next().unwrap_or_else(|| bad("--tol needs a value".into()));
                opts.tolerance = v.parse().unwrap_or_else(|_| bad(format!("bad tolerance {v}")));
            }
            "--out" => {
                let v = it.next().unwrap_or_else(|| bad("--out needs a file path".into()));
                out = Some(v.clone());
            }
            other if !other.starts_with('-') => paths.push(other.to_string()),
            other => bad(format!("unknown compare option {other}")),
        }
    }
    if paths.len() != 2 {
        bad(format!("compare needs exactly two paths, got {}", paths.len()));
    }

    if baseline_mode {
        let read = |p: &str| -> cmpsim::replay::Value {
            let text = std::fs::read_to_string(p)
                .unwrap_or_else(|e| bad(format!("cannot read {p}: {e}")));
            cmpsim::replay::Value::parse(&text).unwrap_or_else(|e| bad(format!("{p}: {e}")))
        };
        let current = read(&paths[0]);
        let baseline = read(&paths[1]);
        if rebaseline {
            let text = cmpsim::compare::rebaseline(&current, &baseline)
                .unwrap_or_else(|e| bad(e));
            std::fs::write(&paths[1], &text)
                .unwrap_or_else(|e| bad(format!("cannot write {}: {e}", paths[1])));
            println!("rebaselined into {}", paths[1]);
            return;
        }
        let report = cmpsim::compare::compare_baseline(&current, &baseline, threshold)
            .unwrap_or_else(|e| bad(e));
        for line in &report.lines {
            println!("{line}");
        }
        if let Some(p) = &out {
            write_file(p, &report.to_json(&paths[0], &paths[1], threshold), "compare diff");
        }
        if !report.passed() {
            eprintln!(
                "\n{} benchmark(s) regressed more than {:.0}%:",
                report.failures.len(),
                threshold * 100.0
            );
            for f in &report.failures {
                eprintln!("  {f}");
            }
            std::process::exit(1);
        }
        println!("\nall benchmarks within threshold");
        return;
    }

    let report =
        cmpsim::compare::compare_paths(Path::new(&paths[0]), Path::new(&paths[1]), &opts)
            .unwrap_or_else(|e| bad(e));
    for line in report.lines() {
        println!("{line}");
    }
    if let Some(p) = &out {
        write_file(p, &report.to_json(&opts), "compare diff");
    }
    if !report.passed(&opts) {
        std::process::exit(1);
    }
}

fn cmd_tables() {
    println!("== Table V/VII: storage overhead (64 cores) ==\n");
    let areas = [2u64, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for kind in ProtocolKind::all() {
        let mut row = vec![kind.name().to_string()];
        row.extend(areas.iter().map(|&a| format!("{:.1}%", overhead_percent(kind, 64, a))));
        rows.push(row);
    }
    let mut header = vec!["protocol".to_string()];
    header.extend(areas.iter().map(|a| format!("{a} areas")));
    let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", table(&refs, &rows));

    println!("== Table VI: leakage per tile (4 areas) ==\n");
    let rows: Vec<Vec<String>> = ProtocolKind::all()
        .iter()
        .map(|&k| {
            let l = leakage_per_tile(k, 64, 4);
            vec![
                k.name().to_string(),
                format!("{:.0} mW", l.total_mw),
                format!("{:.0} mW", l.tag_mw),
            ]
        })
        .collect();
    println!("{}", table(&["protocol", "total", "tags"], &rows));
}

/// Tries to resume a replay from a warmed checkpoint on disk instead
/// of re-simulating the warm-up. Falls back to a cold replay (with a
/// stderr note) on any miss or unusable image — a replay must never
/// fail because its cache did.
fn replay_checkpoint(dir: &str, art: &ReplayArtifact) -> Option<CmpSimulator> {
    if !snapshot_eligible(&art.config) {
        return None;
    }
    let store = match SnapshotStore::with_dir(dir) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("warning: snapshot store unavailable, replaying cold: {e}");
            return None;
        }
    };
    let key = snapshot_key(art.protocol, art.benchmark, &art.config);
    match store.get(key) {
        Ok(Some(image)) => {
            match CmpSimulator::restore_snapshot(art.protocol, art.benchmark, &art.config, &image)
            {
                Ok(sim) => {
                    println!(
                        "resuming from checkpoint {} in {dir} (warm-up skipped)",
                        key_hex(key)
                    );
                    Some(sim)
                }
                Err(e) => {
                    eprintln!("warning: checkpoint {} unusable, replaying cold: {e}", key_hex(key));
                    None
                }
            }
        }
        Ok(None) => None,
        Err(e) => {
            eprintln!("warning: {e}; replaying cold");
            None
        }
    }
}

fn cmd_replay(path: &str, check: bool, snapshot_dir: Option<&str>) {
    let art = ReplayArtifact::load(Path::new(path)).unwrap_or_else(|e| {
        eprintln!("error: {e}");
        std::process::exit(2);
    });
    println!(
        "replaying {} on {} (seed {}): original failure {} at cycle {}",
        art.protocol.name(),
        art.benchmark.name(),
        art.config.seed,
        art.error_kind,
        art.failing_cycle
    );
    // `--check` changes the simulation (the checker observes every
    // event), so a checked replay always runs cold from cycle zero.
    let warmed = if check { None } else { snapshot_dir.and_then(|d| replay_checkpoint(d, &art)) };
    let outcome = match warmed {
        Some(sim) => sim.resume(),
        None => {
            let mut sim = CmpSimulator::new(art.protocol, art.benchmark, &art.config);
            if check {
                sim.enable_invariant_checker();
                println!("invariant checker force-enabled for this replay");
            }
            sim.run()
        }
    };
    match outcome {
        Ok(r) => {
            println!(
                "run completed cleanly ({} refs in {} cycles) — the failure did NOT reproduce",
                r.measured_refs, r.cycles
            );
            std::process::exit(1);
        }
        Err(e) => {
            println!("{e}");
            if e.kind_label() == art.error_kind && e.failing_cycle() == art.failing_cycle {
                println!("reproduced: {} at cycle {}", e.kind_label(), e.failing_cycle());
            } else if check && matches!(e, SimError::InvariantViolation(_)) {
                println!(
                    "invariant checker caught the root cause at cycle {} (original failure: {} at cycle {})",
                    e.failing_cycle(),
                    art.error_kind,
                    art.failing_cycle
                );
            } else {
                println!(
                    "failure differs: got {} at cycle {}, expected {} at cycle {}",
                    e.kind_label(),
                    e.failing_cycle(),
                    art.error_kind,
                    art.failing_cycle
                );
                std::process::exit(1);
            }
        }
    }
}

/// `chaos`: seeded fault-injection soak across the protocol x
/// benchmark matrix with differential golden verification.
fn cmd_chaos(args: &[String]) {
    let mut plans_n: u64 = 8;
    let mut mode = "both".to_string();
    let mut seed: u64 = 0xC4A05;
    let mut refs: u64 = 800;
    let mut small = true;
    let mut alt = false;
    let mut protocol: Option<ProtocolKind> = None;
    let mut benchmark: Option<Benchmark> = None;
    let mut progress_out: Option<String> = None;
    let mut json_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut snapshot_dir: Option<String> = None;
    let mut it = args.iter();
    let bad = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let mut threads = env_threads().unwrap_or_else(|e| bad(e));
    while let Some(a) = it.next() {
        match a.as_str() {
            "--plans" => {
                let v = it.next().unwrap_or_else(|| bad("--plans needs a count".into()));
                plans_n = v.parse().unwrap_or_else(|_| bad(format!("bad plan count {v}")));
            }
            "--mode" => {
                let v = it.next().unwrap_or_else(|| bad("--mode needs a value".into()));
                match v.as_str() {
                    "recoverable" | "chaos" | "both" => mode = v.clone(),
                    other => bad(format!("unknown chaos mode {other} (recoverable|chaos|both)")),
                }
            }
            "--seed" | "-s" => {
                let v = it.next().unwrap_or_else(|| bad("--seed needs a value".into()));
                seed = v.parse().unwrap_or_else(|_| bad(format!("bad seed {v}")));
            }
            "--refs" | "-n" => {
                let v = it.next().unwrap_or_else(|| bad("--refs needs a value".into()));
                refs = v.parse().unwrap_or_else(|_| bad(format!("bad refs {v}")));
            }
            "--paper" => small = false,
            "--small" => small = true,
            "--alt" => alt = true,
            "--protocol" | "-p" => {
                let v = it.next().unwrap_or_else(|| bad("--protocol needs a value".into()));
                protocol =
                    Some(parse_protocol(v).unwrap_or_else(|| bad(format!("unknown protocol {v}"))));
            }
            "--benchmark" | "-b" => {
                let v = it.next().unwrap_or_else(|| bad("--benchmark needs a value".into()));
                benchmark = Some(
                    parse_benchmark(v).unwrap_or_else(|| bad(format!("unknown benchmark {v}"))),
                );
            }
            "--progress-out" => {
                let v = it.next().unwrap_or_else(|| bad("--progress-out needs a file path".into()));
                progress_out = Some(v.clone());
            }
            "--json-out" => {
                let v = it.next().unwrap_or_else(|| bad("--json-out needs a file path".into()));
                json_out = Some(v.clone());
            }
            "--report-out" => {
                let v = it.next().unwrap_or_else(|| bad("--report-out needs a file path".into()));
                report_out = Some(v.clone());
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| bad("--threads needs a count".into()));
                threads = Some(parse_threads(v).unwrap_or_else(|e| bad(e)));
            }
            "--snapshot-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| bad("--snapshot-dir needs a directory path".into()));
                snapshot_dir = Some(v.clone());
            }
            other => bad(format!("unknown chaos option {other}")),
        }
    }
    let mut cfg = if small { SystemConfig::small() } else { SystemConfig::paper() };
    cfg = cfg.with_refs(refs);
    if alt {
        cfg = cfg.with_placement(Placement::Alternative);
    }
    let protocols: Vec<ProtocolKind> =
        protocol.map_or_else(|| ProtocolKind::all().to_vec(), |p| vec![p]);
    let benchmarks: Vec<Benchmark> =
        benchmark.map_or_else(|| Benchmark::all().to_vec(), |b| vec![b]);
    let plans: Vec<FaultPlan> = (0..plans_n)
        .map(|i| match mode.as_str() {
            "recoverable" => FaultPlan::recoverable(seed + i),
            "chaos" => FaultPlan::chaos(seed + i),
            _ if i % 2 == 0 => FaultPlan::recoverable(seed + i),
            _ => FaultPlan::chaos(seed + i),
        })
        .collect();
    println!(
        "chaos soak: {} plans x {} protocols x {} benchmarks = {} cells ({} refs/core, base seed {:#x})",
        plans.len(),
        protocols.len(),
        benchmarks.len(),
        plans.len() * protocols.len() * benchmarks.len(),
        cfg.refs_per_core,
        seed
    );
    let sink = progress_sink(
        "chaos",
        plans.len() * protocols.len() * benchmarks.len(),
        progress_out.as_deref(),
    );
    let store = snapshot_store(snapshot_dir.as_deref());
    let report = chaos_sweep_with_options(
        &protocols,
        &benchmarks,
        &plans,
        &cfg,
        Some(&sink),
        threads,
        store.as_ref(),
    );
    if let Some(p) = &json_out {
        write_file(p, &report.to_json(), "chaos report");
    }
    if let Some(p) = &report_out {
        write_file(p, &markdown_chaos_section(&report), "chaos markdown");
    }

    let mut rows = Vec::new();
    for plan in &plans {
        let cells: Vec<_> =
            report.cells.iter().filter(|c| c.plan == *plan).collect();
        let recovered =
            cells.iter().filter(|c| matches!(c.outcome, CellOutcome::Recovered { .. })).count();
        let faulted =
            cells.iter().filter(|c| matches!(c.outcome, CellOutcome::Faulted { .. })).count();
        let violations = cells.iter().filter(|c| !c.outcome.acceptable()).count();
        let (mut fired, mut retries, mut timeouts, mut overhead) = (0u64, 0u64, 0u64, 0u64);
        for c in &cells {
            if let CellOutcome::Recovered {
                faults_fired, retries: r, timeouts: t, cycles, effective_cycles,
            } = c.outcome
            {
                fired += faults_fired;
                retries += r;
                timeouts += t;
                overhead += cycles.saturating_sub(effective_cycles);
            }
        }
        rows.push(vec![
            plan.spec(),
            format!("{recovered}/{}", cells.len()),
            faulted.to_string(),
            violations.to_string(),
            fired.to_string(),
            retries.to_string(),
            timeouts.to_string(),
            overhead.to_string(),
        ]);
    }
    println!(
        "{}",
        table(
            &["plan", "recovered", "faulted", "violations", "faults", "retries", "timeouts",
              "overhead cy"],
            &rows
        )
    );
    for cell in report.cells.iter() {
        if let CellOutcome::Faulted { code, label, artifact } = &cell.outcome {
            println!(
                "  faulted: {} on {} under {}: {label} ({code}), artifact {}",
                cell.protocol.name(),
                cell.benchmark.name(),
                cell.plan.spec(),
                artifact.as_deref().map_or("MISSING".into(), |p| p.display().to_string()),
            );
        }
    }
    for cell in report.violations() {
        let detail = match &cell.outcome {
            CellOutcome::Diverged { detail } => detail.clone(),
            CellOutcome::Panicked { message } => message.clone(),
            CellOutcome::GoldenFailed { message } => format!("golden failed: {message}"),
            CellOutcome::Faulted { .. } => "typed error without replay artifact".into(),
            CellOutcome::Recovered { .. } => unreachable!("recovered cells are acceptable"),
        };
        println!(
            "  VIOLATION: {} on {} under {} [{}]: {detail}",
            cell.protocol.name(),
            cell.benchmark.name(),
            cell.plan.spec(),
            cell.outcome.status(),
        );
    }
    println!(
        "{} recovered+verified, {} typed errors, {} violations",
        report.recovered(),
        report.faulted(),
        report.violations().len()
    );
    if !report.passed() {
        std::process::exit(1);
    }
}

/// `sweep`: resilient job-queue sweep — blast-radius containment per
/// cell (catch_unwind + per-cell deadline), bounded retry with backoff
/// for transient failures, immediate quarantine for deterministic ones,
/// and an NDJSON journal that makes the whole run crash-resumable.
fn cmd_sweep(args: &[String]) {
    let bad = |e: String| -> ! {
        eprintln!("error: {e}");
        std::process::exit(2);
    };
    let mut resume: Option<String> = None;
    let mut protocols: Vec<ProtocolKind> = Vec::new();
    let mut benchmarks: Vec<Benchmark> = Vec::new();
    let mut seeds: Vec<u64> = Vec::new();
    let mut plans: Vec<Option<FaultPlan>> = Vec::new();
    let mut refs: u64 = 800;
    let mut small = true;
    let mut alt = false;
    let mut opts = cmpsim::SweepOptions::default();
    let mut journal: Option<String> = None;
    let mut report_out: Option<String> = None;
    opts.threads = env_threads().unwrap_or_else(|e| bad(e));
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--resume" => {
                let v = it.next().unwrap_or_else(|| bad("--resume needs a journal path".into()));
                resume = Some(v.clone());
            }
            "--protocol" | "-p" => {
                let v = it.next().unwrap_or_else(|| bad("--protocol needs a value".into()));
                for s in v.split(',') {
                    protocols.push(
                        parse_protocol(s).unwrap_or_else(|| bad(format!("unknown protocol {s}"))),
                    );
                }
            }
            "--benchmark" | "-b" => {
                let v = it.next().unwrap_or_else(|| bad("--benchmark needs a value".into()));
                for s in v.split(',') {
                    benchmarks.push(
                        parse_benchmark(s).unwrap_or_else(|| bad(format!("unknown benchmark {s}"))),
                    );
                }
            }
            "--seeds" => {
                let v = it.next().unwrap_or_else(|| bad("--seeds needs a comma list".into()));
                for s in v.split(',') {
                    seeds.push(s.parse().unwrap_or_else(|_| bad(format!("bad seed {s}"))));
                }
            }
            "--plans" => {
                let v = it.next().unwrap_or_else(|| bad("--plans needs a comma list".into()));
                for s in v.split(',') {
                    if s == "none" {
                        plans.push(None);
                    } else {
                        plans.push(Some(FaultPlan::parse(s).unwrap_or_else(|e| bad(e))));
                    }
                }
            }
            "--refs" | "-n" => {
                let v = it.next().unwrap_or_else(|| bad("--refs needs a value".into()));
                refs = v.parse().unwrap_or_else(|_| bad(format!("bad refs {v}")));
            }
            "--paper" => small = false,
            "--small" => small = true,
            "--alt" => alt = true,
            "--out-dir" => {
                let v = it.next().unwrap_or_else(|| bad("--out-dir needs a directory".into()));
                opts.out_dir = v.into();
            }
            "--journal" => {
                let v = it.next().unwrap_or_else(|| bad("--journal needs a file path".into()));
                journal = Some(v.clone());
            }
            "--deadline-ms" => {
                let v = it.next().unwrap_or_else(|| bad("--deadline-ms needs a value".into()));
                opts.deadline_ms =
                    Some(v.parse().unwrap_or_else(|_| bad(format!("bad deadline {v}"))));
            }
            "--retries" => {
                let v = it.next().unwrap_or_else(|| bad("--retries needs a count".into()));
                opts.retries = v.parse().unwrap_or_else(|_| bad(format!("bad retry count {v}")));
            }
            "--backoff-ms" => {
                let v = it.next().unwrap_or_else(|| bad("--backoff-ms needs a value".into()));
                opts.backoff_ms = v.parse().unwrap_or_else(|_| bad(format!("bad backoff {v}")));
            }
            "--inject" => {
                let v = it.next().unwrap_or_else(|| bad("--inject needs kind@cell".into()));
                opts.injections.push(cmpsim::Injection::parse(v).unwrap_or_else(|e| bad(e)));
            }
            "--threads" => {
                let v = it.next().unwrap_or_else(|| bad("--threads needs a count".into()));
                opts.threads = Some(parse_threads(v).unwrap_or_else(|e| bad(e)));
            }
            "--snapshot-dir" => {
                let v = it
                    .next()
                    .unwrap_or_else(|| bad("--snapshot-dir needs a directory path".into()));
                opts.snapshot_dir = Some(v.into());
            }
            "--report-out" => {
                let v = it.next().unwrap_or_else(|| bad("--report-out needs a file path".into()));
                report_out = Some(v.clone());
            }
            other => bad(format!("unknown sweep option {other}")),
        }
    }

    let outcome = match resume {
        Some(journal) => {
            eprintln!("resuming sweep from {journal}");
            cmpsim::resume_sweep(Path::new(&journal), opts.threads).unwrap_or_else(|e| bad(e))
        }
        None => {
            let mut base = if small { SystemConfig::small() } else { SystemConfig::paper() };
            base = base.with_refs(refs);
            if alt {
                base = base.with_placement(Placement::Alternative);
            }
            let spec = cmpsim::SweepSpec {
                protocols: if protocols.is_empty() {
                    ProtocolKind::all().to_vec()
                } else {
                    protocols
                },
                benchmarks: if benchmarks.is_empty() {
                    Benchmark::all().to_vec()
                } else {
                    benchmarks
                },
                seeds,
                plans,
                base,
            };
            opts.journal =
                journal.map_or_else(|| opts.out_dir.join("sweep.ndjson"), Into::into);
            eprintln!(
                "sweep: {} protocols x {} benchmarks x {} seeds x {} plans, journal {}",
                spec.protocols.len(),
                spec.benchmarks.len(),
                spec.seeds.len().max(1),
                spec.plans.len().max(1),
                opts.journal.display()
            );
            cmpsim::run_sweep(&spec, &opts).unwrap_or_else(|e| bad(e))
        }
    };

    let md = outcome.report_markdown();
    match &report_out {
        Some(p) => write_file(p, &md, "sweep report"),
        None => print!("{md}"),
    }
    if outcome.skipped > 0 {
        eprintln!("resume skipped {} already-terminal cells", outcome.skipped);
    }
    if !outcome.ok() {
        let failed = outcome.quarantined();
        eprintln!("{} cell(s) quarantined:", failed.len());
        for (c, e) in &failed {
            eprintln!("  cell {} {} [{}]: {}", c.index, c.name(), e.code, e.message);
        }
        std::process::exit(1);
    }
    eprintln!("sweep complete: all {} cells done", outcome.cells.len());
}

fn cmd_list() {
    println!("protocols:  directory | dico | providers | arin");
    println!("benchmarks: apache | jbb | radix | lu | volrend | tomcatv | mixed-com | mixed-sci");
    println!("fault modes: recoverable[@SEED] | chaos[@SEED]  (--faults / CMPSIM_FAULTS)");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!(
                "usage: cmpsim-cli <run|stats|matrix|breakdown|vmstat|report|compare|tables|replay|sweep|chaos|list> [options]"
            );
            std::process::exit(2);
        }
    };
    match cmd {
        "tables" => cmd_tables(),
        "list" => cmd_list(),
        "sweep" => cmd_sweep(rest),
        "chaos" => cmd_chaos(rest),
        "compare" => cmd_compare(rest),
        "replay" => {
            let mut file = None;
            let mut check = false;
            let mut snapshot_dir: Option<String> = None;
            let mut it = rest.iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--check" => check = true,
                    "--snapshot-dir" => match it.next() {
                        Some(v) => snapshot_dir = Some(v.clone()),
                        None => {
                            eprintln!("--snapshot-dir needs a directory path");
                            std::process::exit(2);
                        }
                    },
                    other if file.is_none() && !other.starts_with('-') => {
                        file = Some(other.to_string())
                    }
                    other => {
                        eprintln!("unknown replay option {other}");
                        std::process::exit(2);
                    }
                }
            }
            match file {
                Some(f) => cmd_replay(&f, check, snapshot_dir.as_deref()),
                None => {
                    eprintln!(
                        "usage: cmpsim-cli replay <artifact.json> [--check] [--snapshot-dir D]"
                    );
                    std::process::exit(2);
                }
            }
        }
        "run" | "matrix" | "stats" | "breakdown" | "report" | "vmstat" => match parse_options(rest)
        {
            Ok(o) => match cmd {
                "run" => cmd_run(&o),
                "stats" => cmd_stats(&o),
                "breakdown" => cmd_breakdown(&o),
                "report" => cmd_report(&o),
                "vmstat" => cmd_vmstat(&o),
                _ => cmd_matrix(&o),
            },
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
        other => {
            eprintln!(
                "unknown command {other}; try run, stats, matrix, breakdown, vmstat, report, compare, tables, replay, sweep, chaos, list"
            );
            std::process::exit(2);
        }
    }
}
