//! Command-line front end for the simulator.
//!
//! ```text
//! cmpsim-cli run  [--protocol P] [--benchmark B] [--refs N] [--alt] [--seed S]
//! cmpsim-cli matrix [--refs N] [--alt]          # all protocols x one benchmark set
//! cmpsim-cli tables                             # Tables V, VI, VII (analytic)
//! cmpsim-cli list                               # protocols & benchmarks
//! ```
//!
//! Protocols: directory | dico | providers | arin.
//! Benchmarks: apache | jbb | radix | lu | volrend | tomcatv |
//! mixed-com | mixed-sci.

use cmpsim::report::table;
use cmpsim::{
    run_benchmark, run_matrix, Benchmark, MissClass, Placement, ProtocolKind, SystemConfig,
};
use cmpsim_power::{leakage_per_tile, overhead_percent};

fn parse_protocol(s: &str) -> Option<ProtocolKind> {
    match s.to_ascii_lowercase().as_str() {
        "directory" | "dir" => Some(ProtocolKind::Directory),
        "dico" => Some(ProtocolKind::DiCo),
        "providers" | "dico-providers" => Some(ProtocolKind::DiCoProviders),
        "arin" | "dico-arin" => Some(ProtocolKind::DiCoArin),
        _ => None,
    }
}

fn parse_benchmark(s: &str) -> Option<Benchmark> {
    match s.to_ascii_lowercase().as_str() {
        "apache" => Some(Benchmark::Apache),
        "jbb" => Some(Benchmark::Jbb),
        "radix" => Some(Benchmark::Radix),
        "lu" => Some(Benchmark::Lu),
        "volrend" => Some(Benchmark::Volrend),
        "tomcatv" => Some(Benchmark::Tomcatv),
        "mixed-com" => Some(Benchmark::MixedCom),
        "mixed-sci" => Some(Benchmark::MixedSci),
        _ => None,
    }
}

struct Options {
    protocol: ProtocolKind,
    benchmark: Benchmark,
    refs: u64,
    seed: u64,
    alt: bool,
}

fn parse_options(args: &[String]) -> Result<Options, String> {
    let mut o = Options {
        protocol: ProtocolKind::DiCoArin,
        benchmark: Benchmark::Apache,
        refs: 20_000,
        seed: 0xC0FFEE,
        alt: false,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--protocol" | "-p" => {
                let v = it.next().ok_or("--protocol needs a value")?;
                o.protocol = parse_protocol(v).ok_or_else(|| format!("unknown protocol {v}"))?;
            }
            "--benchmark" | "-b" => {
                let v = it.next().ok_or("--benchmark needs a value")?;
                o.benchmark =
                    parse_benchmark(v).ok_or_else(|| format!("unknown benchmark {v}"))?;
            }
            "--refs" | "-n" => {
                let v = it.next().ok_or("--refs needs a value")?;
                o.refs = v.parse().map_err(|_| format!("bad refs {v}"))?;
            }
            "--seed" | "-s" => {
                let v = it.next().ok_or("--seed needs a value")?;
                o.seed = v.parse().map_err(|_| format!("bad seed {v}"))?;
            }
            "--alt" => o.alt = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(o)
}

fn config(o: &Options) -> SystemConfig {
    let mut cfg = SystemConfig::paper().with_refs(o.refs).with_seed(o.seed);
    if o.alt {
        cfg = cfg.with_placement(Placement::Alternative);
    }
    cfg
}

fn cmd_run(o: &Options) {
    let r = run_benchmark(o.protocol, o.benchmark, &config(o));
    println!("{} on {}{}", r.protocol.name(), r.benchmark.name(), r.placement.suffix());
    println!("  cycles            {:>12}", r.cycles);
    println!("  throughput        {:>12.4} refs/cycle", r.throughput());
    println!("  L1 miss rate      {:>11.2}%", 100.0 * r.l1_miss_rate());
    println!("  off-chip rate     {:>11.2}%", 100.0 * r.l2_miss_rate());
    println!("  dedup savings     {:>11.1}%", 100.0 * r.dedup_savings);
    println!("  cache energy      {:>12.1} uJ", r.cache_energy.total() / 1000.0);
    println!("  network energy    {:>12.1} uJ", r.net_energy.total() / 1000.0);
    println!("  links/message     {:>12.2}", r.avg_links_per_message());
    println!("  avg miss latency  {:>12.1} cycles", r.avg_miss_latency());
    println!("  p95 miss latency  {:>12} cycles", r.miss_latency_percentile(95.0));
    println!("  broadcasts        {:>12}", r.proto_stats.broadcast_invs.get());
    println!("  VM imbalance      {:>12.3}", r.vm_imbalance());
    println!("  miss classes:");
    for class in MissClass::all() {
        println!("    {:<18} {:>6.1}%", class.label(), 100.0 * r.miss_class_frac(class));
    }
}

fn cmd_matrix(o: &Options) {
    let cfg = config(o);
    let results = run_matrix(&ProtocolKind::all(), &[o.benchmark], &cfg);
    let base = &results[0];
    let rows: Vec<Vec<String>> = results
        .iter()
        .map(|r| {
            vec![
                r.protocol.name().to_string(),
                format!("{:.4}", r.throughput()),
                format!("{:+.1}%", 100.0 * (r.performance() / base.performance() - 1.0)),
                format!("{:.1} uJ", r.total_dynamic_uj()),
                format!("{:+.1}%", 100.0 * (r.total_dynamic_nj() / base.total_dynamic_nj() - 1.0)),
                format!("{:.2}", r.avg_links_per_message()),
            ]
        })
        .collect();
    println!("{}{} at {} refs/core:", o.benchmark.name(), cfg.placement.suffix(), cfg.refs_per_core);
    println!(
        "{}",
        table(
            &["protocol", "throughput", "perf vs dir", "dyn energy", "vs dir", "links/msg"],
            &rows
        )
    );
}

fn cmd_tables() {
    println!("== Table V/VII: storage overhead (64 cores) ==\n");
    let areas = [2u64, 4, 8, 16, 32, 64];
    let mut rows = Vec::new();
    for kind in ProtocolKind::all() {
        let mut row = vec![kind.name().to_string()];
        row.extend(areas.iter().map(|&a| format!("{:.1}%", overhead_percent(kind, 64, a))));
        rows.push(row);
    }
    let mut header = vec!["protocol".to_string()];
    header.extend(areas.iter().map(|a| format!("{a} areas")));
    let refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    println!("{}", table(&refs, &rows));

    println!("== Table VI: leakage per tile (4 areas) ==\n");
    let rows: Vec<Vec<String>> = ProtocolKind::all()
        .iter()
        .map(|&k| {
            let l = leakage_per_tile(k, 64, 4);
            vec![
                k.name().to_string(),
                format!("{:.0} mW", l.total_mw),
                format!("{:.0} mW", l.tag_mw),
            ]
        })
        .collect();
    println!("{}", table(&["protocol", "total", "tags"], &rows));
}

fn cmd_list() {
    println!("protocols:  directory | dico | providers | arin");
    println!("benchmarks: apache | jbb | radix | lu | volrend | tomcatv | mixed-com | mixed-sci");
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (cmd, rest) = match args.split_first() {
        Some((c, r)) => (c.as_str(), r),
        None => {
            eprintln!("usage: cmpsim-cli <run|matrix|tables|list> [options]");
            std::process::exit(2);
        }
    };
    match cmd {
        "tables" => cmd_tables(),
        "list" => cmd_list(),
        "run" | "matrix" => match parse_options(rest) {
            Ok(o) => {
                if cmd == "run" {
                    cmd_run(&o)
                } else {
                    cmd_matrix(&o)
                }
            }
            Err(e) => {
                eprintln!("error: {e}");
                std::process::exit(2);
            }
        },
        other => {
            eprintln!("unknown command {other}; try run, matrix, tables, list");
            std::process::exit(2);
        }
    }
}
