//! Warm-state snapshots: checkpoint a simulator at the warm-up boundary
//! once, then fork every run that shares the same pre-measurement history.
//!
//! A run's behaviour up to the warm-up flip is a pure function of the
//! system configuration, the protocol, the benchmark, the seed, and the
//! fault plan — everything [`snapshot_key`] hashes. Two matrix cells (or
//! two CLI invocations) with the same key replay byte-for-byte identical
//! warm-up phases, so the first one to reach the warm boundary serialises
//! its full machine state and every later one restores it instead of
//! re-simulating. The hard invariant, gated by `tests/snapshot.rs`:
//! snapshot → restore → run is bit-for-bit identical to an uninterrupted
//! run — same `RunResult`, same metrics, same stamped artifacts.
//!
//! Snapshots are versioned and fail closed: a corrupted, truncated, or
//! version-mismatched image is rejected with a typed
//! [`SimError::Snapshot`](crate::SimError), never a panic and never a
//! silent fallback to cold execution.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex};

use crate::config::SystemConfig;
use crate::manifest::{digest, hex16};
use crate::replay::config_to_json;
use cmpsim_engine::{SnapError, SnapReader, SnapWriter};
use cmpsim_protocols::ProtocolKind;
use cmpsim_workloads::Benchmark;

/// Leading bytes of every snapshot image.
pub const SNAPSHOT_MAGIC: [u8; 8] = *b"CMPSNAP\0";
/// Wire-format version. Bump on any change to the serialised layout of
/// simulator state; readers reject every version but their own.
pub const SNAPSHOT_VERSION: u32 = 1;

/// A snapshot failure: I/O on the snapshot directory, or a rejected
/// image (bad magic, wrong version, corruption, key mismatch).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SnapshotError {
    /// On-disk snapshot involved, if any (in-memory failures have none).
    pub path: Option<PathBuf>,
    /// Human-readable cause.
    pub detail: String,
    /// Replay artifact stamped by [`run_benchmark`](crate::run_benchmark)
    /// wrappers, when one was written.
    pub artifact: Option<PathBuf>,
}

impl SnapshotError {
    pub(crate) fn new(detail: impl Into<String>) -> Self {
        Self { path: None, detail: detail.into(), artifact: None }
    }

    pub(crate) fn at(path: &Path, detail: impl Into<String>) -> Self {
        Self { path: Some(path.to_path_buf()), detail: detail.into(), artifact: None }
    }

    pub(crate) fn from_snap(context: &str, e: SnapError) -> Self {
        Self::new(format!("{context}: {e}"))
    }
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.path {
            Some(p) => write!(f, "snapshot {}: {}", p.display(), self.detail),
            None => write!(f, "snapshot: {}", self.detail),
        }
    }
}

/// Content key identifying everything that influences pre-snapshot
/// execution: the canonical config JSON (which already folds in the
/// seed, the fault plan, and `check_invariants`, and already excludes
/// pure-observability knobs), the protocol, the benchmark, and the
/// snapshot schema + tool version so stale images from older builds
/// never match.
pub fn snapshot_key(protocol: ProtocolKind, benchmark: Benchmark, cfg: &SystemConfig) -> u64 {
    let mut keyed = String::new();
    config_to_json(cfg).render_to(&mut keyed);
    keyed.push('\n');
    keyed.push_str(protocol.name());
    keyed.push('\n');
    keyed.push_str(benchmark.name());
    keyed.push('\n');
    keyed.push_str("cmpsim-snapshot-v");
    keyed.push_str(&SNAPSHOT_VERSION.to_string());
    keyed.push('\n');
    keyed.push_str(env!("CARGO_PKG_VERSION"));
    digest(keyed.as_bytes())
}

/// Renders `key` as the 16-hex-digit form used in snapshot file names.
pub fn key_hex(key: u64) -> String {
    hex16(key)
}

/// Writes the snapshot header (magic, version, key) into `w`.
pub(crate) fn write_header(w: &mut SnapWriter, key: u64) {
    w.raw(&SNAPSHOT_MAGIC);
    w.u32(SNAPSHOT_VERSION);
    w.u64(key);
}

/// Validates the header of a snapshot image and returns a reader
/// positioned at the payload. Rejects bad magic, foreign versions, and
/// images whose embedded key disagrees with `expect_key`.
pub(crate) fn read_header(bytes: &[u8], expect_key: u64) -> Result<SnapReader<'_>, SnapshotError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.raw(SNAPSHOT_MAGIC.len()).map_err(|e| SnapshotError::from_snap("header", e))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::new("bad magic: not a cmpsim snapshot"));
    }
    let version = r.u32().map_err(|e| SnapshotError::from_snap("header", e))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(format!(
            "version mismatch: image is v{version}, this build reads v{SNAPSHOT_VERSION}"
        )));
    }
    let key = r.u64().map_err(|e| SnapshotError::from_snap("header", e))?;
    if key != expect_key {
        return Err(SnapshotError::new(format!(
            "key mismatch: image is for {}, expected {}",
            hex16(key),
            hex16(expect_key)
        )));
    }
    Ok(r)
}

/// Checks that `bytes` carries a well-formed header for any key, without
/// consuming the payload. Used to vet disk images before caching them.
fn validate_header(bytes: &[u8]) -> Result<u64, SnapshotError> {
    let mut r = SnapReader::new(bytes);
    let magic = r.raw(SNAPSHOT_MAGIC.len()).map_err(|e| SnapshotError::from_snap("header", e))?;
    if magic != SNAPSHOT_MAGIC {
        return Err(SnapshotError::new("bad magic: not a cmpsim snapshot"));
    }
    let version = r.u32().map_err(|e| SnapshotError::from_snap("header", e))?;
    if version != SNAPSHOT_VERSION {
        return Err(SnapshotError::new(format!(
            "version mismatch: image is v{version}, this build reads v{SNAPSHOT_VERSION}"
        )));
    }
    r.u64().map_err(|e| SnapshotError::from_snap("header", e))
}

/// Keyed store of warm-state snapshot images, shared across the worker
/// threads of a matrix or chaos sweep.
///
/// Always caches in memory; with [`SnapshotStore::with_dir`] images are
/// additionally persisted as `snap-<key>.bin` files so later CLI
/// invocations skip the warm-up phase entirely. Disk writes go through a
/// temp file + rename, so readers never observe a torn image.
pub struct SnapshotStore {
    mem: Mutex<HashMap<u64, Arc<Vec<u8>>>>,
    dir: Option<PathBuf>,
}

impl SnapshotStore {
    /// Store that lives only for this process (intra-sweep reuse).
    pub fn in_memory() -> Self {
        Self { mem: Mutex::new(HashMap::new()), dir: None }
    }

    /// Store backed by `dir` (created if missing) for cross-invocation
    /// reuse.
    pub fn with_dir(dir: impl Into<PathBuf>) -> Result<Self, SnapshotError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)
            .map_err(|e| SnapshotError::at(&dir, format!("create dir: {e}")))?;
        Ok(Self { mem: Mutex::new(HashMap::new()), dir: Some(dir) })
    }

    /// Directory backing this store, if any.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    fn file_for(&self, key: u64) -> Option<PathBuf> {
        self.dir.as_ref().map(|d| d.join(format!("snap-{}.bin", hex16(key))))
    }

    /// Fetches the image for `key`, consulting memory first and then the
    /// backing directory. A missing image is `Ok(None)`; an unreadable or
    /// malformed on-disk image is an error (fail closed — silently
    /// re-simulating would mask the corruption).
    pub fn get(&self, key: u64) -> Result<Option<Arc<Vec<u8>>>, SnapshotError> {
        if let Some(hit) = self.mem.lock().unwrap().get(&key) {
            return Ok(Some(Arc::clone(hit)));
        }
        let Some(path) = self.file_for(key) else { return Ok(None) };
        let bytes = match std::fs::read(&path) {
            Ok(b) => b,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(SnapshotError::at(&path, format!("read: {e}"))),
        };
        let embedded =
            validate_header(&bytes).map_err(|mut e| {
                e.path = Some(path.clone());
                e
            })?;
        if embedded != key {
            return Err(SnapshotError::at(
                &path,
                format!("key mismatch: file claims {}, expected {}", hex16(embedded), hex16(key)),
            ));
        }
        let arc = Arc::new(bytes);
        self.mem.lock().unwrap().insert(key, Arc::clone(&arc));
        Ok(Some(arc))
    }

    /// Inserts the image for `key`, persisting it when the store has a
    /// backing directory. Concurrent producers of the same key are
    /// harmless: the images are byte-identical by construction.
    pub fn put(&self, key: u64, bytes: Vec<u8>) -> Result<(), SnapshotError> {
        let arc = Arc::new(bytes);
        if let Some(path) = self.file_for(key) {
            let tmp = path.with_extension(format!("tmp.{}", std::process::id()));
            std::fs::write(&tmp, arc.as_slice())
                .map_err(|e| SnapshotError::at(&tmp, format!("write: {e}")))?;
            std::fs::rename(&tmp, &path)
                .map_err(|e| SnapshotError::at(&path, format!("rename: {e}")))?;
        }
        self.mem.lock().unwrap().insert(key, arc);
        Ok(())
    }

    /// Number of images currently cached in memory.
    pub fn cached(&self) -> usize {
        self.mem.lock().unwrap().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> SystemConfig {
        SystemConfig::smoke()
    }

    #[test]
    fn key_covers_protocol_benchmark_config() {
        let base = snapshot_key(ProtocolKind::Directory, Benchmark::Apache, &cfg());
        assert_ne!(base, snapshot_key(ProtocolKind::DiCo, Benchmark::Apache, &cfg()));
        assert_ne!(base, snapshot_key(ProtocolKind::Directory, Benchmark::Radix, &cfg()));
        let mut seeded = cfg();
        seeded.seed ^= 1;
        assert_ne!(base, snapshot_key(ProtocolKind::Directory, Benchmark::Apache, &seeded));
        // Stable across calls.
        assert_eq!(base, snapshot_key(ProtocolKind::Directory, Benchmark::Apache, &cfg()));
    }

    #[test]
    fn header_round_trip_and_rejections() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 0xdead_beef);
        w.u64(42);
        let bytes = w.into_bytes();
        let mut r = read_header(&bytes, 0xdead_beef).unwrap();
        assert_eq!(r.u64().unwrap(), 42);
        r.finish().unwrap();

        // Wrong key.
        assert!(read_header(&bytes, 0xdead_beee).is_err());
        // Truncated header.
        assert!(read_header(&bytes[..4], 0xdead_beef).is_err());
        // Bad magic.
        let mut bad = bytes.clone();
        bad[0] ^= 0xff;
        assert!(read_header(&bad, 0xdead_beef).is_err());
        // Foreign version.
        let mut newer = bytes.clone();
        newer[8] = newer[8].wrapping_add(1);
        let err = read_header(&newer, 0xdead_beef).unwrap_err();
        assert!(err.detail.contains("version mismatch"), "{err}");
    }

    #[test]
    fn store_round_trips_in_memory_and_on_disk() {
        let mut w = SnapWriter::new();
        write_header(&mut w, 7);
        w.u64(99);
        let bytes = w.into_bytes();

        let mem = SnapshotStore::in_memory();
        assert!(mem.get(7).unwrap().is_none());
        mem.put(7, bytes.clone()).unwrap();
        assert_eq!(*mem.get(7).unwrap().unwrap(), bytes);

        let dir = std::env::temp_dir().join(format!("cmpsim-snap-test-{}", std::process::id()));
        let disk = SnapshotStore::with_dir(&dir).unwrap();
        disk.put(7, bytes.clone()).unwrap();
        // A fresh store over the same dir sees the image from disk.
        let disk2 = SnapshotStore::with_dir(&dir).unwrap();
        assert_eq!(*disk2.get(7).unwrap().unwrap(), bytes);
        // Corrupt the file: the store must refuse it, not fall back.
        let path = dir.join(format!("snap-{}.bin", hex16(7)));
        std::fs::write(&path, b"garbage").unwrap();
        let disk3 = SnapshotStore::with_dir(&dir).unwrap();
        assert!(disk3.get(7).is_err());
        std::fs::remove_dir_all(&dir).ok();
    }
}
