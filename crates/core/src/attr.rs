//! Per-transaction critical-path and energy attribution.
//!
//! When [`SystemConfig::attribution`](crate::SystemConfig) is on, every
//! L1 miss's lifetime is decomposed into the typed [`Phase`]s of the
//! paper's Figure 7, and every dynamic-energy-bearing event (cache
//! array access, directory/coherence-info access, NoC routing, flit
//! transmission) is charged to the transaction that caused it — or to
//! the untracked background bucket when none is open on the block.
//!
//! Two hard tiling invariants hold (and are enforced by the integration
//! tests, per transaction and in aggregate):
//!
//! 1. **Latency**: the per-phase cycles of a completed transaction sum
//!    *exactly* to its measured end-to-end miss latency (the same
//!    `completion - issue` window the protocols record into
//!    `miss_latency`).
//! 2. **Energy**: attributed event counts (transactions + untracked +
//!    still-open) sum integer-exactly to the aggregate [`ProtoStats`]
//!    and NoC counters, so per-transaction energy computed from them
//!    tiles bit-exactly into the aggregate dynamic energy.
//!
//! The latency decomposition is a deterministic cursor sweep over the
//! transaction's recorded message spans, run at completion time: spans
//! are visited in `(depart, arrival)` order; uncovered gaps are charged
//! to the phase implied by where the transaction logically *is*
//! (requestor, home, owner, memory controller, or filled), and in-span
//! time is charged to the span's own class. Everything is clamped to
//! the `[issue, completion]` window, and any residue after the last
//! span is the fill phase — which is what makes the sum exact by
//! construction rather than by sampling.
//!
//! When VM identity is supplied ([`TxAttribution::with_vms`]), every
//! charge above is *additionally* bucketed by the originating VM (the
//! VM of the requestor core), and the same tiling holds per tenant:
//! summing any [`VmBucket`] field over all VMs reproduces the chip
//! aggregate bit-for-bit, because each charge is the same integer add
//! applied to exactly one VM bucket and to the chip total. On top of
//! that, every message is charged into an N x N [`MatrixCell`] grid —
//! cell `(a, v)` holds the costs VM `a` imposed on VM `v`: traffic of
//! `a`'s transactions delivered into `v`'s tiles, and critical-path
//! cycles `v`'s transactions lost in invalidation/forward/retry spans
//! terminating in `a`'s tiles (`stolen_cycles`).
//!
//! Like tracing, attribution is observation-only: it never touches the
//! event queue or the RNG, and simulated timing is bit-identical with
//! it on or off.

use cmpsim_engine::phase::{EventCounts, Phase, PhaseCycles, PHASES};
use cmpsim_engine::stats::Log2Hist;
use cmpsim_engine::Cycle;
use cmpsim_protocols::common::{Block, BlockReason, MsgKind, Node, Tile};
use std::collections::BTreeMap;

/// Critical-path classification of one network message.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgClass {
    /// A coherence request leaving the requestor (first hop).
    Request,
    /// A request re-sent past its first stop (home -> owner, owner
    /// chasing) — the indirection hop the DiCo family removes.
    Forward,
    /// A data response.
    Data,
    /// Home -> memory controller fetch.
    MemRead,
    /// Home -> memory controller writeback.
    MemWrite,
    /// Memory controller -> home data return.
    MemData,
    /// Invalidation round traffic (invs, acks, broadcast steps).
    Inv,
    /// NACK/retry traffic (ownership recalls and their failures).
    Retry,
    /// Ordering-point maintenance (registrations, unblocks, writeback
    /// acks, transfers, hints).
    Control,
}

/// Classifies a protocol message for phase charging. `src` distinguishes
/// a first-hop request (from the requestor's L1) from a forward.
pub fn classify(kind: &MsgKind, src: Node) -> MsgClass {
    match kind {
        MsgKind::Req(r) => {
            if matches!(src, Node::L1(_)) && src.tile() == r.requestor {
                MsgClass::Request
            } else {
                MsgClass::Forward
            }
        }
        MsgKind::Data(_) => MsgClass::Data,
        MsgKind::MemData => MsgClass::MemData,
        MsgKind::Inv { .. }
        | MsgKind::InvProvider { .. }
        | MsgKind::InvSilent
        | MsgKind::Ack
        | MsgKind::AckCount { .. }
        | MsgKind::BcastInv { .. }
        | MsgKind::BcastAck
        | MsgKind::BcastUnblock
        | MsgKind::BcastDone { .. } => MsgClass::Inv,
        MsgKind::OwnershipRecall | MsgKind::RecallFailed => MsgClass::Retry,
        _ => MsgClass::Control,
    }
}

/// In-flight time of a span, by class.
fn span_phase(class: MsgClass) -> Phase {
    match class {
        MsgClass::Request => Phase::ReqNet,
        MsgClass::Forward => Phase::OwnerInd,
        MsgClass::Data => Phase::DataNet,
        MsgClass::MemRead | MsgClass::MemWrite | MsgClass::MemData => Phase::Memory,
        MsgClass::Inv => Phase::Inv,
        MsgClass::Retry => Phase::Retry,
        // Ordering-point maintenance is precisely the serialization the
        // home imposes on the transaction, so it charges the home phase.
        MsgClass::Control => Phase::Home,
    }
}

/// Where the transaction logically sits between spans.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Loc {
    /// At the requestor, request not yet departed (L1 lookup).
    Requestor,
    /// At the ordering point (home directory, or the owner a direct
    /// DiCo request reached): lookup + queueing.
    Home,
    /// At an indirected owner (forwarded request parked there).
    Owner,
    /// At the memory controller (queueing + DRAM access).
    MemCtrl,
    /// Back at the requestor, data arrived (fill + completion delay).
    Filled,
}

/// Gap (non-span) time is charged by location.
fn gap_phase(loc: Loc) -> Phase {
    match loc {
        Loc::Requestor => Phase::ReqNet,
        Loc::Home => Phase::Home,
        Loc::Owner => Phase::OwnerInd,
        Loc::MemCtrl => Phase::Memory,
        Loc::Filled => Phase::Fill,
    }
}

/// One recorded message span of an open transaction.
#[derive(Debug, Clone, Copy)]
struct AttrEvent {
    depart: Cycle,
    arrival: Cycle,
    class: MsgClass,
    /// Destination is an L1 (vs L2) — a data response to the
    /// requestor's L1 moves the transaction to [`Loc::Filled`].
    dst_l1: bool,
    dst_tile: Tile,
}

fn transition(loc: Loc, e: &AttrEvent, requestor: Tile) -> Loc {
    match e.class {
        MsgClass::Request => Loc::Home,
        MsgClass::Forward => Loc::Owner,
        MsgClass::MemRead => Loc::MemCtrl,
        MsgClass::MemData => Loc::Home,
        MsgClass::Data if e.dst_l1 && e.dst_tile == requestor => Loc::Filled,
        _ => loc,
    }
}

/// The deterministic cursor sweep: charges `[issued, end)` across the
/// phases. Returns the per-phase cycles (summing exactly to
/// `end - issued`) and the final location. `on_span` observes each
/// span's clamped in-span charge (for cross-VM stolen-cycle
/// accounting); pass a no-op closure when only the phases matter.
fn sweep(
    issued: Cycle,
    requestor: Tile,
    events: &mut [AttrEvent],
    end: Cycle,
    mut on_span: impl FnMut(&AttrEvent, u64),
) -> (PhaseCycles, Loc) {
    events.sort_by_key(|e| (e.depart, e.arrival));
    let mut pc = PhaseCycles::default();
    let mut cur = issued;
    let mut loc = Loc::Requestor;
    for e in events.iter() {
        if cur >= end {
            break;
        }
        if e.depart > cur {
            let stop = e.depart.min(end);
            pc.add(gap_phase(loc), stop - cur);
            cur = stop;
        }
        if e.arrival > cur {
            let stop = e.arrival.min(end);
            if stop > cur {
                pc.add(span_phase(e.class), stop - cur);
                on_span(e, stop - cur);
                cur = stop;
            }
        }
        loc = transition(loc, e, requestor);
    }
    if end > cur {
        pc.add(gap_phase(loc), end - cur);
    }
    (pc, loc)
}

/// One open (issued, not yet completed) transaction.
#[derive(Debug, Clone)]
struct OpenAttr {
    block: Block,
    write: bool,
    issued: Cycle,
    requestor: Tile,
    events: Vec<AttrEvent>,
    counts: EventCounts,
    /// The missed block is backed by a deduplicated (inter-VM shared)
    /// page — the transaction is cross-VM by construction.
    dedup: bool,
}

/// Per-VM bucket of the chip-level attribution aggregates. Summing any
/// field over all VMs reproduces the corresponding chip aggregate
/// bit-for-bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct VmBucket {
    /// Completed transactions issued by this VM's cores.
    pub completed: u64,
    /// Sum of their end-to-end miss latencies.
    pub latency_cycles: u64,
    /// Their per-phase critical-path cycles (sums to `latency_cycles`).
    pub phase_cycles: PhaseCycles,
    /// Their attributed energy-event counts.
    pub counts: EventCounts,
    /// Pre-issue core wait on MSHR conflicts.
    pub mshr_wait_cycles: u64,
    /// Pre-issue core wait on busy/locked blocks.
    pub retry_wait_cycles: u64,
    /// Completed transactions on VM-private blocks.
    pub intra_txs: u64,
    /// Completed transactions on dedup-backed (inter-VM shared) blocks.
    pub cross_txs: u64,
    /// Critical-path cycles this VM's transactions lost in
    /// invalidation/forward/retry spans ending in *other* VMs' tiles
    /// (the row sum of its column in the interference matrix, off the
    /// diagonal).
    pub stolen_cycles: u64,
    /// Transactions still open at the end of the run.
    pub open_txs: u64,
}

/// One cell `(aggressor a, victim v)` of the cross-VM interference
/// matrix: costs VM `a` imposed on VM `v`. Message counts are charged
/// at send time — `a` = the VM of the transaction (or source tile) the
/// message belongs to, `v` = the VM of the destination tile. Stolen
/// cycles are charged at completion — `v` = the requestor VM whose
/// critical path grew, `a` = the VM of the remote tile the
/// invalidation/forward/retry span ended in. The diagonal holds a VM's
/// self-interference.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatrixCell {
    /// Messages delivered into the victim's tiles.
    pub msgs: u64,
    /// Of which: invalidation-round traffic.
    pub inv_msgs: u64,
    /// Of which: forwarded (indirected) requests.
    pub fwd_msgs: u64,
    /// Of which: traffic on dedup-backed (inter-VM shared) blocks.
    pub dedup_msgs: u64,
    /// Routing events of those messages.
    pub routing: u64,
    /// Flit-link traversals of those messages.
    pub flit_links: u64,
    /// Victim critical-path cycles spent in inv/forward/retry spans
    /// ending in the aggressor's tiles.
    pub stolen_cycles: u64,
}

impl MatrixCell {
    /// True when every field is zero (cell renders as empty).
    pub fn is_zero(&self) -> bool {
        *self == MatrixCell::default()
    }
}

/// The per-transaction attribution tracker. Owned by the simulator;
/// only present when attribution is enabled, so the disabled hot path
/// is a single `Option` test per hook.
#[derive(Debug, Clone)]
pub struct TxAttribution {
    /// The open transaction of each tile (one outstanding miss per
    /// core, so tile indexes the open set exactly).
    open: Vec<Option<OpenAttr>>,
    /// Tiles with an open transaction on a block, oldest first — the
    /// attribution order (identical to the tracer's rule).
    by_block: BTreeMap<Block, Vec<Tile>>,
    /// Per-phase per-transaction distributions (one sample per
    /// completed transaction per phase, zeros included, so every hist
    /// count equals `completed`).
    hists: Vec<Log2Hist>,
    /// Total cycles per phase over completed transactions.
    totals: PhaseCycles,
    /// Completed transactions since the last reset.
    completed: u64,
    /// Completed transactions whose phase sum equaled their end-to-end
    /// latency (always == `completed`; a hard invariant).
    reconciled: u64,
    /// Sum of end-to-end latencies (mirrors `miss_latency.sum()`).
    latency_cycles: u64,
    /// Pre-issue wait: cycles cores spent retrying on an MSHR conflict.
    mshr_wait_cycles: u64,
    /// Pre-issue wait: cycles cores spent retrying on a busy block.
    retry_wait_cycles: u64,
    /// Energy-event counts of completed transactions.
    tx_counts: EventCounts,
    /// Energy-event counts with no open transaction on their block.
    untracked_counts: EventCounts,
    /// VM of each tile's core (all zeros without tenant identity).
    vm_of: Vec<usize>,
    /// Number of VMs (1 without tenant identity).
    num_vms: usize,
    /// Per-VM buckets of the aggregates above, indexed by VM id.
    vm: Vec<VmBucket>,
    /// Cross-VM interference matrix, row-major `[aggressor][victim]`.
    matrix: Vec<MatrixCell>,
    /// Energy-event counts of completed transactions by requestor tile
    /// (the spatial split of `tx_counts`, for energy heatmaps).
    tile_counts: Vec<EventCounts>,
}

impl TxAttribution {
    /// Creates a tracker for a `tiles`-tile chip without tenant
    /// identity (everything lands in a single VM-0 bucket).
    pub fn new(tiles: usize) -> Self {
        Self::with_vms(vec![0; tiles], 1)
    }

    /// Creates a tracker with tenant identity: `vm_of[tile]` is the VM
    /// the core on `tile` belongs to, each `< num_vms`.
    pub fn with_vms(vm_of: Vec<usize>, num_vms: usize) -> Self {
        let tiles = vm_of.len();
        let num_vms = num_vms.max(1);
        debug_assert!(vm_of.iter().all(|&v| v < num_vms), "vm_of out of range");
        Self {
            open: vec![None; tiles],
            by_block: BTreeMap::new(),
            hists: (0..PHASES).map(|_| Log2Hist::new()).collect(),
            totals: PhaseCycles::default(),
            completed: 0,
            reconciled: 0,
            latency_cycles: 0,
            mshr_wait_cycles: 0,
            retry_wait_cycles: 0,
            tx_counts: EventCounts::default(),
            untracked_counts: EventCounts::default(),
            vm: vec![VmBucket::default(); num_vms],
            matrix: vec![MatrixCell::default(); num_vms * num_vms],
            tile_counts: vec![EventCounts::default(); tiles],
            vm_of,
            num_vms,
        }
    }

    /// Opens a transaction for the L1 miss issuing at `now` on `tile`.
    /// `dedup` marks a miss on a deduplicated (inter-VM shared) block.
    pub fn on_issue(&mut self, now: Cycle, tile: Tile, block: Block, write: bool, dedup: bool) {
        if let Some(stale) = self.open[tile].take() {
            self.unlink(stale.block, tile);
        }
        self.open[tile] = Some(OpenAttr {
            block,
            write,
            issued: now,
            requestor: tile,
            events: Vec::new(),
            counts: EventCounts::default(),
            dedup,
        });
        self.by_block.entry(block).or_default().push(tile);
    }

    fn owner_of(&mut self, block: Block) -> Option<&mut OpenAttr> {
        let tile = *self.by_block.get(&block)?.first()?;
        self.open[tile].as_mut()
    }

    /// Records one network message span on `block`, charging its NoC
    /// energy events (`links` routings, `links * flits` flit-links) the
    /// same way the mesh counts them, plus one interference-matrix cell
    /// (aggressor = the VM of the owning transaction's requestor, or of
    /// `src`'s tile for untracked traffic; victim = the VM of `dst`'s
    /// tile). `dedup` marks traffic on an inter-VM shared block.
    #[allow(clippy::too_many_arguments)]
    pub fn on_message(
        &mut self,
        depart: Cycle,
        arrival: Cycle,
        class: MsgClass,
        block: Block,
        src: Node,
        dst: Node,
        links: u64,
        flits: u64,
        dedup: bool,
    ) {
        let noc = EventCounts { routing: links, flit_links: links * flits, ..Default::default() };
        let owner_tile = self.by_block.get(&block).and_then(|tiles| tiles.first().copied());
        let tx = match owner_tile {
            Some(t) => self.open[t].as_mut(),
            None => None,
        };
        let aggressor = match tx {
            Some(tx) => {
                tx.events.push(AttrEvent {
                    depart,
                    arrival,
                    class,
                    dst_l1: matches!(dst, Node::L1(_)),
                    dst_tile: dst.tile(),
                });
                tx.counts.merge(&noc);
                tx.dedup |= dedup;
                self.vm_of[tx.requestor]
            }
            None => {
                self.untracked_counts.merge(&noc);
                self.vm_of[src.tile()]
            }
        };
        let victim = self.vm_of[dst.tile()];
        let cell = &mut self.matrix[aggressor * self.num_vms + victim];
        cell.msgs += 1;
        match class {
            MsgClass::Inv => cell.inv_msgs += 1,
            MsgClass::Forward => cell.fwd_msgs += 1,
            _ => {}
        }
        if dedup {
            cell.dedup_msgs += 1;
        }
        cell.routing += links;
        cell.flit_links += links * flits;
    }

    /// Charges a cache-side energy-event delta (the counter movement of
    /// one protocol dispatch) to the transaction open on `block`.
    pub fn on_cache_events(&mut self, block: Block, delta: EventCounts) {
        if delta.is_zero() {
            return;
        }
        if let Some(tx) = self.owner_of(block) {
            tx.counts.merge(&delta);
        } else {
            self.untracked_counts.merge(&delta);
        }
    }

    /// Records a blocked (pre-issue) core retry of `cycles` cycles on
    /// `tile`'s core.
    pub fn on_blocked(&mut self, reason: BlockReason, cycles: u64, tile: Tile) {
        let vm = &mut self.vm[self.vm_of[tile]];
        match reason {
            BlockReason::MshrConflict => {
                self.mshr_wait_cycles += cycles;
                vm.mshr_wait_cycles += cycles;
            }
            BlockReason::BusyBlock => {
                self.retry_wait_cycles += cycles;
                vm.retry_wait_cycles += cycles;
            }
        }
    }

    /// Completes the transaction open on `tile` at `now`: runs the
    /// sweep and folds the result into the chip, VM, tile, and matrix
    /// aggregates.
    pub fn on_completion(&mut self, now: Cycle, tile: Tile) {
        let Some(mut tx) = self.open[tile].take() else {
            return;
        };
        self.unlink(tx.block, tile);
        let latency = now.saturating_sub(tx.issued);
        let req_vm = self.vm_of[tx.requestor];
        let num_vms = self.num_vms;
        let vm_of = &self.vm_of;
        let matrix = &mut self.matrix;
        let mut stolen = 0u64;
        let (phases, _) = sweep(tx.issued, tx.requestor, &mut tx.events, now, |e, cycles| {
            // Cross-VM critical-path theft: inv/forward/retry spans of
            // this (victim) transaction ending in another VM's tiles.
            let dst_vm = vm_of[e.dst_tile];
            if dst_vm != req_vm
                && matches!(e.class, MsgClass::Inv | MsgClass::Forward | MsgClass::Retry)
            {
                matrix[dst_vm * num_vms + req_vm].stolen_cycles += cycles;
                stolen += cycles;
            }
        });
        for (p, cycles) in phases.iter() {
            self.hists[p.index()].record(cycles);
        }
        self.totals.merge(&phases);
        self.completed += 1;
        self.latency_cycles += latency;
        if phases.total() == latency {
            self.reconciled += 1;
        }
        self.tx_counts.merge(&tx.counts);
        self.tile_counts[tx.requestor].merge(&tx.counts);
        let vm = &mut self.vm[req_vm];
        vm.completed += 1;
        vm.latency_cycles += latency;
        vm.phase_cycles.merge(&phases);
        vm.counts.merge(&tx.counts);
        vm.stolen_cycles += stolen;
        if tx.dedup {
            vm.cross_txs += 1;
        } else {
            vm.intra_txs += 1;
        }
    }

    fn unlink(&mut self, block: Block, tile: Tile) {
        if let Some(tiles) = self.by_block.get_mut(&block) {
            if let Some(i) = tiles.iter().position(|&t| t == tile) {
                tiles.remove(i);
            }
            if tiles.is_empty() {
                self.by_block.remove(&block);
            }
        }
    }

    /// Warm-up reset: zeroes every aggregate (mirroring the proto/NoC
    /// stats resets) and the open transactions' energy counts, but
    /// keeps their recorded spans — a straddling miss still reports its
    /// full issue-to-completion decomposition, exactly matching the
    /// full latency the protocol records for it.
    pub fn reset(&mut self) {
        self.hists = (0..PHASES).map(|_| Log2Hist::new()).collect();
        self.totals = PhaseCycles::default();
        self.completed = 0;
        self.reconciled = 0;
        self.latency_cycles = 0;
        self.mshr_wait_cycles = 0;
        self.retry_wait_cycles = 0;
        self.tx_counts = EventCounts::default();
        self.untracked_counts = EventCounts::default();
        self.vm = vec![VmBucket::default(); self.num_vms];
        self.matrix = vec![MatrixCell::default(); self.num_vms * self.num_vms];
        self.tile_counts = vec![EventCounts::default(); self.tile_counts.len()];
        for tx in self.open.iter_mut().flatten() {
            tx.counts = EventCounts::default();
        }
    }

    /// Completed-transaction phase totals so far (interval sampling).
    pub fn phase_totals(&self) -> PhaseCycles {
        self.totals
    }

    /// Renders up to `n` open transactions' phase timelines at `now`
    /// (for watchdog stall dumps): where each in-flight miss is stuck.
    pub fn stall_lines(&self, now: Cycle, n: usize) -> Vec<String> {
        self.open
            .iter()
            .enumerate()
            .filter_map(|(tile, o)| o.as_ref().map(|tx| (tile, tx)))
            .take(n)
            .map(|(tile, tx)| {
                let mut events = tx.events.clone();
                let (phases, loc) = sweep(tx.issued, tx.requestor, &mut events, now, |_, _| {});
                let parts: Vec<String> = phases
                    .iter()
                    .filter(|&(_, c)| c > 0)
                    .map(|(p, c)| format!("{}={}", p.key(), c))
                    .collect();
                format!(
                    "tile {tile} block {:#x} {} issued@{} age={}: {} (in {})",
                    tx.block,
                    if tx.write { "store" } else { "load" },
                    tx.issued,
                    now.saturating_sub(tx.issued),
                    if parts.is_empty() { "-".to_string() } else { parts.join(" ") },
                    gap_phase(loc).key(),
                )
            })
            .collect()
    }

    /// Finalizes into the exportable log. Counts of transactions still
    /// open (none after a clean drain) land in `open_counts` so the
    /// energy tiling stays integer-exact regardless.
    pub fn finish(self) -> BreakdownLog {
        let mut open_counts = EventCounts::default();
        let mut open_txs = 0;
        let mut vm = self.vm;
        for tx in self.open.iter().flatten() {
            open_counts.merge(&tx.counts);
            open_txs += 1;
            vm[self.vm_of[tx.requestor]].open_txs += 1;
        }
        BreakdownLog {
            hists: self.hists,
            phase_cycles: self.totals,
            completed: self.completed,
            reconciled: self.reconciled,
            latency_cycles: self.latency_cycles,
            open_txs,
            mshr_wait_cycles: self.mshr_wait_cycles,
            retry_wait_cycles: self.retry_wait_cycles,
            tx_counts: self.tx_counts,
            untracked_counts: self.untracked_counts,
            open_counts,
            vm,
            matrix: self.matrix,
            num_vms: self.num_vms,
            vm_of: self.vm_of,
            tile_counts: self.tile_counts,
        }
    }
}

/// The attribution result of one finished run.
#[derive(Debug, Clone)]
pub struct BreakdownLog {
    /// Per-phase per-transaction distributions, indexed by
    /// [`Phase::index`]. Every hist's count equals `completed`.
    pub hists: Vec<Log2Hist>,
    /// Total cycles per phase over completed transactions; sums exactly
    /// to `latency_cycles`.
    pub phase_cycles: PhaseCycles,
    /// Transactions completed in the measured window (equals the
    /// protocol's `miss_latency.count()`).
    pub completed: u64,
    /// Transactions whose phase sum equaled their latency (== `completed`).
    pub reconciled: u64,
    /// Sum of end-to-end miss latencies (equals `miss_latency.sum()`).
    pub latency_cycles: u64,
    /// Transactions still open at the end (0 on a clean drain).
    pub open_txs: u64,
    /// Pre-issue core wait on MSHR conflicts (outside the miss window).
    pub mshr_wait_cycles: u64,
    /// Pre-issue core wait on busy/locked blocks (outside the window).
    pub retry_wait_cycles: u64,
    /// Energy events attributed to completed transactions.
    pub tx_counts: EventCounts,
    /// Energy events of background traffic (no open transaction).
    pub untracked_counts: EventCounts,
    /// Energy events of transactions still open at the end.
    pub open_counts: EventCounts,
    /// Per-VM buckets; each field sums over VMs to the chip aggregate
    /// of the same name bit-for-bit.
    pub vm: Vec<VmBucket>,
    /// Cross-VM interference matrix, row-major `[aggressor][victim]`,
    /// `num_vms * num_vms` cells.
    pub matrix: Vec<MatrixCell>,
    /// Number of VMs (matrix dimension; `vm.len()`).
    pub num_vms: usize,
    /// VM of each tile's core.
    pub vm_of: Vec<usize>,
    /// Energy events of completed transactions by requestor tile (the
    /// spatial split of `tx_counts`).
    pub tile_counts: Vec<EventCounts>,
}

impl BreakdownLog {
    /// The interference-matrix cell for `(aggressor, victim)`.
    pub fn matrix_cell(&self, aggressor: usize, victim: usize) -> &MatrixCell {
        &self.matrix[aggressor * self.num_vms + victim]
    }
    /// All attributed energy events; equals the aggregate proto/NoC
    /// counters integer-exactly.
    pub fn total_counts(&self) -> EventCounts {
        let mut c = self.tx_counts;
        c.merge(&self.untracked_counts);
        c.merge(&self.open_counts);
        c
    }

    /// The per-transaction distribution of `phase`.
    pub fn phase_hist(&self, phase: Phase) -> &Log2Hist {
        &self.hists[phase.index()]
    }

    /// Mean cycles per miss spent in `phase`.
    pub fn phase_avg(&self, phase: Phase) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            self.phase_cycles.get(phase) as f64 / self.completed as f64
        }
    }

    /// Share of total miss latency spent in `phase` (0..1).
    pub fn phase_frac(&self, phase: Phase) -> f64 {
        if self.latency_cycles == 0 {
            0.0
        } else {
            self.phase_cycles.get(phase) as f64 / self.latency_cycles as f64
        }
    }

    /// Publishes the attribution metrics under `prefix` (counters,
    /// per-phase cycle totals and Log2Hists, per-bucket event counts).
    pub fn publish(&self, prefix: &str, reg: &mut cmpsim_engine::MetricsRegistry) {
        reg.set_counter(&format!("{prefix}.completed"), self.completed);
        reg.set_counter(&format!("{prefix}.reconciled"), self.reconciled);
        reg.set_counter(&format!("{prefix}.open_txs"), self.open_txs);
        reg.set_counter(&format!("{prefix}.latency_cycles"), self.latency_cycles);
        reg.set_counter(&format!("{prefix}.mshr_wait_cycles"), self.mshr_wait_cycles);
        reg.set_counter(&format!("{prefix}.retry_wait_cycles"), self.retry_wait_cycles);
        for p in Phase::all() {
            reg.set_counter(
                &format!("{prefix}.phase.{}.cycles", p.key()),
                self.phase_cycles.get(p),
            );
            reg.merge_hist(&format!("{prefix}.phase.{}", p.key()), self.phase_hist(p));
        }
        for (bucket, counts) in [
            ("tx", &self.tx_counts),
            ("untracked", &self.untracked_counts),
            ("open", &self.open_counts),
        ] {
            for (name, v) in counts.fields() {
                reg.set_counter(&format!("{prefix}.events.{bucket}.{name}"), v);
            }
        }
        for (i, vm) in self.vm.iter().enumerate() {
            reg.set_counter(&format!("{prefix}.vm.{i}.completed"), vm.completed);
            reg.set_counter(&format!("{prefix}.vm.{i}.latency_cycles"), vm.latency_cycles);
            reg.set_counter(&format!("{prefix}.vm.{i}.intra_txs"), vm.intra_txs);
            reg.set_counter(&format!("{prefix}.vm.{i}.cross_txs"), vm.cross_txs);
            reg.set_counter(&format!("{prefix}.vm.{i}.stolen_cycles"), vm.stolen_cycles);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmpsim_protocols::common::ReqInfo;

    fn req(requestor: Tile) -> MsgKind {
        MsgKind::Req(ReqInfo {
            requestor,
            write: false,
            forwarder: None,
            via_home: false,
            predicted: false,
            vouched: false,
            hops: 0,
        })
    }

    #[test]
    fn classify_request_vs_forward() {
        let k = req(3);
        assert_eq!(classify(&k, Node::L1(3)), MsgClass::Request);
        assert_eq!(classify(&k, Node::L2(5)), MsgClass::Forward);
        assert_eq!(classify(&k, Node::L1(4)), MsgClass::Forward);
        assert_eq!(classify(&MsgKind::MemData, Node::L2(0)), MsgClass::MemData);
        assert_eq!(classify(&MsgKind::OwnershipRecall, Node::L2(0)), MsgClass::Retry);
        assert_eq!(classify(&MsgKind::WbAck, Node::L2(0)), MsgClass::Control);
        assert_eq!(classify(&MsgKind::Ack, Node::L1(0)), MsgClass::Inv);
    }

    /// A two-hop miss: request 10..20, home processes until 25, data
    /// 25..40, completion at 43. Phases must tile [10, 43] exactly.
    #[test]
    fn sweep_tiles_simple_miss() {
        let mut a = TxAttribution::new(4);
        a.on_issue(10, 1, 0x40, false, false);
        a.on_message(10, 20, MsgClass::Request, 0x40, Node::L1(1), Node::L2(2), 3, 1, false);
        a.on_message(25, 40, MsgClass::Data, 0x40, Node::L2(2), Node::L1(1), 3, 5, false);
        a.on_completion(43, 1);
        let log = a.finish();
        assert_eq!(log.completed, 1);
        assert_eq!(log.reconciled, 1);
        assert_eq!(log.latency_cycles, 33);
        assert_eq!(log.phase_cycles.total(), 33);
        assert_eq!(log.phase_cycles.get(Phase::ReqNet), 10);
        assert_eq!(log.phase_cycles.get(Phase::Home), 5);
        assert_eq!(log.phase_cycles.get(Phase::DataNet), 15);
        assert_eq!(log.phase_cycles.get(Phase::Fill), 3);
        // NoC events: 3 + 3 routings, 3*1 + 3*5 flit-links.
        assert_eq!(log.tx_counts.routing, 6);
        assert_eq!(log.tx_counts.flit_links, 18);
    }

    /// A memory miss adds the MemRead/MemData bracket; the controller
    /// queueing + DRAM gap between them charges the memory phase.
    #[test]
    fn sweep_charges_memory_gap() {
        let mut a = TxAttribution::new(4);
        a.on_issue(0, 0, 0x80, true, false);
        a.on_message(0, 10, MsgClass::Request, 0x80, Node::L1(0), Node::L2(3), 2, 1, false);
        a.on_message(12, 20, MsgClass::MemRead, 0x80, Node::L2(3), Node::L2(3), 4, 1, false);
        // DRAM: 20..320 is a gap at the controller.
        a.on_message(320, 330, MsgClass::MemData, 0x80, Node::L2(3), Node::L2(3), 4, 5, false);
        a.on_message(335, 350, MsgClass::Data, 0x80, Node::L2(3), Node::L1(0), 5, 5, false);
        a.on_completion(352, 0);
        let log = a.finish();
        assert_eq!(log.reconciled, 1);
        assert_eq!(log.phase_cycles.total(), 352);
        // Memory = MemRead span (8) + DRAM gap (300) + MemData span (10).
        assert_eq!(log.phase_cycles.get(Phase::Memory), 318);
        assert_eq!(log.phase_cycles.get(Phase::Home), 2 + 5);
        assert_eq!(log.phase_cycles.get(Phase::DataNet), 15);
        assert_eq!(log.phase_cycles.get(Phase::Fill), 2);
    }

    /// Spans arriving after the completion (crossing traffic) are
    /// clamped; the sum still tiles exactly.
    #[test]
    fn sweep_clamps_to_completion() {
        let mut a = TxAttribution::new(2);
        a.on_issue(100, 0, 0x10, false, false);
        a.on_message(100, 110, MsgClass::Request, 0x10, Node::L1(0), Node::L2(1), 2, 1, false);
        a.on_message(110, 500, MsgClass::Inv, 0x10, Node::L2(1), Node::L1(1), 2, 1, false);
        a.on_completion(130, 0);
        let log = a.finish();
        assert_eq!(log.reconciled, 1);
        assert_eq!(log.phase_cycles.total(), 30);
        assert_eq!(log.phase_cycles.get(Phase::Inv), 20);
    }

    #[test]
    fn untracked_traffic_lands_in_background_bucket() {
        let mut a = TxAttribution::new(2);
        a.on_message(5, 9, MsgClass::Control, 0x99, Node::L2(1), Node::L2(0), 2, 1, false);
        a.on_cache_events(0x99, EventCounts { l2_tag: 1, ..Default::default() });
        let log = a.finish();
        assert_eq!(log.untracked_counts.routing, 2);
        assert_eq!(log.untracked_counts.l2_tag, 1);
        assert!(log.tx_counts.is_zero());
        assert_eq!(log.total_counts().routing, 2);
    }

    #[test]
    fn blocked_waits_split_by_reason() {
        let mut a = TxAttribution::new(1);
        a.on_blocked(BlockReason::MshrConflict, 7, 0);
        a.on_blocked(BlockReason::MshrConflict, 7, 0);
        a.on_blocked(BlockReason::BusyBlock, 7, 0);
        let log = a.finish();
        assert_eq!(log.mshr_wait_cycles, 14);
        assert_eq!(log.retry_wait_cycles, 7);
    }

    /// Reset keeps a straddling transaction's spans (its full-latency
    /// decomposition survives) but zeroes its energy counts.
    #[test]
    fn reset_keeps_spans_zeroes_counts() {
        let mut a = TxAttribution::new(2);
        a.on_issue(0, 0, 0x40, false, false);
        a.on_message(0, 10, MsgClass::Request, 0x40, Node::L1(0), Node::L2(1), 3, 1, false);
        a.reset();
        a.on_message(12, 30, MsgClass::Data, 0x40, Node::L2(1), Node::L1(0), 3, 5, false);
        a.on_completion(32, 0);
        let log = a.finish();
        assert_eq!(log.completed, 1);
        assert_eq!(log.reconciled, 1);
        // Full latency decomposed, including the pre-reset request span.
        assert_eq!(log.phase_cycles.total(), 32);
        assert_eq!(log.phase_cycles.get(Phase::ReqNet), 10);
        // Only post-reset energy counted (3 routings of the data msg).
        assert_eq!(log.tx_counts.routing, 3);
    }

    #[test]
    fn hists_record_one_sample_per_phase_per_tx() {
        let mut a = TxAttribution::new(2);
        a.on_issue(0, 0, 0x40, false, false);
        a.on_completion(8, 0);
        a.on_issue(10, 1, 0x80, true, false);
        a.on_completion(30, 1);
        let log = a.finish();
        for p in Phase::all() {
            assert_eq!(log.phase_hist(p).summary().count(), 2, "{p:?}");
        }
        // A miss with no recorded spans is all requestor-side gap.
        assert_eq!(log.phase_cycles.get(Phase::ReqNet), 28);
    }

    #[test]
    fn stall_lines_show_current_phase() {
        let mut a = TxAttribution::new(4);
        a.on_issue(10, 2, 0x40, true, false);
        a.on_message(10, 20, MsgClass::Request, 0x40, Node::L1(2), Node::L2(3), 2, 1, false);
        a.on_message(22, 30, MsgClass::MemRead, 0x40, Node::L2(3), Node::L2(3), 2, 1, false);
        let lines = a.stall_lines(500, 8);
        assert_eq!(lines.len(), 1);
        assert!(lines[0].contains("tile 2"), "{}", lines[0]);
        assert!(lines[0].contains("store"), "{}", lines[0]);
        assert!(lines[0].contains("(in memory)"), "{}", lines[0]);
    }

    /// Two VMs on a 4-tile chip: every chip aggregate is the exact sum
    /// of the two VM buckets, and dedup-backed misses classify as
    /// cross-VM.
    #[test]
    fn vm_buckets_tile_chip_aggregates() {
        let mut a = TxAttribution::with_vms(vec![0, 0, 1, 1], 2);
        // VM 0, tile 0: private-block miss.
        a.on_issue(0, 0, 0x40, false, false);
        a.on_message(0, 10, MsgClass::Request, 0x40, Node::L1(0), Node::L2(1), 2, 1, false);
        a.on_message(12, 20, MsgClass::Data, 0x40, Node::L2(1), Node::L1(0), 2, 5, false);
        a.on_completion(22, 0);
        // VM 1, tile 2: dedup-backed miss.
        a.on_issue(30, 2, 0x80, true, true);
        a.on_message(30, 40, MsgClass::Request, 0x80, Node::L1(2), Node::L2(3), 1, 1, true);
        a.on_message(42, 50, MsgClass::Data, 0x80, Node::L2(3), Node::L1(2), 1, 5, true);
        a.on_completion(51, 2);
        a.on_blocked(BlockReason::MshrConflict, 5, 3);
        let log = a.finish();

        assert_eq!(log.vm.len(), 2);
        assert_eq!(log.vm.iter().map(|v| v.completed).sum::<u64>(), log.completed);
        assert_eq!(log.vm.iter().map(|v| v.latency_cycles).sum::<u64>(), log.latency_cycles);
        let mut phases = PhaseCycles::default();
        let mut counts = EventCounts::default();
        for v in &log.vm {
            phases.merge(&v.phase_cycles);
            counts.merge(&v.counts);
        }
        assert_eq!(phases, log.phase_cycles);
        assert_eq!(counts, log.tx_counts);
        assert_eq!(log.vm.iter().map(|v| v.mshr_wait_cycles).sum::<u64>(), log.mshr_wait_cycles);
        assert_eq!(log.vm[0].intra_txs, 1);
        assert_eq!(log.vm[0].cross_txs, 0);
        assert_eq!(log.vm[1].cross_txs, 1, "dedup-backed miss is cross-VM");
        assert_eq!(log.vm[1].mshr_wait_cycles, 5, "blocked wait charged to tile 3's VM");
        // Tile counts split tx_counts spatially.
        let mut tile_sum = EventCounts::default();
        for t in &log.tile_counts {
            tile_sum.merge(t);
        }
        assert_eq!(tile_sum, log.tx_counts);
        assert_eq!(log.tile_counts[0].routing, 4);
        assert_eq!(log.tile_counts[2].routing, 2);
    }

    /// Matrix cells charge aggressor (message's VM) -> victim (dest
    /// tile's VM); stolen cycles charge the remote VM an inv span ended
    /// in, as aggressor over the requestor VM.
    #[test]
    fn matrix_charges_aggressor_to_victim() {
        let mut a = TxAttribution::with_vms(vec![0, 0, 1, 1], 2);
        a.on_issue(0, 0, 0xC0, true, true);
        a.on_message(0, 10, MsgClass::Request, 0xC0, Node::L1(0), Node::L2(1), 2, 1, true);
        // Invalidation into VM 1's tile 2: 10..30 on the critical path.
        a.on_message(10, 30, MsgClass::Inv, 0xC0, Node::L2(1), Node::L1(2), 3, 1, true);
        a.on_message(30, 40, MsgClass::Data, 0xC0, Node::L2(1), Node::L1(0), 2, 5, true);
        a.on_completion(42, 0);
        let log = a.finish();

        // Message accounting: VM 0's tx into VM 0 tiles (request + data)
        // and into VM 1's tile (the inv).
        assert_eq!(log.matrix_cell(0, 0).msgs, 2);
        assert_eq!(log.matrix_cell(0, 1).msgs, 1);
        assert_eq!(log.matrix_cell(0, 1).inv_msgs, 1);
        assert_eq!(log.matrix_cell(0, 1).dedup_msgs, 1);
        assert_eq!(log.matrix_cell(0, 1).routing, 3);
        assert_eq!(log.matrix_cell(0, 1).flit_links, 3);
        // The inv span's 20 cycles were stolen from VM 0 by VM 1.
        assert_eq!(log.matrix_cell(1, 0).stolen_cycles, 20);
        assert_eq!(log.vm[0].stolen_cycles, 20);
        // Matrix routing sums to all attributed routing events.
        let matrix_routing: u64 = log.matrix.iter().map(|c| c.routing).sum();
        assert_eq!(matrix_routing, log.total_counts().routing);
        // Untracked traffic still lands in a cell (src tile's VM).
        a = TxAttribution::with_vms(vec![0, 0, 1, 1], 2);
        a.on_message(5, 9, MsgClass::Control, 0x99, Node::L2(2), Node::L2(0), 2, 1, false);
        let log = a.finish();
        assert_eq!(log.matrix_cell(1, 0).msgs, 1);
    }

    #[test]
    fn publish_exports_counters_and_hists() {
        let mut a = TxAttribution::new(2);
        a.on_issue(0, 0, 0x40, false, false);
        a.on_message(0, 10, MsgClass::Request, 0x40, Node::L1(0), Node::L2(1), 3, 1, false);
        a.on_completion(12, 0);
        let log = a.finish();
        let mut reg = cmpsim_engine::MetricsRegistry::new();
        log.publish("attr", &mut reg);
        let counters: std::collections::BTreeMap<_, _> = reg.counters().collect();
        assert_eq!(counters["attr.completed"], 1);
        assert_eq!(counters["attr.reconciled"], 1);
        assert_eq!(counters["attr.phase.req_net.cycles"], 10);
        assert_eq!(counters["attr.events.tx.routing"], 3);
        assert_eq!(counters["attr.vm.0.completed"], 1);
        assert_eq!(counters["attr.vm.0.intra_txs"], 1);
        assert_eq!(reg.hists().count(), PHASES);
    }
}
