//! Crash-dump artifacts and deterministic replay.
//!
//! When a run fails (watchdog stall, invariant violation, protocol
//! fault), [`crate::run_benchmark`] serializes everything needed to
//! reproduce it — protocol, benchmark, seed, the failing cycle and the
//! full [`SystemConfig`] — into a small JSON file. Because the event
//! queue is insertion-stable, a simulation is a pure function of its
//! configuration, so `cmpsim-cli replay <file>` re-runs the exact same
//! failure, optionally with the invariant checker force-enabled to
//! catch the first broken invariant instead of the eventual deadlock.
//!
//! The JSON codec is hand-rolled (the build is fully offline, so no
//! serde): a minimal value tree with a recursive-descent parser.
//! Numbers are kept as raw tokens so `u64` seeds and cycles round-trip
//! without floating-point loss.

use crate::config::SystemConfig;
use cmpsim_cache::Geometry;
use cmpsim_engine::{Cycle, FaultPlan};
use cmpsim_noc::NocConfig;
use cmpsim_protocols::common::{ChipSpec, Latencies, ProtocolKind};
use cmpsim_virt::{AreaMap, Placement};
use cmpsim_workloads::Benchmark;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Artifact schema version (bump on incompatible layout changes).
///
/// * v1 — original layout, no fault injection.
/// * v2 — adds the optional `faults` object (the active [`FaultPlan`])
///   to the config, so faulty runs replay with their exact fault
///   schedule. v1 artifacts still load (no plan).
pub const SCHEMA_VERSION: u64 = 2;

/// Everything needed to re-run a failing simulation deterministically.
#[derive(Debug, Clone)]
pub struct ReplayArtifact {
    /// Schema version of the serialized form.
    pub schema: u64,
    /// Protocol the failing run used.
    pub protocol: ProtocolKind,
    /// Benchmark the failing run used.
    pub benchmark: Benchmark,
    /// Failure kind label (see `SimError::kind_label`).
    pub error_kind: String,
    /// Cycle the failure was detected at.
    pub failing_cycle: Cycle,
    /// Events processed before the failure.
    pub events: u64,
    /// The complete configuration of the failing run.
    pub config: SystemConfig,
}

impl ReplayArtifact {
    /// Captures a failing run.
    pub fn new(
        protocol: ProtocolKind,
        benchmark: Benchmark,
        error_kind: &str,
        failing_cycle: Cycle,
        events: u64,
        config: &SystemConfig,
    ) -> Self {
        Self {
            schema: SCHEMA_VERSION,
            protocol,
            benchmark,
            error_kind: error_kind.to_string(),
            failing_cycle,
            events,
            config: config.clone(),
        }
    }

    /// Deterministic file name for this artifact.
    pub fn file_name(&self) -> String {
        format!(
            "cmpsim-crash-{}-{}-seed{}-cycle{}.json",
            self.protocol.name().to_lowercase(),
            self.benchmark.name(),
            self.config.seed,
            self.failing_cycle
        )
    }

    /// Directory artifacts are written to: `$CMPSIM_DUMP_DIR` if set,
    /// otherwise the system temp directory.
    pub fn dump_dir() -> PathBuf {
        cmpsim_engine::env::string(cmpsim_engine::env::DUMP_DIR)
            .map(PathBuf::from)
            .unwrap_or_else(std::env::temp_dir)
    }

    /// Writes the artifact into `dir` (or [`Self::dump_dir`] when
    /// `None`) and returns the path.
    pub fn save(&self, dir: Option<&Path>) -> std::io::Result<PathBuf> {
        let dir = dir.map(Path::to_path_buf).unwrap_or_else(Self::dump_dir);
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(self.file_name());
        std::fs::write(&path, self.to_json())?;
        Ok(path)
    }

    /// Reads an artifact back from `path`.
    pub fn load(path: &Path) -> Result<Self, String> {
        let text = std::fs::read_to_string(path)
            .map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        Self::from_json(&text)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json(&self) -> String {
        let mut j = Value::object();
        j.set("schema", Value::uint(self.schema));
        j.set("protocol", Value::string(self.protocol.name()));
        j.set("benchmark", Value::string(self.benchmark.name()));
        j.set("error", Value::string(&self.error_kind));
        j.set("failing_cycle", Value::uint(self.failing_cycle));
        j.set("events", Value::uint(self.events));
        j.set("config", config_to_json(&self.config));
        j.set(
            "manifest",
            crate::manifest::RunManifest::new(self.protocol, self.benchmark, &self.config)
                .to_value(),
        );
        let mut out = String::new();
        j.render(&mut out, 0);
        out.push('\n');
        out
    }

    /// Parses an artifact from JSON text.
    pub fn from_json(text: &str) -> Result<Self, String> {
        let v = Value::parse(text)?;
        let schema = v.field("schema")?.as_u64()?;
        if schema == 0 || schema > SCHEMA_VERSION {
            return Err(format!(
                "unsupported artifact schema {schema} (this build reads 1..={SCHEMA_VERSION})"
            ));
        }
        Ok(Self {
            schema,
            protocol: protocol_from_name(v.field("protocol")?.as_str()?)?,
            benchmark: benchmark_from_name(v.field("benchmark")?.as_str()?)?,
            error_kind: v.field("error")?.as_str()?.to_string(),
            failing_cycle: v.field("failing_cycle")?.as_u64()?,
            events: v.field("events")?.as_u64()?,
            config: config_from_json(v.field("config")?)?,
        })
    }
}

fn protocol_from_name(name: &str) -> Result<ProtocolKind, String> {
    ProtocolKind::all()
        .into_iter()
        .find(|k| k.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown protocol {name:?}"))
}

fn benchmark_from_name(name: &str) -> Result<Benchmark, String> {
    Benchmark::all()
        .into_iter()
        .find(|b| b.name().eq_ignore_ascii_case(name))
        .ok_or_else(|| format!("unknown benchmark {name:?}"))
}

fn geometry_to_json(g: &Geometry) -> Value {
    let mut j = Value::object();
    j.set("sets", Value::uint(g.sets as u64));
    j.set("ways", Value::uint(g.ways as u64));
    j.set("index_shift", Value::uint(g.index_shift as u64));
    j
}

fn geometry_from_json(v: &Value) -> Result<Geometry, String> {
    Ok(Geometry {
        sets: v.field("sets")?.as_u64()? as usize,
        ways: v.field("ways")?.as_u64()? as usize,
        index_shift: v.field("index_shift")?.as_u64()? as u32,
    })
}

/// Canonical JSON form of a [`SystemConfig`]: the exact field set the
/// crash-dump schema fixes and the [`crate::manifest`] content hash is
/// computed over. Observability knobs (tracing, sampling, attribution)
/// are deliberately absent — they are timing-invariant, so two runs
/// differing only in them are the *same* run.
pub(crate) fn config_to_json(c: &SystemConfig) -> Value {
    let mut areas = Value::object();
    areas.set("cols", Value::uint(c.chip.areas.cols as u64));
    areas.set("rows", Value::uint(c.chip.areas.rows as u64));
    areas.set("area_cols", Value::uint(c.chip.areas.area_cols as u64));
    areas.set("area_rows", Value::uint(c.chip.areas.area_rows as u64));

    let mut lat = Value::object();
    lat.set("l1_tag", Value::uint(c.chip.lat.l1_tag));
    lat.set("l1_data", Value::uint(c.chip.lat.l1_data));
    lat.set("l2_tag", Value::uint(c.chip.lat.l2_tag));
    lat.set("l2_data", Value::uint(c.chip.lat.l2_data));

    let mut chip = Value::object();
    chip.set("areas", areas);
    chip.set("l1", geometry_to_json(&c.chip.l1));
    chip.set("l2", geometry_to_json(&c.chip.l2));
    chip.set("aux", geometry_to_json(&c.chip.aux));
    chip.set("aux_home", geometry_to_json(&c.chip.aux_home));
    chip.set("lat", lat);
    chip.set("enable_prediction", Value::boolean(c.chip.enable_prediction));
    chip.set("enable_hints", Value::boolean(c.chip.enable_hints));

    let mut noc = Value::object();
    noc.set("cols", Value::uint(c.noc.cols as u64));
    noc.set("rows", Value::uint(c.noc.rows as u64));
    noc.set("link_cycles", Value::uint(c.noc.link_cycles));
    noc.set("switch_cycles", Value::uint(c.noc.switch_cycles));
    noc.set("router_cycles", Value::uint(c.noc.router_cycles));
    noc.set("flit_bytes", Value::uint(c.noc.flit_bytes as u64));
    noc.set("control_flits", Value::uint(c.noc.control_flits));
    noc.set("data_flits", Value::uint(c.noc.data_flits));
    noc.set("model_contention", Value::boolean(c.noc.model_contention));

    let mut j = Value::object();
    j.set("chip", chip);
    j.set("noc", noc);
    j.set("num_vms", Value::uint(c.num_vms as u64));
    j.set(
        "placement",
        Value::string(match c.placement {
            Placement::Matched => "matched",
            Placement::Alternative => "alternative",
        }),
    );
    j.set("mem_controllers", Value::uint(c.mem_controllers as u64));
    j.set("mem_latency", Value::uint(c.mem_latency));
    j.set("mem_jitter", Value::uint(c.mem_jitter));
    j.set("mem_service", Value::uint(c.mem_service));
    j.set("refs_per_core", Value::uint(c.refs_per_core));
    j.set("warmup_frac", Value::float(c.warmup_frac));
    j.set("seed", Value::uint(c.seed));
    j.set(
        "max_events",
        match c.max_events {
            Some(n) => Value::uint(n),
            None => Value::Null,
        },
    );
    j.set("stall_window", Value::uint(c.stall_window));
    j.set("check_invariants", Value::boolean(c.check_invariants));
    j.set(
        "faults",
        match &c.fault_plan {
            Some(p) => fault_plan_to_json(p),
            None => Value::Null,
        },
    );
    j
}

fn fault_plan_to_json(p: &FaultPlan) -> Value {
    let mut j = Value::object();
    j.set("seed", Value::uint(p.seed));
    j.set("chaos", Value::boolean(p.chaos));
    j.set("delay_rate", Value::float(p.delay_rate));
    j.set("delay_max", Value::uint(p.delay_max));
    j.set("duplicate_rate", Value::float(p.duplicate_rate));
    j.set("drop_rate", Value::float(p.drop_rate));
    j.set("max_drops", Value::uint(p.max_drops));
    j.set("reorder_rate", Value::float(p.reorder_rate));
    j.set("outages", Value::uint(p.outages as u64));
    j.set("outage_len", Value::uint(p.outage_len));
    j.set("outage_horizon", Value::uint(p.outage_horizon));
    j.set("timeout", Value::uint(p.timeout));
    j.set("retry_cap", Value::uint(p.retry_cap as u64));
    j
}

fn fault_plan_from_json(v: &Value) -> Result<FaultPlan, String> {
    Ok(FaultPlan {
        seed: v.field("seed")?.as_u64()?,
        chaos: v.field("chaos")?.as_bool()?,
        delay_rate: v.field("delay_rate")?.as_f64()?,
        delay_max: v.field("delay_max")?.as_u64()?,
        duplicate_rate: v.field("duplicate_rate")?.as_f64()?,
        drop_rate: v.field("drop_rate")?.as_f64()?,
        max_drops: v.field("max_drops")?.as_u64()?,
        reorder_rate: v.field("reorder_rate")?.as_f64()?,
        outages: v.field("outages")?.as_u64()? as u32,
        outage_len: v.field("outage_len")?.as_u64()?,
        outage_horizon: v.field("outage_horizon")?.as_u64()?,
        timeout: v.field("timeout")?.as_u64()?,
        retry_cap: v.field("retry_cap")?.as_u64()? as u32,
    })
}

pub(crate) fn config_from_json(v: &Value) -> Result<SystemConfig, String> {
    let chip = v.field("chip")?;
    let areas = chip.field("areas")?;
    let lat = chip.field("lat")?;
    let noc = v.field("noc")?;
    let max_events = match v.field("max_events")? {
        Value::Null => None,
        other => Some(other.as_u64()?),
    };
    // v1 artifacts predate fault injection: a missing `faults` field
    // simply means no plan.
    let fault_plan = match v.field("faults") {
        Err(_) | Ok(Value::Null) => None,
        Ok(f) => Some(fault_plan_from_json(f)?),
    };
    Ok(SystemConfig {
        chip: ChipSpec {
            areas: AreaMap {
                cols: areas.field("cols")?.as_u64()? as usize,
                rows: areas.field("rows")?.as_u64()? as usize,
                area_cols: areas.field("area_cols")?.as_u64()? as usize,
                area_rows: areas.field("area_rows")?.as_u64()? as usize,
            },
            l1: geometry_from_json(chip.field("l1")?)?,
            l2: geometry_from_json(chip.field("l2")?)?,
            aux: geometry_from_json(chip.field("aux")?)?,
            aux_home: geometry_from_json(chip.field("aux_home")?)?,
            lat: Latencies {
                l1_tag: lat.field("l1_tag")?.as_u64()?,
                l1_data: lat.field("l1_data")?.as_u64()?,
                l2_tag: lat.field("l2_tag")?.as_u64()?,
                l2_data: lat.field("l2_data")?.as_u64()?,
            },
            enable_prediction: chip.field("enable_prediction")?.as_bool()?,
            enable_hints: chip.field("enable_hints")?.as_bool()?,
        },
        noc: NocConfig {
            cols: noc.field("cols")?.as_u64()? as usize,
            rows: noc.field("rows")?.as_u64()? as usize,
            link_cycles: noc.field("link_cycles")?.as_u64()?,
            switch_cycles: noc.field("switch_cycles")?.as_u64()?,
            router_cycles: noc.field("router_cycles")?.as_u64()?,
            flit_bytes: noc.field("flit_bytes")?.as_u64()? as usize,
            control_flits: noc.field("control_flits")?.as_u64()?,
            data_flits: noc.field("data_flits")?.as_u64()?,
            model_contention: noc.field("model_contention")?.as_bool()?,
        },
        num_vms: v.field("num_vms")?.as_u64()? as usize,
        placement: match v.field("placement")?.as_str()? {
            "matched" => Placement::Matched,
            "alternative" => Placement::Alternative,
            other => return Err(format!("unknown placement {other:?}")),
        },
        mem_controllers: v.field("mem_controllers")?.as_u64()? as usize,
        mem_latency: v.field("mem_latency")?.as_u64()?,
        mem_jitter: v.field("mem_jitter")?.as_u64()?,
        mem_service: v.field("mem_service")?.as_u64()?,
        refs_per_core: v.field("refs_per_core")?.as_u64()?,
        warmup_frac: v.field("warmup_frac")?.as_f64()?,
        seed: v.field("seed")?.as_u64()?,
        max_events,
        stall_window: v.field("stall_window")?.as_u64()?,
        check_invariants: v.field("check_invariants")?.as_bool()?,
        // Observability knobs don't affect simulated timing, so they are
        // not serialized (the schema stays at v1); replays run with them
        // off and the CLI can re-enable them explicitly.
        tracing: false,
        trace_capacity: 65_536,
        sample_interval: None,
        attribution: false,
        fault_plan,
        // Host-side like the observability knobs: replays run without a
        // wall deadline (a timeout would not reproduce anyway).
        wall_deadline_ms: None,
    })
}

/// Minimal JSON value tree. Numbers keep their raw token so `u64`
/// values round-trip exactly (no intermediate `f64`).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A number, kept as its raw token.
    Num(String),
    /// A string (unescaped).
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object; insertion order is preserved.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// An empty object.
    pub fn object() -> Self {
        Value::Obj(Vec::new())
    }

    /// An unsigned integer value.
    pub fn uint(n: u64) -> Self {
        Value::Num(n.to_string())
    }

    /// A floating-point value (shortest round-trip representation).
    pub fn float(x: f64) -> Self {
        Value::Num(format!("{x:?}"))
    }

    /// A string value.
    pub fn string(s: &str) -> Self {
        Value::Str(s.to_string())
    }

    /// A boolean value.
    pub fn boolean(b: bool) -> Self {
        Value::Bool(b)
    }

    /// Sets `key` on an object (panics on non-objects — builder misuse).
    pub fn set(&mut self, key: &str, val: Value) {
        match self {
            Value::Obj(fields) => fields.push((key.to_string(), val)),
            _ => panic!("set() on a non-object JSON value"),
        }
    }

    /// Looks up `key` on an object.
    pub fn field(&self, key: &str) -> Result<&Value, String> {
        match self {
            Value::Obj(fields) => fields
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| format!("missing field {key:?}")),
            _ => Err(format!("field {key:?} requested on a non-object")),
        }
    }

    /// The value as a `u64`.
    pub fn as_u64(&self) -> Result<u64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|e| format!("bad integer {raw:?}: {e}")),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    /// The value as an `f64`.
    pub fn as_f64(&self) -> Result<f64, String> {
        match self {
            Value::Num(raw) => raw.parse().map_err(|e| format!("bad number {raw:?}: {e}")),
            other => Err(format!("expected a number, found {other:?}")),
        }
    }

    /// The value as a `bool`.
    pub fn as_bool(&self) -> Result<bool, String> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(format!("expected a boolean, found {other:?}")),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, String> {
        match self {
            Value::Str(s) => Ok(s),
            other => Err(format!("expected a string, found {other:?}")),
        }
    }

    /// Renders the value into `out` (pretty-printed, two-space
    /// indentation) — the entry point other exporters reuse.
    pub fn render_to(&self, out: &mut String) {
        self.render(out, 0);
    }

    /// Pretty-prints with two-space indentation.
    fn render(&self, out: &mut String, indent: usize) {
        let pad = "  ".repeat(indent);
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => render_string(out, s),
            Value::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push_str("[\n");
                for (i, v) in items.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 < items.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}]");
            }
            Value::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push_str("{\n");
                for (i, (k, v)) in fields.iter().enumerate() {
                    let _ = write!(out, "{pad}  ");
                    render_string(out, k);
                    out.push_str(": ");
                    v.render(out, indent + 1);
                    out.push_str(if i + 1 < fields.len() { ",\n" } else { "\n" });
                }
                let _ = write!(out, "{pad}}}");
            }
        }
    }

    /// Renders the value into `out` on a single line (no indentation)
    /// — the form NDJSON journals require, one document per line.
    pub fn render_compact_to(&self, out: &mut String) {
        match self {
            Value::Null => out.push_str("null"),
            Value::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Value::Num(raw) => out.push_str(raw),
            Value::Str(s) => render_string(out, s),
            Value::Arr(items) => {
                out.push('[');
                for (i, v) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    v.render_compact_to(out);
                }
                out.push(']');
            }
            Value::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    render_string(out, k);
                    out.push(':');
                    v.render_compact_to(out);
                }
                out.push('}');
            }
        }
    }

    /// Parses one JSON document (trailing garbage is an error).
    pub fn parse(text: &str) -> Result<Value, String> {
        let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
        let v = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(format!("trailing characters at byte {}", p.pos));
        }
        Ok(v)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Recursive-descent JSON parser over raw bytes.
struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Result<u8, String> {
        self.skip_ws();
        self.bytes
            .get(self.pos)
            .copied()
            .ok_or_else(|| "unexpected end of input".to_string())
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        let got = self.peek()?;
        if got != b {
            return Err(format!(
                "expected {:?} at byte {}, found {:?}",
                b as char, self.pos, got as char
            ));
        }
        self.pos += 1;
        Ok(())
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("invalid literal at byte {}", self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek()? {
            b'{' => self.object(),
            b'[' => self.array(),
            b'"' => Ok(Value::Str(self.string()?)),
            b't' => self.literal("true", Value::Bool(true)),
            b'f' => self.literal("false", Value::Bool(false)),
            b'n' => self.literal("null", Value::Null),
            b'-' | b'0'..=b'9' => self.number(),
            other => Err(format!("unexpected {:?} at byte {}", other as char, self.pos)),
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        if self.peek()? == b'}' {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            let key = self.string()?;
            self.expect(b':')?;
            fields.push((key, self.value()?));
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                other => {
                    return Err(format!(
                        "expected ',' or '}}' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek()? == b']' {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                other => {
                    return Err(format!(
                        "expected ',' or ']' at byte {}, found {:?}",
                        self.pos, other as char
                    ))
                }
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut s = String::new();
        loop {
            let start = self.pos;
            // Take the longest run without escapes or the closing quote.
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            s.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|e| format!("invalid UTF-8 in string: {e}"))?,
            );
            match self.bytes.get(self.pos) {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(s);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .bytes
                        .get(self.pos)
                        .copied()
                        .ok_or("unterminated escape")?;
                    self.pos += 1;
                    match esc {
                        b'"' => s.push('"'),
                        b'\\' => s.push('\\'),
                        b'/' => s.push('/'),
                        b'n' => s.push('\n'),
                        b't' => s.push('\t'),
                        b'r' => s.push('\r'),
                        b'b' => s.push('\u{8}'),
                        b'f' => s.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or("truncated \\u escape")?;
                            self.pos += 4;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex).map_err(|e| e.to_string())?,
                                16,
                            )
                            .map_err(|e| format!("bad \\u escape: {e}"))?;
                            // Surrogate pairs are not produced by our writer;
                            // map lone surrogates to the replacement char.
                            s.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        other => return Err(format!("unknown escape \\{}", other as char)),
                    }
                }
                _ => return Err("unterminated string".to_string()),
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        while let Some(&b) = self.bytes.get(self.pos) {
            if b.is_ascii_digit() || b == b'.' || b == b'e' || b == b'E' || b == b'+' || b == b'-' {
                self.pos += 1;
            } else {
                break;
            }
        }
        if self.pos == start {
            return Err(format!("empty number at byte {start}"));
        }
        let raw = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|e| e.to_string())?
            .to_string();
        // Validate the token now so as_u64/as_f64 errors can't hide a
        // malformed file.
        raw.parse::<f64>().map_err(|e| format!("bad number {raw:?}: {e}"))?;
        Ok(Value::Num(raw))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> ReplayArtifact {
        ReplayArtifact::new(
            ProtocolKind::DiCoArin,
            Benchmark::MixedCom,
            "stalled",
            123_456_789_012_345,
            987_654,
            &SystemConfig::small()
                .with_seed(0xDEAD_BEEF_CAFE_F00D)
                .with_event_budget(100)
                .with_stall_window(5_000),
        )
    }

    #[test]
    fn artifact_round_trips() {
        let a = sample();
        let b = ReplayArtifact::from_json(&a.to_json()).expect("parse back");
        assert_eq!(b.schema, SCHEMA_VERSION);
        assert_eq!(b.protocol, a.protocol);
        assert_eq!(b.benchmark, a.benchmark);
        assert_eq!(b.error_kind, a.error_kind);
        assert_eq!(b.failing_cycle, a.failing_cycle);
        assert_eq!(b.events, a.events);
        assert_eq!(b.config.seed, a.config.seed);
        assert_eq!(b.config.max_events, Some(100));
        assert_eq!(b.config.stall_window, 5_000);
        assert_eq!(b.config.chip.areas, a.config.chip.areas);
        assert_eq!(b.config.chip.l1, a.config.chip.l1);
        assert_eq!(b.config.chip.l2, a.config.chip.l2);
        assert_eq!(b.config.chip.lat, a.config.chip.lat);
        assert_eq!(b.config.noc.cols, a.config.noc.cols);
        assert_eq!(b.config.refs_per_core, a.config.refs_per_core);
        assert_eq!(b.config.warmup_frac, a.config.warmup_frac);
        assert_eq!(b.config.placement, a.config.placement);
    }

    #[test]
    fn none_event_budget_round_trips_as_null() {
        let mut a = sample();
        a.config.max_events = None;
        assert!(a.to_json().contains("\"max_events\": null"));
        let b = ReplayArtifact::from_json(&a.to_json()).expect("parse back");
        assert_eq!(b.config.max_events, None);
    }

    #[test]
    fn u64_fidelity_preserved() {
        // u64::MAX is not representable in f64; the raw-token codec must
        // keep every digit.
        let mut a = sample();
        a.config.seed = u64::MAX;
        let b = ReplayArtifact::from_json(&a.to_json()).expect("parse back");
        assert_eq!(b.config.seed, u64::MAX);
    }

    #[test]
    fn rejects_schema_mismatch() {
        let bumped = sample().to_json().replacen("\"schema\": 2", "\"schema\": 99", 1);
        let err = ReplayArtifact::from_json(&bumped).unwrap_err();
        assert!(err.contains("schema"), "unexpected error: {err}");
    }

    #[test]
    fn v1_artifacts_without_faults_still_load() {
        // A v1 file has no `faults` field at all; it must parse with no
        // fault plan.
        let v1 = sample()
            .to_json()
            .replacen("\"schema\": 2", "\"schema\": 1", 1)
            .replace("    \"faults\": null,\n", "")
            .replace(",\n    \"faults\": null", "");
        assert!(!v1.contains("faults"));
        let b = ReplayArtifact::from_json(&v1).expect("v1 artifact loads");
        assert_eq!(b.schema, 1);
        assert!(b.config.fault_plan.is_none());
    }

    #[test]
    fn fault_plan_round_trips() {
        let mut a = sample();
        let mut plan = cmpsim_engine::FaultPlan::chaos(0xFEED);
        plan.delay_rate = 0.015625; // exactly representable
        plan.retry_cap = 11;
        a.config.fault_plan = Some(plan.clone());
        let b = ReplayArtifact::from_json(&a.to_json()).expect("parse back");
        assert_eq!(b.config.fault_plan, Some(plan));
    }

    #[test]
    fn rejects_malformed_json() {
        assert!(ReplayArtifact::from_json("{\"schema\": 1").is_err());
        assert!(ReplayArtifact::from_json("not json at all").is_err());
        assert!(ReplayArtifact::from_json("{}").is_err());
    }

    #[test]
    fn parser_handles_escapes_and_arrays() {
        let v = Value::parse(r#"{"a": [1, 2.5, -3], "s": "x\"y\\z\nw", "t": true, "n": null}"#)
            .expect("parse");
        let arr = match v.field("a").unwrap() {
            Value::Arr(items) => items,
            other => panic!("expected array, got {other:?}"),
        };
        assert_eq!(arr.len(), 3);
        assert_eq!(arr[0].as_u64().unwrap(), 1);
        assert_eq!(arr[1].as_f64().unwrap(), 2.5);
        assert_eq!(v.field("s").unwrap().as_str().unwrap(), "x\"y\\z\nw");
        assert!(v.field("t").unwrap().as_bool().unwrap());
        assert_eq!(v.field("n").unwrap(), &Value::Null);
    }

    #[test]
    fn deterministic_file_name() {
        let a = sample();
        assert_eq!(
            a.file_name(),
            format!(
                "cmpsim-crash-dico-arin-mixed-com-seed{}-cycle123456789012345.json",
                0xDEAD_BEEF_CAFE_F00Du64
            )
        );
    }
}
