//! Golden full-matrix equality: the event-loop hot path (calendar-queue
//! scheduler, pooled dispatch contexts, fixed-seed hash-map protocol
//! state) must not change simulation results by a single cycle, message
//! or flit. The expected tuples were captured on the smoke
//! configuration before the hot-path overhaul; any drift here means a
//! scheduling or state-iteration order leaked into simulated behavior.

use cmpsim::{run_benchmark, Benchmark, ProtocolKind, SystemConfig};
use ProtocolKind::{DiCo, DiCoArin, DiCoProviders, Directory};

/// (protocol, benchmark, cycles, measured_refs, messages, flit_links)
const GOLDEN: &[(ProtocolKind, Benchmark, u64, u64, u64, u64)] = &[
    (Directory, Benchmark::Apache, 4854, 1536, 949, 6551),
    (DiCo, Benchmark::Apache, 5242, 1536, 1172, 7570),
    (DiCoProviders, Benchmark::Apache, 5243, 1536, 1197, 7632),
    (DiCoArin, Benchmark::Apache, 5242, 1536, 1168, 7588),
    (Directory, Benchmark::Jbb, 9275, 1536, 1985, 14247),
    (DiCo, Benchmark::Jbb, 9594, 1536, 2228, 15480),
    (DiCoProviders, Benchmark::Jbb, 9594, 1536, 2269, 15577),
    (DiCoArin, Benchmark::Jbb, 9594, 1536, 2238, 15602),
    (Directory, Benchmark::Radix, 3422, 1536, 567, 3992),
    (DiCo, Benchmark::Radix, 3426, 1536, 633, 4468),
    (DiCoProviders, Benchmark::Radix, 3426, 1536, 635, 4474),
    (DiCoArin, Benchmark::Radix, 3426, 1536, 633, 4468),
    (Directory, Benchmark::Lu, 3273, 1536, 528, 3757),
    (DiCo, Benchmark::Lu, 3288, 1536, 588, 4197),
    (DiCoProviders, Benchmark::Lu, 3288, 1536, 588, 4197),
    (DiCoArin, Benchmark::Lu, 3288, 1536, 588, 4197),
    (Directory, Benchmark::Volrend, 4590, 1536, 744, 5325),
    (DiCo, Benchmark::Volrend, 4574, 1536, 827, 5728),
    (DiCoProviders, Benchmark::Volrend, 4574, 1536, 833, 5745),
    (DiCoArin, Benchmark::Volrend, 4574, 1536, 827, 5728),
    (Directory, Benchmark::Tomcatv, 5958, 1536, 985, 6756),
    (DiCo, Benchmark::Tomcatv, 5792, 1536, 1101, 7553),
    (DiCoProviders, Benchmark::Tomcatv, 5792, 1536, 1107, 7570),
    (DiCoArin, Benchmark::Tomcatv, 5792, 1536, 1101, 7553),
    (Directory, Benchmark::MixedCom, 9401, 1536, 1497, 10425),
    (DiCo, Benchmark::MixedCom, 8883, 1536, 1704, 11440),
    (DiCoProviders, Benchmark::MixedCom, 8883, 1536, 1733, 11511),
    (DiCoArin, Benchmark::MixedCom, 8883, 1536, 1705, 11455),
    (Directory, Benchmark::MixedSci, 4133, 1536, 686, 4650),
    (DiCo, Benchmark::MixedSci, 4129, 1536, 741, 4966),
    (DiCoProviders, Benchmark::MixedSci, 4129, 1536, 744, 4972),
    (DiCoArin, Benchmark::MixedSci, 4129, 1536, 741, 4966),
];

#[test]
fn full_matrix_matches_pre_overhaul_golden_values() {
    let cfg = SystemConfig::smoke();
    for &(p, b, cycles, refs, messages, flit_links) in GOLDEN {
        let r = run_benchmark(p, b, &cfg).expect("run");
        let got = (
            r.cycles,
            r.measured_refs,
            r.noc_stats.messages.get(),
            r.noc_stats.flit_link_traversals.get(),
        );
        assert_eq!(
            got,
            (cycles, refs, messages, flit_links),
            "golden mismatch for {p:?}/{b:?}"
        );
    }
}

#[test]
fn back_to_back_runs_are_bit_identical() {
    // Same config + seed must give byte-identical results within one
    // process too (no RandomState, no allocation-order dependence).
    let cfg = SystemConfig::smoke();
    let a = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
    let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Apache, &cfg).expect("run");
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.measured_refs, b.measured_refs);
    assert_eq!(a.noc_stats.messages.get(), b.noc_stats.messages.get());
    assert_eq!(
        a.noc_stats.flit_link_traversals.get(),
        b.noc_stats.flit_link_traversals.get()
    );
}
