//! Integration tests for the resilient sweep orchestrator: blast-radius
//! containment (panic / hang / transient-fault injections), the
//! crash-resumable NDJSON journal, and quarantined-cell crash dumps
//! round-tripping through `cmpsim-cli replay`.

use cmpsim::{
    parse_journal, resume_sweep, run_sweep, Benchmark, CellState, Injection, ProtocolKind,
    SweepOptions, SweepSpec, SystemConfig,
};
use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::OnceLock;

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("cmpsim-orch-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn small_spec() -> SweepSpec {
    SweepSpec {
        protocols: vec![ProtocolKind::Directory, ProtocolKind::DiCo],
        benchmarks: vec![Benchmark::Radix, Benchmark::Lu],
        seeds: vec![],
        plans: vec![],
        base: SystemConfig::smoke(),
    }
}

fn options(dir: &Path) -> SweepOptions {
    SweepOptions {
        threads: Some(2),
        out_dir: dir.to_path_buf(),
        journal: dir.join("sweep.ndjson"),
        backoff_ms: 5,
        ..SweepOptions::default()
    }
}

/// The ISSUE acceptance scenario: a sweep with an injected panic, an
/// injected hang and a transient fault completes every other cell,
/// retries the transient one to success, and quarantines the two
/// unrecoverable ones with typed E-codes in journal and report.
#[test]
fn acceptance_panic_hang_flaky() {
    let dir = temp_dir("accept");
    let mut opts = options(&dir);
    opts.deadline_ms = Some(2_000);
    opts.retries = 1;
    opts.injections = vec![
        Injection::Panic { cell: 0 },
        Injection::Hang { cell: 1 },
        Injection::Flaky { cell: 2, failures: 1 },
    ];
    let outcome = run_sweep(&small_spec(), &opts).unwrap();
    assert!(!outcome.ok());
    assert_eq!(outcome.cells.len(), 4);

    match &outcome.states[0] {
        CellState::Quarantined { attempts, error } => {
            assert_eq!(error.code, "E-PANIC");
            assert_eq!(*attempts, 1, "panics are deterministic: no retry");
        }
        other => panic!("cell 0 should be quarantined, got {other:?}"),
    }
    match &outcome.states[1] {
        CellState::Quarantined { attempts, error } => {
            assert_eq!(error.code, "E-TIMEOUT");
            assert_eq!(*attempts, 2, "timeouts are transient: one retry");
        }
        other => panic!("cell 1 should be quarantined, got {other:?}"),
    }
    match &outcome.states[2] {
        CellState::Done { attempts, artifact, .. } => {
            assert_eq!(*attempts, 2, "flaky cell succeeds on the retry");
            assert!(artifact.is_file());
        }
        other => panic!("cell 2 should be done, got {other:?}"),
    }
    match &outcome.states[3] {
        CellState::Done { attempts, .. } => assert_eq!(*attempts, 1),
        other => panic!("cell 3 should be done, got {other:?}"),
    }

    let report = outcome.report_markdown();
    assert!(report.contains("## Failed cells"), "{report}");
    assert!(report.contains("E-PANIC"), "{report}");
    assert!(report.contains("E-TIMEOUT"), "{report}");
    assert!(report.contains("PARTIAL"), "{report}");

    let journal = std::fs::read_to_string(&opts.journal).unwrap();
    assert!(journal.contains("\"event\":\"retrying\""), "{journal}");
    assert!(journal.contains("\"code\":\"E-PANIC\""), "{journal}");
    assert!(journal.contains("\"code\":\"E-TIMEOUT\""), "{journal}");
    assert!(journal.contains("\"event\":\"finish\""), "{journal}");
}

/// Identical cells (same run_id) dispatch once and share the artifact.
#[test]
fn duplicate_seeds_dedup_through_ledger() {
    let dir = temp_dir("dedup");
    let mut spec = small_spec();
    spec.benchmarks = vec![Benchmark::Radix];
    spec.seeds = vec![7, 7];
    let outcome = run_sweep(&spec, &options(&dir)).unwrap();
    assert!(outcome.ok());
    assert_eq!(outcome.cells.len(), 4);
    let mut dispatched = 0;
    for s in &outcome.states {
        match s {
            CellState::Done { attempts: 1, dedup_of: None, .. } => dispatched += 1,
            CellState::Done { attempts: 0, dedup_of: Some(_), .. } => {}
            other => panic!("unexpected state {other:?}"),
        }
    }
    assert_eq!(dispatched, 2, "two unique run_ids, two executions");
}

/// A second sweep over the same spec and out_dir reuses every artifact
/// (content-hash ledger) without recomputing, byte-identically.
#[test]
fn rerun_is_fully_cached() {
    let dir = temp_dir("cache");
    let opts = options(&dir);
    let first = run_sweep(&small_spec(), &opts).unwrap();
    assert!(first.ok());
    let bytes: BTreeMap<PathBuf, Vec<u8>> = first
        .states
        .iter()
        .map(|s| match s {
            CellState::Done { artifact, .. } => {
                (artifact.clone(), std::fs::read(artifact).unwrap())
            }
            _ => unreachable!(),
        })
        .collect();

    let second = run_sweep(&small_spec(), &opts).unwrap();
    assert!(second.ok());
    for s in &second.states {
        match s {
            CellState::Done { attempts, cached, dedup_of: None, artifact } => {
                assert_eq!(*attempts, 0, "cached cells never execute");
                assert!(*cached);
                assert_eq!(std::fs::read(artifact).unwrap(), bytes[artifact]);
            }
            CellState::Done { dedup_of: Some(_), .. } => {}
            other => panic!("unexpected state {other:?}"),
        }
    }
}

/// The journal's start line carries the whole spec: parsing it back
/// re-expands to the same cells and run_ids.
#[test]
fn journal_round_trips_the_spec() {
    let dir = temp_dir("roundtrip");
    let opts = options(&dir);
    let outcome = run_sweep(&small_spec(), &opts).unwrap();
    let text = std::fs::read_to_string(&opts.journal).unwrap();
    let parsed = parse_journal(&text).unwrap();
    let cells = parsed.spec.expand();
    assert_eq!(cells.len(), outcome.cells.len());
    for (a, b) in cells.iter().zip(&outcome.cells) {
        assert_eq!(a.manifest.run_id, b.manifest.run_id);
        assert_eq!(a.name(), b.name());
    }
    assert_eq!(parsed.terminal.len(), 4, "all four cells journaled terminal");
}

/// A quarantined cell's crash dump round-trips through
/// `cmpsim-cli replay`: the replay reproduces the original failure
/// (same kind, same cycle) and exits zero. Fixed seed, deterministic.
#[test]
fn quarantined_crash_dump_replays() {
    let dir = temp_dir("replay");
    let mut spec = small_spec();
    spec.protocols = vec![ProtocolKind::Directory];
    spec.benchmarks = vec![Benchmark::Radix];
    // An absurdly small event budget is a deterministic failure: the
    // watchdog trips, a crash dump is written, the cell quarantines.
    spec.base = spec.base.with_event_budget(500);
    let outcome = run_sweep(&spec, &options(&dir)).unwrap();
    assert!(!outcome.ok());
    let failed = outcome.quarantined();
    assert_eq!(failed.len(), 1);
    let (_, err) = failed[0];
    assert_eq!(err.code, "E-STALL");
    assert!(!err.transient, "watchdog stalls quarantine immediately");
    let artifact = err.artifact.as_ref().expect("stalls write a replay artifact");

    let out = std::process::Command::new(env!("CARGO_BIN_EXE_cmpsim-cli"))
        .arg("replay")
        .arg(artifact)
        .output()
        .expect("replay runs");
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(out.status.success(), "replay exited {:?}: {stdout}", out.status.code());
    assert!(stdout.contains("reproduced"), "{stdout}");
}

/// Reference sweep shared by the kill-point property: journal text,
/// terminal state set, and every artifact's bytes.
struct Reference {
    dir: PathBuf,
    journal: String,
    states: Vec<(usize, String)>,
    artifacts: BTreeMap<PathBuf, Vec<u8>>,
}

fn reference() -> &'static Reference {
    static REF: OnceLock<Reference> = OnceLock::new();
    REF.get_or_init(|| {
        let dir = temp_dir("killpoint");
        let opts = options(&dir);
        let outcome = run_sweep(&small_spec(), &opts).unwrap();
        assert!(outcome.ok());
        let artifacts = outcome
            .states
            .iter()
            .map(|s| match s {
                CellState::Done { artifact, .. } => {
                    (artifact.clone(), std::fs::read(artifact).unwrap())
                }
                _ => unreachable!(),
            })
            .collect();
        Reference {
            dir: dir.clone(),
            journal: std::fs::read_to_string(&opts.journal).unwrap(),
            states: outcome.state_set(),
            artifacts,
        }
    })
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Crash-resume property: truncating the journal at ANY byte
    /// offset past the start line (simulating `kill -9` mid-write,
    /// torn trailing line included) and resuming converges to the
    /// same terminal state set with byte-identical artifacts.
    #[test]
    fn resume_from_any_kill_point(cut in 0usize..10_000) {
        let r = reference();
        let start_len = r.journal.find('\n').unwrap() + 1;
        let offset = start_len + cut % (r.journal.len() - start_len + 1);
        let truncated = r.dir.join(format!("cut-{offset}.ndjson"));
        std::fs::write(&truncated, &r.journal.as_bytes()[..offset]).unwrap();

        let outcome = resume_sweep(&truncated, Some(2)).unwrap();
        prop_assert!(outcome.ok());
        prop_assert_eq!(outcome.state_set(), r.states.clone());
        for (path, bytes) in &r.artifacts {
            prop_assert_eq!(&std::fs::read(path).unwrap(), bytes, "artifact {} diverged", path.display());
        }
        let _ = std::fs::remove_file(&truncated);
    }
}
