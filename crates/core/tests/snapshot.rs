//! Snapshot/fork engine gates.
//!
//! The hard invariant: snapshot → restore → run must be bit-for-bit
//! identical to an uninterrupted run — same cycles, same stats, same
//! metrics rendering, same architectural digest — across the full
//! 4-protocol × 8-benchmark matrix. A forked simulator must satisfy the
//! same identity. And every malformed image must surface as a typed
//! [`SimError::Snapshot`], never a panic.

use cmpsim::snapshot::snapshot_key;
use cmpsim::{
    chaos_sweep_with_options, run_benchmark, run_benchmark_with_store, run_matrix_with_options,
    Benchmark, CmpSimulator, FaultPlan, ProtocolKind, RunResult, SimError, SnapshotStore,
    SystemConfig,
};
use proptest::prelude::*;

/// Everything deterministic a run produces, rendered for comparison.
/// Host-profile timings are the one legitimately nondeterministic part
/// of a result and are excluded by construction (`metrics_json` does
/// not include them).
fn fingerprint(r: &RunResult) -> String {
    format!(
        "{}\narch={:?}\nmanifest={:?}\ncycles={} refs={} effective={:?}",
        r.metrics_json(),
        r.arch,
        r.manifest.as_ref().map(|m| (&m.run_id, &m.config_digest)),
        r.cycles,
        r.measured_refs,
        r.effective_cycles,
    )
}

#[test]
fn full_matrix_restore_is_bit_identical_to_cold_runs() {
    let cfg = SystemConfig::smoke();
    for kind in ProtocolKind::all() {
        for b in Benchmark::all() {
            let cold = run_benchmark(kind, b, &cfg).expect("cold run");

            // Manual path: warm, capture, restore, resume.
            let key = snapshot_key(kind, b, &cfg);
            let mut sim = CmpSimulator::new(kind, b, &cfg);
            assert!(sim.warm_up().expect("warm-up"), "{kind:?}/{b:?} must reach the boundary");
            let image = sim.save_snapshot(key);
            let restored =
                CmpSimulator::restore_snapshot(kind, b, &cfg, &image).expect("restore");
            let resumed = restored.resume().expect("resumed run");
            assert_eq!(
                fingerprint(&cold),
                fingerprint(&resumed),
                "{kind:?}/{b:?}: snapshot->restore->run differs from the uninterrupted run"
            );

            // The producer leg (capture, then continue in place) must
            // be identical too.
            let continued = sim.resume().expect("continued run");
            assert_eq!(fingerprint(&cold), fingerprint(&continued), "{kind:?}/{b:?} producer leg");
        }
    }
}

#[test]
fn store_driven_matrix_matches_cold_matrix() {
    let cfg = SystemConfig::smoke();
    let protocols = ProtocolKind::all();
    let benchmarks = Benchmark::all();
    let cold =
        run_matrix_with_options(&protocols, &benchmarks, &cfg, None, None, None).expect("cold");
    let store = SnapshotStore::in_memory();
    // First pass populates the store (every cell is a miss), second
    // pass restores every cell from it.
    let first = run_matrix_with_options(&protocols, &benchmarks, &cfg, None, Some(2), Some(&store))
        .expect("populating pass");
    assert_eq!(store.cached(), protocols.len() * benchmarks.len());
    let second = run_matrix_with_options(&protocols, &benchmarks, &cfg, None, Some(2), Some(&store))
        .expect("forked pass");
    for ((c, f), s) in cold.iter().zip(&first).zip(&second) {
        assert_eq!(fingerprint(c), fingerprint(f), "populating pass differs from cold");
        assert_eq!(fingerprint(c), fingerprint(s), "restored pass differs from cold");
    }
    // Forked runs report the snapshot span family in the host profile.
    assert!(
        second.iter().all(|r| r.host.spans.iter().any(|(name, _)| *name == "snapshot.restore")),
        "restored cells must carry a snapshot.restore span"
    );
    assert!(
        first.iter().all(|r| r.host.spans.iter().any(|(name, _)| *name == "snapshot.save")),
        "populating cells must carry a snapshot.save span"
    );
}

#[test]
fn forks_are_bit_identical_to_their_parent() {
    let cfg = SystemConfig::smoke();
    let cold = run_benchmark(ProtocolKind::DiCoArin, Benchmark::Jbb, &cfg).expect("cold");
    let mut sim = CmpSimulator::new(ProtocolKind::DiCoArin, Benchmark::Jbb, &cfg);
    assert!(sim.warm_up().expect("warm-up"));
    let twin_a = sim.fork();
    let twin_b = sim.fork();
    let a = twin_a.resume().expect("fork a");
    let b = twin_b.resume().expect("fork b");
    let parent = sim.resume().expect("parent");
    assert_eq!(fingerprint(&cold), fingerprint(&a));
    assert_eq!(fingerprint(&cold), fingerprint(&b));
    assert_eq!(fingerprint(&cold), fingerprint(&parent));
}

#[test]
fn sampling_runs_can_share_snapshots_with_plain_runs() {
    // The interval sampler is created at the warm boundary, so a
    // sampled run forked from a plain run's snapshot must produce the
    // identical time-series a cold sampled run does.
    let base = SystemConfig::smoke();
    let sampled = base.clone().with_interval(64);
    assert_eq!(
        snapshot_key(ProtocolKind::DiCo, Benchmark::Lu, &base),
        snapshot_key(ProtocolKind::DiCo, Benchmark::Lu, &sampled),
        "sampling is observability-only and must not split the key"
    );
    let cold = run_benchmark(ProtocolKind::DiCo, Benchmark::Lu, &sampled).expect("cold sampled");
    let store = SnapshotStore::in_memory();
    // Populate with the plain config, then run the sampled config hot.
    run_benchmark_with_store(ProtocolKind::DiCo, Benchmark::Lu, &base, Some(&store))
        .expect("plain populate");
    let hot = run_benchmark_with_store(ProtocolKind::DiCo, Benchmark::Lu, &sampled, Some(&store))
        .expect("sampled restore");
    assert_eq!(fingerprint(&cold), fingerprint(&hot));
    let (c, h) = (cold.timeseries.expect("cold series"), hot.timeseries.expect("hot series"));
    assert_eq!(c.to_csv(), h.to_csv(), "restored run's time-series must match the cold run's");
}

#[test]
fn observer_runs_stay_cold_and_identical() {
    // Tracing / checking / attribution runs are ineligible: the store
    // must be bypassed (not populated, not consulted) and results stay
    // identical to plain cold runs.
    let cfg = SystemConfig::smoke().with_attribution();
    let store = SnapshotStore::in_memory();
    let a = run_benchmark_with_store(ProtocolKind::DiCo, Benchmark::Radix, &cfg, Some(&store))
        .expect("attributed run");
    assert_eq!(store.cached(), 0, "ineligible runs must not populate the store");
    let b = run_benchmark(ProtocolKind::DiCo, Benchmark::Radix, &cfg).expect("plain attributed");
    assert_eq!(fingerprint(&a), fingerprint(&b));
}

#[test]
fn chaos_sweep_with_store_matches_plain_sweep() {
    let cfg = SystemConfig::smoke();
    let plans = vec![
        FaultPlan::parse("recoverable@7").expect("plan"),
        FaultPlan::parse("chaos@11").expect("plan"),
    ];
    let protocols = [ProtocolKind::Directory, ProtocolKind::DiCoArin];
    let benchmarks = [Benchmark::Radix, Benchmark::Apache];
    let plain =
        chaos_sweep_with_options(&protocols, &benchmarks, &plans, &cfg, None, Some(2), None);
    let store = SnapshotStore::in_memory();
    let stored = chaos_sweep_with_options(
        &protocols,
        &benchmarks,
        &plans,
        &cfg,
        None,
        Some(2),
        Some(&store),
    );
    assert!(plain.passed(), "baseline chaos sweep must pass");
    assert!(stored.passed(), "store-backed chaos sweep must pass");
    assert_eq!(plain.to_json(), stored.to_json(), "store must not change any chaos verdict");
    // Golden legs and the two per-plan legs all have distinct keys
    // (the fault plan shapes warm-up), so each populated its own image.
    assert_eq!(store.cached(), protocols.len() * benchmarks.len() * (1 + plans.len()));
}

#[test]
fn malformed_images_are_typed_errors_never_panics() {
    let cfg = SystemConfig::smoke();
    let (kind, b) = (ProtocolKind::Directory, Benchmark::Radix);
    let key = snapshot_key(kind, b, &cfg);
    let mut sim = CmpSimulator::new(kind, b, &cfg);
    assert!(sim.warm_up().expect("warm-up"));
    let image = sim.save_snapshot(key);

    let expect_snapshot_err = |bytes: &[u8], what: &str| {
        match CmpSimulator::restore_snapshot(kind, b, &cfg, bytes) {
            Err(SimError::Snapshot(e)) => {
                assert_eq!(
                    SimError::Snapshot(e.clone()).code(),
                    "E-SNAPSHOT",
                    "stable error code for {what}"
                );
            }
            Err(other) => panic!("{what}: expected SimError::Snapshot, got {other}"),
            Ok(_) => panic!("{what}: malformed image was accepted"),
        }
    };

    // Truncations at every interesting boundary.
    expect_snapshot_err(&[], "empty image");
    expect_snapshot_err(&image[..4], "truncated magic");
    expect_snapshot_err(&image[..10], "truncated version");
    expect_snapshot_err(&image[..image.len() / 2], "truncated payload");
    expect_snapshot_err(&image[..image.len() - 1], "truncated digest");

    // Bad magic.
    let mut bad = image.clone();
    bad[0] ^= 0xff;
    expect_snapshot_err(&bad, "bad magic");

    // Foreign (newer) version.
    let mut newer = image.clone();
    newer[8] = newer[8].wrapping_add(1);
    expect_snapshot_err(&newer, "version bump");

    // Key mismatch: an image captured under a different seed.
    let other_cfg = cfg.clone().with_seed(12345);
    let mut other = CmpSimulator::new(kind, b, &other_cfg);
    assert!(other.warm_up().expect("warm-up"));
    let foreign = other.save_snapshot(snapshot_key(kind, b, &other_cfg));
    expect_snapshot_err(&foreign, "key mismatch");

    // Same image decoded under the wrong protocol (different key).
    match CmpSimulator::restore_snapshot(ProtocolKind::DiCo, b, &cfg, &image) {
        Err(SimError::Snapshot(_)) => {}
        Err(other) => panic!("wrong-protocol restore must fail typed, got {other}"),
        Ok(_) => panic!("wrong-protocol restore must fail typed, got a simulator"),
    }

    // Payload corruption: flip one byte in the middle; the trailing
    // digest catches it before decoding.
    let mut corrupt = image.clone();
    let mid = corrupt.len() / 2;
    corrupt[mid] ^= 0x55;
    expect_snapshot_err(&corrupt, "payload bit-flip");

    // Trailing garbage.
    let mut padded = image.clone();
    padded.extend_from_slice(b"extra");
    expect_snapshot_err(&padded, "trailing bytes");

    // The pristine image still restores (the mutations above cloned).
    CmpSimulator::restore_snapshot(kind, b, &cfg, &image).expect("pristine image restores");
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 12, ..ProptestConfig::default() })]

    /// Serialize → restore → serialize is a fixed point: the restored
    /// simulator re-encodes to the exact bytes of the original image,
    /// for any (protocol, benchmark, seed).
    #[test]
    fn snapshot_reencode_round_trip(proto_i in 0usize..4, bench_i in 0usize..8, seed in 0u64..1000) {
        let kind = ProtocolKind::all()[proto_i];
        let b = Benchmark::all()[bench_i];
        let cfg = SystemConfig::smoke().with_seed(seed);
        let key = snapshot_key(kind, b, &cfg);
        let mut sim = CmpSimulator::new(kind, b, &cfg);
        prop_assert!(sim.warm_up().expect("warm-up"));
        let image = sim.save_snapshot(key);
        let restored = CmpSimulator::restore_snapshot(kind, b, &cfg, &image).expect("restore");
        let reencoded = restored.save_snapshot(key);
        prop_assert_eq!(image, reencoded, "restore must reproduce the exact serialized state");
    }
}
