//! Regression: proptest-minimized DiCo script (tiny chip) that produced
//! a "fill without MSHR" — a data response arriving after its request
//! was satisfied out of band.

use cmpsim_engine::SimRng;
use cmpsim_protocols::common::ChipSpec;
use cmpsim_protocols::dico::DiCo;
use cmpsim_protocols::harness::Harness;

#[test]
fn minimized_zombie_fill_script() {
    let script: &[(usize, u64, bool)] = &[
        (1,3,true),(3,38,false),(0,47,false),(2,41,false),(3,34,false),(2,39,false),(0,39,false),(0,3,false),(3,24,true),(3,6,true),(3,31,false),(1,26,false),(1,24,false),(3,35,false),(1,1,true),(3,36,true),(1,5,false),(3,4,true),(0,22,false),(2,41,false),(3,40,false),(1,21,true),(3,37,true),(3,17,false),(3,32,true),(0,24,false),(3,22,true),(2,33,false),(2,17,false),(1,11,false),(2,11,false),(0,0,false),(1,39,false),(3,31,true),(2,20,false),(1,41,false),(3,11,false),(0,3,false),(2,32,true),(1,47,true),(3,21,false),(1,11,false),(0,27,true),(2,23,true),(1,12,false),(2,45,false),(2,40,false),(2,33,false),(0,19,true),(3,22,false),(2,14,false),(3,4,false),(1,30,false),(0,47,false),(1,24,false),(2,10,false),(1,15,true),(0,8,false),(3,25,false),(2,13,false),(1,16,false),(2,40,false),(0,9,true),(1,8,true),(2,17,true),(3,37,false),(0,8,false),(3,1,true),(1,20,false),(3,7,false),(0,43,false),(3,36,false),(1,6,false),(3,7,true),(1,22,true),(1,24,false),(0,31,false),(0,5,true),(0,39,false),(3,35,true),(2,14,false),(1,43,true),(3,5,true),(0,34,false),(3,47,false),(3,21,false),(2,13,false),(1,21,false),(2,32,false),(1,28,false),(1,20,true),(2,20,false),(0,11,false),(2,29,false),(1,28,true),(2,46,false),(2,37,false),(3,41,false),(1,38,false),(2,45,false),(0,43,false),(0,40,false),(0,22,true),(1,35,true),(0,0,false),(2,7,false),(2,47,false),(2,11,false),(2,33,false),(1,7,true),(2,44,true),(0,9,false),(2,21,false),(1,47,true),(3,33,true),(2,39,false),(3,32,true),(0,31,false),(0,5,false),(2,37,false),(3,10,false),(2,34,false),(1,43,false),(0,0,false),(2,36,false),(0,27,false),(2,15,false),(1,42,false),(0,13,true),(1,33,false),
    ];
    let mut h = Harness::new(DiCo::new(ChipSpec::tiny()));
    h.jitter = Some(SimRng::new(812));
    for &(t, b, w) in script {
        h.push_access(t, b, w);
    }
    h.run_checked(200_000);
}
