//! DiCo-Providers (paper §III-A and §IV-A, Tables I and II).
//!
//! The chip is statically divided into areas. Coherence information is
//! kept **per area**:
//!
//! * the *owner* L1 keeps the sharing code of its own area (an
//!   `nta`-bit vector) plus one provider pointer (`ProPo`) per remote
//!   area;
//! * each *provider* keeps the sharing code of its own area and serves
//!   in-area reads, so misses to data shared between areas (deduplicated
//!   pages) resolve in two short hops without leaving the area;
//! * the home L2, when it holds the ownership, keeps only the ProPos —
//!   never sharers (those live at the providers).
//!
//! Request handling follows the paper's Table I verbatim; replacements
//! follow Table II (providership/ownership hand-off to a sharer of the
//! area, `Change_Provider` / `No_Provider` / `Change_Owner` registration
//! messages, ownership recall on L2C$ eviction with the former owner
//! staying on as its area's provider).
//!
//! Stale pointers are self-correcting rather than blocking: a request
//! forwarded to a cache that is no longer the supplier chases the
//! hand-off tombstone (point-to-point FIFO delivery guarantees the
//! hand-off arrives first) or returns to the node that forwarded it,
//! which recognises its own stale pointer through the `forwarder` field
//! and repairs it — the same mechanism the paper introduces for
//! DiCo-Arin's provider pointers.

use crate::checker::{ChipSnapshot, CopyState, CopyView, L2View};
use crate::common::*;
use cmpsim_cache::{Mshr, SetAssoc};
use cmpsim_engine::{Cycle, FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// L1 line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    /// Sharer with an embedded supplier hint.
    Sharer { hint: Option<Tile> },
    /// Provider: supplies in-area reads, tracks its area's sharers.
    Provider,
    /// Owner: global ordering point; tracks own-area sharers + ProPos.
    Owner { exclusive: bool, dirty: bool },
}

#[derive(Debug, Clone)]
struct L1Line {
    state: L1State,
    /// Own-area sharing code, bit per local index (Provider/Owner).
    area_sharers: u64,
    /// Provider pointer per area (Owner only; own area implicit).
    propos: Propos,
    version: u64,
}

impl L1Line {
    fn dirty(&self) -> bool {
        matches!(self.state, L1State::Owner { dirty: true, .. })
    }
}

/// Home L2 data entry: exists when the home holds the ownership. Only
/// ProPos are stored (paper §III-A).
#[derive(Debug, Clone)]
struct L2Entry {
    dirty: bool,
    version: u64,
    propos: Propos,
}

#[derive(Debug, Clone)]
struct MshrEntry {
    write: bool,
    issued_at: Cycle,
    predicted: Option<Tile>,
    upgrade: bool,
    have_data: bool,
    fill: Option<DataInfo>,
    fill_from: Option<Node>,
    /// Sharer acks still owed (incremented by provider AckCounts).
    acks_needed: i64,
    /// Provider acks still owed.
    provider_acks_needed: i64,
    pending_inv: Option<u64>,
}

#[derive(Debug, Clone)]
enum HomeTx {
    MemFetch { req: Msg },
    Recall,
    Granting { to: Tile },
    /// Eviction of a home-owned entry: invalidating through providers.
    EvictL2 { acks_left: i64, provider_acks_left: i64, dirty: bool, version: u64 },
}

/// The DiCo-Providers protocol.
#[derive(Clone)]
pub struct Providers {
    spec: ChipSpec,
    stats: ProtoStats,
    authority: VersionAuthority,
    mem: MemoryImage,
    l1: Vec<SetAssoc<L1Line>>,
    l1c: Vec<SetAssoc<Tile>>,
    mshr: Vec<Mshr<MshrEntry>>,
    l1_queues: Vec<BlockQueues>,
    co_pending: Vec<FxHashSet<Block>>,
    co_ack_early: Vec<FxHashSet<Block>>,
    /// Ownership hand-off tombstones.
    tombstones: Vec<FxHashMap<Block, Node>>,
    tombstone_fifo: Vec<VecDeque<Block>>,
    /// Providership hand-off tombstones.
    ptombstones: Vec<FxHashMap<Block, Tile>>,
    ptombstone_fifo: Vec<VecDeque<Block>>,
    l2: Vec<SetAssoc<L2Entry>>,
    l2c: Vec<SetAssoc<Tile>>,
    home_queues: Vec<BlockQueues>,
    tx: Vec<FxHashMap<Block, HomeTx>>,
    bounce_hold: Vec<FxHashMap<Block, VecDeque<Msg>>>,
    pending_mem_writes: Vec<(Tile, Block)>,
}

const TOMBSTONE_CAP: usize = 128;

cmpsim_engine::impl_snap!(L1Line { state, area_sharers, propos, version });
cmpsim_engine::impl_snap!(L2Entry { dirty, version, propos });
cmpsim_engine::impl_snap!(MshrEntry {
    write,
    issued_at,
    predicted,
    upgrade,
    have_data,
    fill,
    fill_from,
    acks_needed,
    provider_acks_needed,
    pending_inv,
});

impl cmpsim_engine::Snap for L1State {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        match self {
            L1State::Sharer { hint } => {
                w.u8(0);
                hint.save(w);
            }
            L1State::Provider => w.u8(1),
            L1State::Owner { exclusive, dirty } => {
                w.u8(2);
                exclusive.save(w);
                dirty.save(w);
            }
        }
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        Ok(match r.u8()? {
            0 => L1State::Sharer { hint: Snap::load(r)? },
            1 => L1State::Provider,
            2 => L1State::Owner { exclusive: Snap::load(r)?, dirty: Snap::load(r)? },
            tag => {
                return Err(cmpsim_engine::SnapError::BadTag { what: "providers::L1State", tag })
            }
        })
    }
}

impl cmpsim_engine::Snap for HomeTx {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        match self {
            HomeTx::MemFetch { req } => {
                w.u8(0);
                req.save(w);
            }
            HomeTx::Recall => w.u8(1),
            HomeTx::Granting { to } => {
                w.u8(2);
                to.save(w);
            }
            HomeTx::EvictL2 { acks_left, provider_acks_left, dirty, version } => {
                w.u8(3);
                acks_left.save(w);
                provider_acks_left.save(w);
                dirty.save(w);
                version.save(w);
            }
        }
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        Ok(match r.u8()? {
            0 => HomeTx::MemFetch { req: Snap::load(r)? },
            1 => HomeTx::Recall,
            2 => HomeTx::Granting { to: Snap::load(r)? },
            3 => HomeTx::EvictL2 {
                acks_left: Snap::load(r)?,
                provider_acks_left: Snap::load(r)?,
                dirty: Snap::load(r)?,
                version: Snap::load(r)?,
            },
            tag => {
                return Err(cmpsim_engine::SnapError::BadTag { what: "providers::HomeTx", tag })
            }
        })
    }
}

impl Providers {
    /// Builds the protocol for `spec`.
    pub fn new(spec: ChipSpec) -> Self {
        assert!(spec.num_areas() <= MAX_AREAS, "too many areas for the ProPo array");
        let n = spec.tiles();
        Self {
            l1: (0..n).map(|_| SetAssoc::new(spec.l1)).collect(),
            l1c: (0..n).map(|_| SetAssoc::new(spec.aux)).collect(),
            mshr: (0..n).map(|_| Mshr::new(8)).collect(),
            l1_queues: (0..n).map(|_| BlockQueues::default()).collect(),
            co_pending: vec![FxHashSet::default(); n],
            co_ack_early: vec![FxHashSet::default(); n],
            tombstones: vec![FxHashMap::default(); n],
            tombstone_fifo: vec![VecDeque::new(); n],
            ptombstones: vec![FxHashMap::default(); n],
            ptombstone_fifo: vec![VecDeque::new(); n],
            l2: (0..n).map(|_| SetAssoc::new(spec.l2)).collect(),
            l2c: (0..n).map(|_| SetAssoc::new(spec.aux_home)).collect(),
            home_queues: (0..n).map(|_| BlockQueues::default()).collect(),
            tx: (0..n).map(|_| FxHashMap::default()).collect(),
            bounce_hold: vec![FxHashMap::default(); n],
            pending_mem_writes: Vec::new(),
            spec,
            stats: ProtoStats::default(),
            authority: VersionAuthority::default(),
            mem: MemoryImage::default(),
        }
    }

    // ------------------------------------------------------ small utils

    fn home(&self, block: Block) -> Tile {
        self.spec.home_of(block)
    }

    fn area_of(&self, tile: Tile) -> usize {
        self.spec.area_of(tile)
    }

    fn local_bit(&self, tile: Tile) -> u64 {
        1u64 << self.spec.areas.local_index(tile)
    }

    /// Tiles of `area` named by a local-index bit-vector.
    fn area_tiles(&self, area: usize, bits: u64) -> Vec<Tile> {
        iter_bits(bits).map(|l| self.spec.areas.tile_in_area(area, l)).collect()
    }

    fn send_req(
        &mut self,
        ctx: &mut Ctx,
        block: Block,
        src: Node,
        dst: Node,
        req: ReqInfo,
        delay: Cycle,
    ) {
        ctx.send(Msg { kind: MsgKind::Req(req), block, src, dst }, delay);
    }

    fn tombstone_set(&mut self, tile: Tile, block: Block, to: Node) {
        if self.tombstones[tile].insert(block, to).is_none() {
            self.tombstone_fifo[tile].push_back(block);
            if self.tombstone_fifo[tile].len() > TOMBSTONE_CAP {
                if let Some(old) = self.tombstone_fifo[tile].pop_front() {
                    self.tombstones[tile].remove(&old);
                }
            }
        }
    }

    fn ptombstone_set(&mut self, tile: Tile, block: Block, to: Tile) {
        if self.ptombstones[tile].insert(block, to).is_none() {
            self.ptombstone_fifo[tile].push_back(block);
            if self.ptombstone_fifo[tile].len() > TOMBSTONE_CAP {
                if let Some(old) = self.ptombstone_fifo[tile].pop_front() {
                    self.ptombstones[tile].remove(&old);
                }
            }
        }
    }

    fn propo_count(p: &Propos) -> u32 {
        p.iter().filter(|x| x.is_some()).count() as u32
    }

    // --------------------------------------------------------- L1 side

    fn predict(&mut self, tile: Tile, block: Block) -> Option<Tile> {
        if !self.spec.enable_prediction {
            return None;
        }
        self.stats.l1c_access.inc();
        match self.l1c[tile].get_mut(block) {
            Some(&mut t) if t != tile => Some(t),
            _ => None,
        }
    }

    fn learn(&mut self, tile: Tile, block: Block, supplier: Tile) {
        if supplier == tile {
            return;
        }
        if let Some(line) = self.l1[tile].peek_mut(block) {
            if let L1State::Sharer { hint } = &mut line.state {
                *hint = Some(supplier);
                return;
            }
        }
        self.stats.l1c_access.inc();
        if let Some(p) = self.l1c[tile].get_mut(block) {
            *p = supplier;
        } else {
            self.l1c[tile].insert(block, supplier);
        }
    }

    fn start_miss(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, write: bool, upgrade: bool) {
        self.stats.l1_misses.inc();
        if write {
            self.stats.write_misses.inc();
        }
        let line_hint = match self.l1[tile].peek(block).map(|l| &l.state) {
            Some(L1State::Sharer { hint }) => hint.filter(|&t| t != tile),
            _ => None,
        };
        let predicted = if upgrade || !self.spec.enable_prediction {
            None
        } else if line_hint.is_some() {
            self.stats.l1c_access.inc();
            line_hint
        } else {
            self.predict(tile, block)
        };
        self.mshr[tile].alloc(
            block,
            MshrEntry {
                write,
                issued_at: ctx.now,
                predicted,
                upgrade,
                have_data: upgrade,
                fill: None,
                fill_from: None,
                acks_needed: 0,
                provider_acks_needed: 0,
                pending_inv: None,
            },
        );
        if upgrade {
            // Owner writes with copies outstanding: invalidate in place.
            let line = self.l1[tile].peek(block).expect("upgrade at owner");
            let (sharers, propos, version) = (line.area_sharers, line.propos, line.version);
            let my_area = self.area_of(tile);
            let e = self.mshr[tile].get_mut(block).expect("just allocated");
            e.acks_needed = sharers.count_ones() as i64;
            e.provider_acks_needed = Self::propo_count(&propos) as i64;
            self.l1_queues[tile].set_busy(block);
            self.send_area_invs(ctx, Node::L1(tile), block, my_area, sharers, Node::L1(tile), version);
            self.send_provider_invs(ctx, Node::L1(tile), block, &propos, Node::L1(tile));
            // Clear the pointers now; completion makes us exclusive.
            let line = self.l1[tile].peek_mut(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));
            line.area_sharers = 0;
            line.propos = [None; MAX_AREAS];
            return;
        }
        let dst = match predicted {
            Some(t) => Node::L1(t),
            None => Node::L2(self.home(block)),
        };
        self.send_req(
            ctx,
            block,
            Node::L1(tile),
            dst,
            ReqInfo {
                requestor: tile,
                write,
                forwarder: None,
                via_home: false,
                predicted: predicted.is_some(),
                vouched: false,
                hops: 0,
            },
            self.spec.lat.l1_tag,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn send_area_invs(
        &mut self,
        ctx: &mut Ctx,
        src: Node,
        block: Block,
        area: usize,
        sharers: u64,
        reply_to: Node,
        version: u64,
    ) {
        for t in self.area_tiles(area, sharers) {
            self.stats.invalidations.inc();
            ctx.send(
                Msg { kind: MsgKind::Inv { reply_to, version }, block, src, dst: Node::L1(t) },
                self.spec.lat.l1_tag,
            );
        }
    }

    fn send_provider_invs(
        &mut self,
        ctx: &mut Ctx,
        src: Node,
        block: Block,
        propos: &Propos,
        reply_to: Node,
    ) {
        for p in propos.iter().flatten() {
            self.stats.invalidations.inc();
            ctx.send(
                Msg {
                    kind: MsgKind::InvProvider { reply_to },
                    block,
                    src,
                    dst: Node::L1(*p as Tile),
                },
                self.spec.lat.l1_tag,
            );
        }
    }

    /// Our own roaming request reached us after an ownership transfer
    /// made us the owner: complete the miss in place (reads finish
    /// immediately; writes convert to an in-place upgrade invalidating
    /// the inherited sharers and providers).
    fn self_serve(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        let write = self.mshr[tile].get(block).map(|e| e.write).unwrap_or(false);
        if !write {
            let e = self.mshr[tile].release(block).expect("self-serve without MSHR");
            self.l1[tile].touch(block);
            self.stats.l1_data_read.inc();
            self.stats.record_miss(MissClass::UnpredictedForwarded, ctx.now - e.issued_at);
            ctx.complete(tile, block, self.spec.lat.l1_data);
            if !self.co_pending[tile].contains(&block) {
                for m in self.l1_queues[tile].release(block) {
                    ctx.replay(m);
                }
            }
            return;
        }
        let my_area = self.area_of(tile);
        let line = self.l1[tile].peek(block).expect("owner line");
        let (sharers, propos, version) = (line.area_sharers, line.propos, line.version);
        {
            let e = self.mshr[tile].get_mut(block).expect("self-serve without MSHR");
            e.upgrade = true;
            e.have_data = true;
            e.acks_needed += sharers.count_ones() as i64;
            e.provider_acks_needed += Self::propo_count(&propos) as i64;
        }
        self.l1_queues[tile].set_busy(block);
        self.send_area_invs(ctx, Node::L1(tile), block, my_area, sharers, Node::L1(tile), version);
        self.send_provider_invs(ctx, Node::L1(tile), block, &propos, Node::L1(tile));
        let line = self.l1[tile].peek_mut(block).expect("owner line");
        line.area_sharers = 0;
        line.propos = [None; MAX_AREAS];
        self.try_complete(ctx, tile, block);
    }

    fn try_complete(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        let Some(e) = self.mshr[tile].get(block) else { return };
        if !e.have_data || e.acks_needed != 0 || e.provider_acks_needed != 0 {
            return;
        }
        let e = self.mshr[tile].release(block).expect("checked");
        let lat = self.spec.lat;

        if e.upgrade {
            let v = self.authority.commit(block);
            let line = self.l1[tile].peek_mut(block).expect("upgrade owner line");
            line.state = L1State::Owner { exclusive: true, dirty: true };
            line.area_sharers = 0;
            line.propos = [None; MAX_AREAS];
            line.version = v;
            self.stats.l1_data_write.inc();
            self.stats.record_miss(MissClass::PredictedOwnerHit, ctx.now - e.issued_at);
            ctx.complete(tile, block, lat.l1_data);
            for m in self.l1_queues[tile].release(block) {
                ctx.replay(m);
            }
            return;
        }

        let fill = e.fill.expect("have_data");
        let stale = e.pending_inv.map(|v| fill.version <= v).unwrap_or(false);
        let class = self.classify(&e, &fill);
        self.stats.record_miss(class, ctx.now - e.issued_at);

        if e.write {
            let v = self.authority.commit(block);
            let line = L1Line {
                state: L1State::Owner { exclusive: true, dirty: true },
                area_sharers: 0,
                propos: [None; MAX_AREAS],
                version: v,
            };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
            if fill.ownership
                && fill.supplier == Supplier::OwnerL1
                && !self.co_ack_early[tile].remove(&block)
            {
                self.co_pending[tile].insert(block);
                self.l1_queues[tile].set_busy(block);
            }
        } else if fill.ownership {
            let line = L1Line {
                state: L1State::Owner { exclusive: fill.exclusive, dirty: fill.dirty },
                area_sharers: fill.sharers & !self.local_bit(tile),
                propos: fill.propos,
                version: fill.version,
            };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
        } else if !stale {
            let state = if fill.make_provider {
                L1State::Provider
            } else {
                let hint = e.fill_from.map(|n| n.tile()).filter(|&t| t != tile);
                L1State::Sharer { hint }
            };
            let line = L1Line { state, area_sharers: 0, propos: [None; MAX_AREAS], version: fill.version };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
        }
        if matches!(fill.supplier, Supplier::HomeL2 | Supplier::Memory) {
            ctx.send(
                Msg {
                    kind: MsgKind::Unblock { became_owner: fill.ownership },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                0,
            );
        }
        ctx.complete(tile, block, lat.l1_data);
        if !self.co_pending[tile].contains(&block) {
            for m in self.l1_queues[tile].release(block) {
                ctx.replay(m);
            }
        }
    }

    /// Sends supplier-identity hints to the tiles of `area` named in
    /// `sharers` (paper Figure 5: predictions are refreshed when the
    /// ownership or providership moves).
    fn send_hints(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, area: usize, sharers: u64) {
        if !self.spec.enable_hints {
            return;
        }
        for t in self.area_tiles(area, sharers) {
            ctx.send(
                Msg {
                    kind: MsgKind::Hint { supplier: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(t),
                },
                self.spec.lat.l1_tag,
            );
        }
    }

    fn classify(&self, e: &MshrEntry, fill: &DataInfo) -> MissClass {
        match (e.predicted, fill.supplier) {
            (_, Supplier::Memory) => MissClass::Memory,
            (Some(p), Supplier::OwnerL1) if e.fill_from == Some(Node::L1(p)) => {
                MissClass::PredictedOwnerHit
            }
            (Some(p), Supplier::ProviderL1) if e.fill_from == Some(Node::L1(p)) => {
                MissClass::PredictedProviderHit
            }
            (Some(_), _) => MissClass::PredictionFailed,
            (None, Supplier::HomeL2) => MissClass::UnpredictedHome,
            (None, _) => MissClass::UnpredictedForwarded,
        }
    }

    fn install_l1(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        // A fresh copy supersedes any stale hand-off note for the block.
        self.tombstones[tile].remove(&block);
        if let Some(existing) = self.l1[tile].get_mut(block) {
            *existing = line;
            return;
        }
        let co = &self.co_pending[tile];
        let lq = &self.l1_queues[tile];
        let (victims, _overflow) =
            self.l1[tile].insert_filtered(block, line, |b| !co.contains(&b) && !lq.is_busy(b));
        for (vb, vline) in victims {
            self.evict_l1_line(ctx, tile, vb, vline);
        }
    }

    /// Replacements per paper Table II.
    fn evict_l1_line(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        let lat = self.spec.lat;
        let my_area = self.area_of(tile);
        match line.state {
            L1State::Sharer { hint } => {
                if let Some(h) = hint {
                    self.stats.l1c_access.inc();
                    if let Some(p) = self.l1c[tile].get_mut(block) {
                        *p = h;
                    } else {
                        self.l1c[tile].insert(block, h);
                    }
                }
            }
            L1State::Provider => {
                self.stats.l1_repl_transactions.inc();
                if line.area_sharers != 0 {
                    // Providership + sharing code to a sharer of the area.
                    let local = line.area_sharers.trailing_zeros() as usize;
                    let target = self.spec.areas.tile_in_area(my_area, local);
                    let rest = line.area_sharers & !(1 << local);
                    self.ptombstone_set(tile, block, target);
                    ctx.send(
                        Msg {
                            kind: MsgKind::ProvidershipTransfer {
                                sharers: rest,
                                remaining: rest,
                                former: tile,
                            },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L1(target),
                        },
                        lat.l1_tag,
                    );
                } else {
                    // No sharers left: tell the owner (via the home).
                    ctx.send(
                        Msg {
                            kind: MsgKind::NoProvider { area: my_area as u16, former: tile },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L2(self.home(block)),
                        },
                        lat.l1_tag,
                    );
                }
            }
            L1State::Owner { dirty, .. } => {
                self.stats.l1_repl_transactions.inc();
                if line.area_sharers != 0 {
                    // Ownership + sharing code + ProPos to an area sharer.
                    let local = line.area_sharers.trailing_zeros() as usize;
                    let target = self.spec.areas.tile_in_area(my_area, local);
                    let rest = line.area_sharers & !(1 << local);
                    self.tombstone_set(tile, block, Node::L1(target));
                    ctx.send(
                        Msg {
                            kind: MsgKind::OwnershipTransfer {
                                sharers: rest,
                                propos: line.propos,
                                dirty,
                                version: line.version,
                                remaining: rest,
                            },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L1(target),
                        },
                        lat.l1_hit(),
                    );
                } else {
                    // No sharers in the area: ownership goes home; the
                    // other areas' providers stay valid.
                    self.tombstone_set(tile, block, Node::L2(self.home(block)));
                    ctx.send(
                        Msg {
                            kind: MsgKind::OwnershipToHome {
                                dirty,
                                version: line.version,
                                propos: line.propos,
                                sharers: 0,
                                former_stays_provider: false,
                            },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L2(self.home(block)),
                        },
                        lat.l1_hit(),
                    );
                }
            }
        }
    }

    /// Request arrival at an L1 — paper Table I, L1 rows.
    fn l1_handle_req(&mut self, ctx: &mut Ctx, tile: Tile, msg: Msg, req: ReqInfo) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        let lat = self.spec.lat;

        if req.requestor == tile {
            // Self-serve: an ownership transfer made us the owner while
            // our request was roaming (see DiCo's l1_handle_req).
            let is_owner = matches!(
                self.l1[tile].peek(block).map(|l| &l.state),
                Some(L1State::Owner { .. })
            );
            if self.mshr[tile].contains(block) {
                if is_owner {
                    self.self_serve(ctx, tile, block);
                    return;
                }
            } else if is_owner {
                return;
            }
            self.send_req(
                ctx,
                block,
                Node::L1(tile),
                Node::L2(self.home(block)),
                ReqInfo { forwarder: Some(tile), via_home: true, ..req },
                lat.l1_tag,
            );
            return;
        }

        let state = self.l1[tile].peek(block).map(|l| l.state);
        let same_area = self.area_of(req.requestor) == self.area_of(tile);

        match state {
            Some(L1State::Owner { .. }) => {
                if self.l1_queues[tile].is_busy(block)
                    || (req.write && self.co_pending[tile].contains(&block))
                {
                    self.l1_queues[tile].enqueue(msg);
                    return;
                }
                if req.write {
                    self.serve_write_as_owner(ctx, tile, block, req);
                    return;
                }
                // Table I: read at the owner.
                let my_area = self.area_of(tile);
                let req_area = self.area_of(req.requestor);
                if same_area {
                    let lb = self.local_bit(req.requestor);
                    let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));
                    line.area_sharers |= lb;
                    if let L1State::Owner { exclusive, .. } = &mut line.state {
                        *exclusive = false;
                    }
                    let version = line.version;
                    self.stats.l1_data_read.inc();
                    ctx.send(
                        Msg {
                            kind: MsgKind::Data(DataInfo::shared(version, Supplier::OwnerL1)),
                            block,
                            src: Node::L1(tile),
                            dst: Node::L1(req.requestor),
                        },
                        lat.l1_hit(),
                    );
                    return;
                }
                // Remote-area read.
                let provider = self.l1[tile].peek(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}")).propos[req_area];
                match provider {
                    Some(p) if req.forwarder != Some(p as Tile) => {
                        // Forward to the provider of the requestor's area.
                        self.send_req(
                            ctx,
                            block,
                            Node::L1(tile),
                            Node::L1(p as Tile),
                            ReqInfo { forwarder: Some(tile), hops: req.hops.saturating_add(1), ..req },
                            lat.l1_tag,
                        );
                    }
                    _ => {
                        // No provider (or our pointer just bounced):
                        // serve and make the requestor the provider. A
                        // displaced pointer's copy may still be live
                        // (message crossing): destroy it silently so no
                        // untracked copy survives.
                        let stale = self.l1[tile].peek(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}")).propos[req_area];
                        if let Some(p) = stale {
                            ctx.send(
                                Msg {
                                    kind: MsgKind::InvSilent,
                                    block,
                                    src: Node::L1(tile),
                                    dst: Node::L1(p as Tile),
                                },
                                lat.l1_tag,
                            );
                        }
                        let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));
                        line.propos[req_area] = Some(req.requestor as u16);
                        if let L1State::Owner { exclusive, .. } = &mut line.state {
                            *exclusive = false;
                        }
                        let version = line.version;
                        self.stats.l1_data_read.inc();
                        ctx.send(
                            Msg {
                                kind: MsgKind::Data(DataInfo {
                                    make_provider: true,
                                    ..DataInfo::shared(version, Supplier::OwnerL1)
                                }),
                                block,
                                src: Node::L1(tile),
                                dst: Node::L1(req.requestor),
                            },
                            lat.l1_hit(),
                        );
                        let _ = my_area;
                    }
                }
                return;
            }
            // A provider with its own write in flight is about to
            // invalidate its area: it must not hand out copies that the
            // imminent install would forget.
            Some(L1State::Provider) if !req.write && same_area && !self.mshr[tile].contains(block) => {
                // Table I: provider serves an in-area read.
                let lb = self.local_bit(req.requestor);
                let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: provider line missing at L1 tile {tile}, block {block:#x}"));
                line.area_sharers |= lb;
                let version = line.version;
                self.stats.l1_data_read.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::Data(DataInfo::shared(version, Supplier::ProviderL1)),
                        block,
                        src: Node::L1(tile),
                        dst: Node::L1(req.requestor),
                    },
                    lat.l1_hit(),
                );
                return;
            }
            _ => {}
        }

        // Cannot serve: chase a hand-off, park on incoming ownership, or
        // fall back to the home.
        // Park first: an in-flight transaction that will make us the
        // owner outranks any (possibly stale) hand-off note.
        if let Some(e) = self.mshr[tile].get(block) {
            let ownership_incoming =
                (req.vouched && e.write) || e.fill.map(|f| f.ownership).unwrap_or(false);
            if ownership_incoming {
                self.l1_queues[tile].enqueue(msg);
                return;
            }
        }
        // Chase the hand-off note, bounded (DiCo's deadlock avoidance).
        if req.hops < MAX_CHASE_HOPS {
            if let Some(&next) = self.tombstones[tile].get(&block) {
                self.send_req(
                    ctx,
                    block,
                    Node::L1(tile),
                    next,
                    ReqInfo { forwarder: Some(tile), hops: req.hops + 1, ..req },
                    lat.l1_tag,
                );
                return;
            }
        }
        self.send_req(
            ctx,
            block,
            Node::L1(tile),
            Node::L2(self.home(block)),
            ReqInfo { forwarder: Some(tile), via_home: true, ..req },
            lat.l1_tag,
        );
    }

    /// Owner serves a write: invalidate through the providers and hand
    /// the ownership over (paper Figure 4).
    fn serve_write_as_owner(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, req: ReqInfo) {
        let lat = self.spec.lat;
        let my_area = self.area_of(tile);
        let req_area = self.area_of(req.requestor);
        let line = self.l1[tile].remove(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));

        // Sharers of the owner's area (minus the requestor if local).
        let mut area_invs = line.area_sharers;
        if req_area == my_area {
            area_invs &= !self.local_bit(req.requestor);
        }
        // Every provider is invalidated through InvProvider — including
        // the requestor itself when it is one: the paper's §IV-A special
        // case says the requestor-provider invalidates its area when it
        // receives "the ownership or an invalidation message"; the
        // explicit InvProvider also chases a providership hand-off that
        // may have left the requestor in the meantime.
        let propos = line.propos;
        let acks_sharers = area_invs.count_ones();
        let acks_providers = Self::propo_count(&propos);
        self.stats.l1_data_read.inc();
        ctx.send(
            Msg {
                kind: MsgKind::Data(DataInfo {
                    exclusive: true,
                    ownership: true,
                    acks_sharers,
                    acks_providers,
                    dirty: line.dirty(),
                    version: line.version,
                    supplier: Supplier::OwnerL1,
                    ..DataInfo::shared(line.version, Supplier::OwnerL1)
                }),
                block,
                src: Node::L1(tile),
                dst: Node::L1(req.requestor),
            },
            lat.l1_hit(),
        );
        self.send_area_invs(
            ctx,
            Node::L1(tile),
            block,
            my_area,
            area_invs,
            Node::L1(req.requestor),
            line.version,
        );
        self.send_provider_invs(ctx, Node::L1(tile), block, &propos, Node::L1(req.requestor));
        ctx.send(
            Msg {
                kind: MsgKind::ChangeOwner { new_owner: req.requestor },
                block,
                src: Node::L1(tile),
                dst: Node::L2(self.home(block)),
            },
            lat.l1_tag,
        );
        self.tombstone_set(tile, block, Node::L1(req.requestor));
    }

    fn l1_handle_inv(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        reply_to: Node,
        version: u64,
    ) {
        self.stats.l1_tag.inc();
        if self.l1[tile].contains(block) {
            self.l1[tile].remove(block);
        } else if let Some(e) = self.mshr[tile].get_mut(block) {
            if !e.write && !e.have_data {
                e.pending_inv = Some(e.pending_inv.map_or(version, |v| v.max(version)));
            }
        }
        if let Node::L1(new_owner) = reply_to {
            self.learn(tile, block, new_owner);
        }
        ctx.send(
            Msg { kind: MsgKind::Ack, block, src: Node::L1(tile), dst: reply_to },
            self.spec.lat.l1_tag,
        );
    }

    /// Invalidate a provider: it cascades to its area sharers and
    /// acknowledges with the cascaded count.
    fn l1_handle_inv_provider(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, reply_to: Node) {
        self.stats.l1_tag.inc();
        let lat = self.spec.lat;
        let my_area = self.area_of(tile);
        let is_provider =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Provider));
        if is_provider {
            let line = self.l1[tile].remove(block).unwrap_or_else(|| panic!("providers: provider line missing at L1 tile {tile}, block {block:#x}"));
            let n = line.area_sharers.count_ones();
            self.send_area_invs(ctx, Node::L1(tile), block, my_area, line.area_sharers, reply_to, line.version);
            ctx.send(
                Msg { kind: MsgKind::AckCount { sharers: n }, block, src: Node::L1(tile), dst: reply_to },
                lat.l1_tag,
            );
            if let Node::L1(new_owner) = reply_to {
                self.learn(tile, block, new_owner);
            }
            return;
        }
        // Not (or no longer) the provider: chase the providership
        // hand-off (FIFO delivery guarantees it arrived first), else the
        // area genuinely has no tracked sharers.
        if let Some(&next) = self.ptombstones[tile].get(&block) {
            ctx.send(
                Msg {
                    kind: MsgKind::InvProvider { reply_to },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(next),
                },
                lat.l1_tag,
            );
            return;
        }
        // Drop any plain copy we still hold and report zero cascades.
        self.l1[tile].remove(block);
        if let Some(e) = self.mshr[tile].get_mut(block) {
            if !e.write && !e.have_data {
                e.pending_inv = Some(u64::MAX);
            }
        }
        ctx.send(
            Msg { kind: MsgKind::AckCount { sharers: 0 }, block, src: Node::L1(tile), dst: reply_to },
            lat.l1_tag,
        );
    }

    #[allow(clippy::too_many_arguments)]
    fn l1_handle_transfer(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        msg: Msg,
        sharers: u64,
        propos: Propos,
        dirty: bool,
        version: u64,
    ) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        // Receiving a transfer supersedes any stale hand-off note.
        self.tombstones[tile].remove(&block);
        let lat = self.spec.lat;
        let mine = sharers & !self.local_bit(tile);
        let my_area = self.area_of(tile);
        // A tile with a miss outstanding and no line accepts the
        // ownership as a fresh line; its roaming request completes the
        // MSHR when it returns (self-serve).
        if !self.l1[tile].contains(block) && self.mshr[tile].contains(block) {
            let line = L1Line {
                state: L1State::Owner {
                    exclusive: mine == 0 && Self::propo_count(&propos) == 0,
                    dirty,
                },
                area_sharers: mine,
                propos,
                version,
            };
            self.install_l1(ctx, tile, block, line);
            self.send_hints(ctx, tile, block, my_area, mine);
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeOwner { new_owner: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            if !self.co_ack_early[tile].remove(&block) {
                self.co_pending[tile].insert(block);
            }
            return;
        }
        if self.l1[tile].contains(block) {
            let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: inherited line missing at L1 tile {tile}, block {block:#x}"));
            line.state = L1State::Owner {
                exclusive: mine == 0 && Self::propo_count(&propos) == 0,
                dirty,
            };
            // Merge: we may have been the area's provider with sharers.
            line.area_sharers |= mine;
            line.propos = propos;
            self.send_hints(ctx, tile, block, my_area, mine);
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeOwner { new_owner: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            if !self.co_ack_early[tile].remove(&block) {
                self.co_pending[tile].insert(block);
                self.l1_queues[tile].set_busy(block);
            }
            return;
        }
        // Silently dropped: forward along the area sharers or go home.
        if mine != 0 {
            let local = mine.trailing_zeros() as usize;
            let target = self.spec.areas.tile_in_area(my_area, local);
            self.tombstone_set(tile, block, Node::L1(target));
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipTransfer {
                        sharers: mine,
                        propos,
                        dirty,
                        version,
                        remaining: mine & !(1 << local),
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(target),
                },
                lat.l1_tag,
            );
        } else {
            self.tombstone_set(tile, block, Node::L2(self.home(block)));
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipToHome {
                        dirty,
                        version,
                        propos,
                        sharers: 0,
                        former_stays_provider: false,
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
        }
    }

    fn l1_handle_ptransfer(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        msg: Msg,
        sharers: u64,
        former: Tile,
    ) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        let lat = self.spec.lat;
        let mine = sharers & !self.local_bit(tile);
        let my_area = self.area_of(tile);
        let is_plain_sharer =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Sharer { .. }));
        if is_plain_sharer {
            let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: sharer line missing at L1 tile {tile}, block {block:#x}"));
            line.state = L1State::Provider;
            line.area_sharers = mine;
            // Register with the owner (routed via the home; best-effort —
            // a stale ProPo self-corrects through the forwarder check).
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeProvider { area: my_area as u16, new_provider: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            // Hint the inherited sharers about their new supplier
            // (paper Figure 5), keeping their predictions warm.
            self.send_hints(ctx, tile, block, my_area, mine);
            return;
        }
        // Pass it along, or tell the owner there is no provider left.
        if mine != 0 {
            let local = mine.trailing_zeros() as usize;
            let target = self.spec.areas.tile_in_area(my_area, local);
            self.ptombstone_set(tile, block, target);
            ctx.send(
                Msg {
                    kind: MsgKind::ProvidershipTransfer {
                        sharers: mine,
                        remaining: mine & !(1 << local),
                        former,
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(target),
                },
                lat.l1_tag,
            );
        } else {
            ctx.send(
                Msg {
                    kind: MsgKind::NoProvider { area: my_area as u16, former },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
        }
    }

    fn l1_handle_recall(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        self.stats.l1_tag.inc();
        let lat = self.spec.lat;
        let is_owner =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Owner { .. }));
        if !is_owner {
            // Ownership may be on its way to us (the home learned about
            // it through our Change_Owner before our data arrived): park
            // the recall; the completion replay honors it.
            if let Some(e) = self.mshr[tile].get(block) {
                if e.write || e.fill.map(|f| f.ownership).unwrap_or(false) {
                    let home = self.home(block);
                    self.l1_queues[tile].enqueue(Msg {
                        kind: MsgKind::OwnershipRecall,
                        block,
                        src: Node::L2(home),
                        dst: Node::L1(tile),
                    });
                    return;
                }
            }
            ctx.send(
                Msg {
                    kind: MsgKind::RecallFailed,
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            return;
        }
        if self.l1_queues[tile].is_busy(block) || self.co_pending[tile].contains(&block) {
            let home = self.home(block);
            self.l1_queues[tile].enqueue(Msg {
                kind: MsgKind::OwnershipRecall,
                block,
                src: Node::L2(home),
                dst: Node::L1(tile),
            });
            return;
        }
        let my_area = self.area_of(tile);
        let line = self.l1[tile].get_mut(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));
        let (dirty, version) = (line.dirty(), line.version);
        let mut propos = line.propos;
        // The former owner stays on as the provider of its area
        // (paper §IV-A1, L2C$ replacement).
        propos[my_area] = Some(tile as u16);
        line.state = L1State::Provider;
        line.propos = [None; MAX_AREAS];
        self.stats.l1_data_read.inc();
        ctx.send(
            Msg {
                kind: MsgKind::OwnershipToHome {
                    dirty,
                    version,
                    propos,
                    sharers: 0,
                    former_stays_provider: true,
                },
                block,
                src: Node::L1(tile),
                dst: Node::L2(self.home(block)),
            },
            lat.l1_hit(),
        );
    }

    // -------------------------------------------------------- home side

    fn l2c_insert(&mut self, ctx: &mut Ctx, home: Tile, block: Block, owner: Tile) {
        self.stats.l2c_access.inc();
        if let Some(o) = self.l2c[home].get_mut(block) {
            *o = owner;
            return;
        }
        let hq = &self.home_queues[home];
        let (victims, _overflow) = self.l2c[home].insert_filtered(block, owner, |b| !hq.is_busy(b));
        for (vb, vo) in victims {
            self.home_queues[home].set_busy(vb);
            self.tx[home].insert(vb, HomeTx::Recall);
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipRecall,
                    block: vb,
                    src: Node::L2(home),
                    dst: Node::L1(vo),
                },
                self.spec.lat.l2_tag,
            );
        }
    }

    fn l2_insert(&mut self, ctx: &mut Ctx, home: Tile, block: Block, entry: L2Entry) {
        self.stats.l2_data_write.inc();
        let hq = &self.home_queues[home];
        let (victims, _overflow) = self.l2[home].insert_filtered(block, entry, |b| !hq.is_busy(b));
        for (vb, ve) in victims {
            self.evict_l2_owner_entry(ctx, home, vb, ve);
        }
    }

    /// Evicting a home-owned entry invalidates through the providers
    /// (the home acts as owner and requestor at once, paper §IV-A).
    fn evict_l2_owner_entry(&mut self, ctx: &mut Ctx, home: Tile, block: Block, e: L2Entry) {
        self.stats.l2_evictions.inc();
        let n = Self::propo_count(&e.propos);
        if n == 0 {
            if e.dirty {
                self.stats.mem_writes.inc();
                self.mem.write_back(block, e.version);
                self.pending_mem_writes.push((home, block));
            }
            return;
        }
        self.home_queues[home].set_busy(block);
        self.tx[home].insert(
            block,
            HomeTx::EvictL2 {
                acks_left: 0,
                provider_acks_left: n as i64,
                dirty: e.dirty,
                version: e.version,
            },
        );
        self.send_provider_invs(ctx, Node::L2(home), block, &e.propos, Node::L2(home));
    }

    /// Table I, L2 rows.
    fn home_dispatch(&mut self, ctx: &mut Ctx, home: Tile, msg: Msg, req: ReqInfo) {
        let block = msg.block;
        let lat = self.spec.lat;
        self.stats.l2_tag.inc();
        self.stats.l2c_access.inc();
        self.stats.home_lookups.inc();
        if self.l2c[home].contains(block) {
            self.stats.home_hits.inc();
        }
        if let Some(&owner) = self.l2c[home].peek(block) {
            // A *vouched* request bouncing off the very cache the owner
            // pointer names proves an ownership-loss notification is in
            // flight: hold until it lands. Anything else is forwarded
            // with our vouch (the destination parks it if its ownership
            // is still en route).
            if req.vouched && req.forwarder == Some(owner) {
                self.bounce_hold[home]
                    .entry(block)
                    .or_default()
                    .push_back(Msg { kind: MsgKind::Req(req), ..msg });
                return;
            }
            self.send_req(
                ctx,
                block,
                Node::L2(home),
                Node::L1(owner),
                ReqInfo { via_home: true, vouched: true, hops: 0, ..req },
                lat.l2_tag,
            );
            return;
        }
        if self.l2[home].contains(block) {
            let req_area = self.area_of(req.requestor);
            // Read + live provider in the area: forward to the provider.
            if !req.write {
                let propo = self.l2[home].peek(block).unwrap_or_else(|| panic!("providers: L2 entry missing at home {home}, block {block:#x}")).propos[req_area];
                match propo {
                    Some(p) if req.forwarder != Some(p as Tile) && p as Tile != req.requestor => {
                        self.send_req(
                            ctx,
                            block,
                            Node::L2(home),
                            Node::L1(p as Tile),
                            ReqInfo { via_home: true, hops: 0, ..req },
                            lat.l2_tag,
                        );
                        return;
                    }
                    Some(p) if req.forwarder == Some(p as Tile) => {
                        // The provider pointer is stale (or the messages
                        // crossed): repair it and destroy any surviving
                        // copy at the displaced provider.
                        self.l2[home].peek_mut(block).unwrap_or_else(|| panic!("providers: L2 entry missing at home {home}, block {block:#x}")).propos[req_area] = None;
                        ctx.send(
                            Msg {
                                kind: MsgKind::InvSilent,
                                block,
                                src: Node::L2(home),
                                dst: Node::L1(p as Tile),
                            },
                            lat.l2_tag,
                        );
                    }
                    _ => {}
                }
            }
            // Grant the ownership to the requestor (Table I: L2 owner, no
            // provider -> requestor becomes owner).
            let e = self.l2[home].remove(block).unwrap_or_else(|| panic!("providers: L2 entry missing at home {home}, block {block:#x}"));
            self.stats.l2_data_read.inc();
            let propos = e.propos;
            let n_prov = Self::propo_count(&propos);
            if req.write {
                self.send_provider_invs(ctx, Node::L2(home), block, &propos, Node::L1(req.requestor));
            }
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo {
                        exclusive: n_prov == 0,
                        ownership: true,
                        sharers: 0,
                        propos: if req.write { [None; MAX_AREAS] } else { propos },
                        acks_sharers: 0,
                        acks_providers: if req.write { n_prov } else { 0 },
                        dirty: e.dirty,
                        version: e.version,
                        supplier: Supplier::HomeL2,
                        ..DataInfo::shared(e.version, Supplier::HomeL2)
                    }),
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(req.requestor),
                },
                lat.l2_access(),
            );
            self.home_queues[home].set_busy(block);
            self.tx[home].insert(block, HomeTx::Granting { to: req.requestor });
            return;
        }
        self.home_queues[home].set_busy(block);
        self.tx[home].insert(block, HomeTx::MemFetch { req: msg });
        self.stats.mem_reads.inc();
        ctx.mem_read(block, home, lat.l2_tag);
    }

    fn home_handle_memdata(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        let Some(HomeTx::MemFetch { req }) = self.tx[home].remove(&block) else {
            panic!("MemData without MemFetch");
        };
        let MsgKind::Req(req) = req.kind else { unreachable!() };
        let version = self.mem.version(block);
        ctx.send(
            Msg {
                kind: MsgKind::Data(DataInfo {
                    exclusive: true,
                    ownership: true,
                    dirty: false,
                    version,
                    supplier: Supplier::Memory,
                    ..DataInfo::shared(version, Supplier::Memory)
                }),
                block,
                src: Node::L2(home),
                dst: Node::L1(req.requestor),
            },
            self.spec.lat.l2_access(),
        );
        self.tx[home].insert(block, HomeTx::Granting { to: req.requestor });
    }

    #[allow(clippy::too_many_arguments)]
    fn home_handle_unblock(&mut self, ctx: &mut Ctx, home: Tile, block: Block, src: Tile, became_owner: bool) {
        if let Some(HomeTx::Granting { to }) = self.tx[home].get(&block) {
            debug_assert_eq!(*to, src, "Unblock from a non-grantee");
            self.tx[home].remove(&block);
            if became_owner {
                self.l2c_insert(ctx, home, block, src);
            }
            for mut m in self.home_queues[home].release(block) {
                if let MsgKind::Req(ref mut r) = m.kind {
                    // Any bounce marker predates this release and is
                    // stale: let the request re-evaluate freshly.
                    r.via_home = false;
                    r.forwarder = None;
                }
                ctx.replay(m);
            }
            self.release_bounces(ctx, home, block);
        }
    }

    fn home_handle_change_owner(&mut self, ctx: &mut Ctx, home: Tile, block: Block, new_owner: Tile) {
        self.stats.l2c_access.inc();
        let lat = self.spec.lat;
        if let Some(HomeTx::Recall) = self.tx[home].get(&block) {
            ctx.send(
                Msg { kind: MsgKind::ChangeOwnerAck, block, src: Node::L2(home), dst: Node::L1(new_owner) },
                lat.l2_tag,
            );
            ctx.send(
                Msg { kind: MsgKind::OwnershipRecall, block, src: Node::L2(home), dst: Node::L1(new_owner) },
                lat.l2_tag,
            );
            self.release_bounces(ctx, home, block);
            return;
        }
        if let Some(o) = self.l2c[home].get_mut(block) {
            *o = new_owner;
        } else {
            self.l2c_insert(ctx, home, block, new_owner);
        }
        ctx.send(
            Msg { kind: MsgKind::ChangeOwnerAck, block, src: Node::L2(home), dst: Node::L1(new_owner) },
            lat.l2_tag,
        );
        self.release_bounces(ctx, home, block);
    }

    fn release_bounces(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        if let Some(q) = self.bounce_hold[home].remove(&block) {
            for mut m in q {
                if let MsgKind::Req(ref mut r) = m.kind {
                    r.via_home = false;
                    r.forwarder = None;
                }
                ctx.replay(m);
            }
        }
    }

    fn home_handle_wb(
        &mut self,
        ctx: &mut Ctx,
        home: Tile,
        block: Block,
        dirty: bool,
        version: u64,
        propos: Propos,
    ) {
        self.stats.l2_tag.inc();
        self.stats.l2c_access.inc();
        self.l2c[home].remove(block);
        let entry = L2Entry { dirty, version, propos };
        if let Some(HomeTx::Recall) = self.tx[home].get(&block) {
            self.tx[home].remove(&block);
            self.l2_insert(ctx, home, block, entry);
            for mut m in self.home_queues[home].release(block) {
                if let MsgKind::Req(ref mut r) = m.kind {
                    // Any bounce marker predates this release and is
                    // stale: let the request re-evaluate freshly.
                    r.via_home = false;
                    r.forwarder = None;
                }
                ctx.replay(m);
            }
        } else {
            self.l2_insert(ctx, home, block, entry);
        }
        self.release_bounces(ctx, home, block);
    }

    /// `Change_Provider` / `No_Provider` arriving at the home: applied to
    /// the home's own entry, or forwarded to the L1 owner.
    fn home_handle_provider_update(&mut self, ctx: &mut Ctx, home: Tile, msg: Msg) {
        self.stats.l2c_access.inc();
        let block = msg.block;
        if let Some(&owner) = self.l2c[home].peek(block) {
            ctx.send(
                Msg { dst: Node::L1(owner), src: Node::L2(home), ..msg },
                self.spec.lat.l2_tag,
            );
            return;
        }
        if let Some(e) = self.l2[home].peek_mut(block) {
            match msg.kind {
                MsgKind::ChangeProvider { area, new_provider } => {
                    e.propos[area as usize] = Some(new_provider as u16);
                    ctx.send(
                        Msg {
                            kind: MsgKind::ChangeProviderAck,
                            block,
                            src: Node::L2(home),
                            dst: Node::L1(new_provider),
                        },
                        self.spec.lat.l2_tag,
                    );
                }
                MsgKind::NoProvider { area, former } => {
                    if e.propos[area as usize] == Some(former as u16) {
                        e.propos[area as usize] = None;
                    }
                }
                _ => unreachable!(),
            }
        }
        // Ownership in transit: drop; stale pointers self-correct.
    }

    /// The same updates arriving at an owner L1.
    fn l1_handle_provider_update(&mut self, ctx: &mut Ctx, tile: Tile, msg: Msg) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        let is_owner =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Owner { .. }));
        if !is_owner {
            // Stale: drop; the pointer will self-correct.
            return;
        }
        let line = self.l1[tile].peek_mut(block).unwrap_or_else(|| panic!("providers: owner line missing at L1 tile {tile}, block {block:#x}"));
        match msg.kind {
            MsgKind::ChangeProvider { area, new_provider } => {
                line.propos[area as usize] = Some(new_provider as u16);
                ctx.send(
                    Msg {
                        kind: MsgKind::ChangeProviderAck,
                        block,
                        src: Node::L1(tile),
                        dst: Node::L1(new_provider),
                    },
                    self.spec.lat.l1_tag,
                );
            }
            MsgKind::NoProvider { area, former } => {
                if line.propos[area as usize] == Some(former as u16) {
                    line.propos[area as usize] = None;
                }
            }
            _ => unreachable!(),
        }
    }

    fn drain_deferred(&mut self, ctx: &mut Ctx) {
        let writes = std::mem::take(&mut self.pending_mem_writes);
        for (home, block) in writes {
            ctx.mem_write(block, home, 0);
        }
    }
}

impl CoherenceProtocol for Providers {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DiCoProviders
    }

    fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    fn core_access(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        write: bool,
    ) -> Result<AccessOutcome, ProtoError> {
        self.stats.accesses.inc();
        self.stats.l1_tag.inc();
        if self.mshr[tile].contains(block) {
            return Ok(AccessOutcome::Blocked { reason: BlockReason::MshrConflict });
        }
        if self.l1_queues[tile].is_busy(block) {
            return Ok(AccessOutcome::Blocked { reason: BlockReason::BusyBlock });
        }
        let lat = self.spec.lat;
        enum Action {
            HitRead,
            HitWrite,
            Upgrade,
            Miss,
        }
        let action = match self.l1[tile].peek(block).map(|l| (&l.state, l.area_sharers, &l.propos))
        {
            Some((L1State::Sharer { .. } | L1State::Provider, ..)) if !write => Action::HitRead,
            Some((L1State::Sharer { .. } | L1State::Provider, ..)) => Action::Miss,
            Some((L1State::Owner { .. }, ..)) if !write => Action::HitRead,
            Some((L1State::Owner { exclusive: true, .. }, ..)) => Action::HitWrite,
            Some((L1State::Owner { .. }, sharers, propos)) => {
                if sharers == 0 && Self::propo_count(propos) == 0 {
                    Action::HitWrite
                } else {
                    Action::Upgrade
                }
            }
            None => Action::Miss,
        };
        let outcome = match action {
            Action::HitRead => {
                self.l1[tile].touch(block);
                self.stats.l1_data_read.inc();
                self.stats.l1_hits.inc();
                AccessOutcome::Hit { latency: lat.l1_hit() }
            }
            Action::HitWrite => {
                let v = self.authority.commit(block);
                let line = self.l1[tile].get_mut(block).expect("hit");
                line.version = v;
                line.state = L1State::Owner { exclusive: true, dirty: true };
                self.stats.l1_data_write.inc();
                self.stats.l1_hits.inc();
                AccessOutcome::Hit { latency: lat.l1_hit() }
            }
            Action::Upgrade => {
                self.start_miss(ctx, tile, block, true, true);
                self.drain_deferred(ctx);
                AccessOutcome::Miss
            }
            Action::Miss => {
                self.start_miss(ctx, tile, block, write, false);
                self.drain_deferred(ctx);
                AccessOutcome::Miss
            }
        };
        Ok(outcome)
    }

    fn handle(&mut self, ctx: &mut Ctx, msg: Msg) -> Result<(), ProtoError> {
        match (msg.dst, msg.kind) {
            (Node::L1(tile), MsgKind::Req(req)) => self.l1_handle_req(ctx, tile, msg, req),
            (Node::L1(tile), MsgKind::Data(d)) => {
                {
                    let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                        return Err(ProtoError::new(
                            ProtocolKind::DiCoProviders,
                            msg.dst,
                            msg.block,
                            format!("data fill without MSHR entry ({:?} from {:?})", d.supplier, msg.src),
                        ));
                    };
                    e.have_data = true;
                    e.acks_needed += d.acks_sharers as i64;
                    e.provider_acks_needed += d.acks_providers as i64;
                    e.fill = Some(d);
                    e.fill_from = Some(msg.src);
                }
                // A writing requestor that is a provider is invalidated
                // through the owner's explicit InvProvider (handled like
                // any other provider), so no special casing is needed
                // here.
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Ack) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCoProviders,
                        msg.dst,
                        msg.block,
                        format!("invalidation ack without MSHR entry (from {:?})", msg.src),
                    ));
                };
                e.acks_needed -= 1;
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::AckCount { sharers }) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCoProviders,
                        msg.dst,
                        msg.block,
                        format!("provider ack-count without MSHR entry (from {:?})", msg.src),
                    ));
                };
                e.provider_acks_needed -= 1;
                e.acks_needed += sharers as i64;
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Inv { reply_to, version }) => {
                self.l1_handle_inv(ctx, tile, msg.block, reply_to, version);
            }
            (Node::L1(tile), MsgKind::InvSilent) => {
                self.stats.l1_tag.inc();
                let block = msg.block;
                // An owner copy is authoritative: a silent invalidation
                // targeting it is stale — ignore.
                if matches!(
                    self.l1[tile].peek(block).map(|l| &l.state),
                    Some(L1State::Owner { .. })
                ) {
                    // Stale.
                } else if let Some(line) = self.l1[tile].peek(block) {
                    // A provider cascades to its tracked sharers.
                    if matches!(line.state, L1State::Provider) {
                        let (sharers, area) = (line.area_sharers, self.area_of(tile));
                        for t in self.area_tiles(area, sharers) {
                            ctx.send(
                                Msg {
                                    kind: MsgKind::InvSilent,
                                    block,
                                    src: Node::L1(tile),
                                    dst: Node::L1(t),
                                },
                                self.spec.lat.l1_tag,
                            );
                        }
                    }
                    self.l1[tile].remove(block);
                } else if let Some(e) = self.mshr[tile].get_mut(block) {
                    if !e.write {
                        // Kill the fill in flight from before the repair.
                        e.pending_inv = Some(u64::MAX);
                    }
                }
            }
            (Node::L1(tile), MsgKind::InvProvider { reply_to }) => {
                self.l1_handle_inv_provider(ctx, tile, msg.block, reply_to);
            }
            (Node::L1(tile), MsgKind::OwnershipTransfer { sharers, propos, dirty, version, .. }) => {
                self.l1_handle_transfer(ctx, tile, msg, sharers, propos, dirty, version);
            }
            (Node::L1(tile), MsgKind::ProvidershipTransfer { sharers, former, .. }) => {
                self.l1_handle_ptransfer(ctx, tile, msg, sharers, former);
            }
            (Node::L1(tile), MsgKind::OwnershipRecall) => self.l1_handle_recall(ctx, tile, msg.block),
            (Node::L1(tile), MsgKind::ChangeOwnerAck) => {
                if self.co_pending[tile].remove(&msg.block) {
                    for m in self.l1_queues[tile].release(msg.block) {
                        ctx.replay(m);
                    }
                } else {
                    self.co_ack_early[tile].insert(msg.block);
                }
            }
            (Node::L1(tile), MsgKind::Hint { supplier }) => {
                self.stats.l1_tag.inc();
                self.learn(tile, msg.block, supplier);
            }
            (Node::L1(tile), MsgKind::ChangeProviderAck) => {
                // Informational only (see module docs): no blocking state.
                let _ = tile;
            }
            (Node::L1(tile), MsgKind::ChangeProvider { .. })
            | (Node::L1(tile), MsgKind::NoProvider { .. }) => {
                self.l1_handle_provider_update(ctx, tile, msg);
            }
            // ---------------------------------------------- home side
            (Node::L2(home), MsgKind::Req(req)) => {
                if self.home_queues[home].is_busy(msg.block) {
                    self.home_queues[home].enqueue(msg);
                } else {
                    self.home_dispatch(ctx, home, msg, req);
                }
            }
            (Node::L2(home), MsgKind::MemData) => self.home_handle_memdata(ctx, home, msg.block),
            (Node::L2(home), MsgKind::Unblock { became_owner }) => {
                self.home_handle_unblock(ctx, home, msg.block, msg.src.tile(), became_owner);
            }
            (Node::L2(home), MsgKind::ChangeOwner { new_owner }) => {
                self.home_handle_change_owner(ctx, home, msg.block, new_owner);
            }
            (Node::L2(home), MsgKind::OwnershipToHome { dirty, version, propos, .. }) => {
                self.home_handle_wb(ctx, home, msg.block, dirty, version, propos);
            }
            (Node::L2(home), MsgKind::ChangeProvider { .. })
            | (Node::L2(home), MsgKind::NoProvider { .. }) => {
                self.home_handle_provider_update(ctx, home, msg);
            }
            (Node::L2(_), MsgKind::RecallFailed) => {
                // Ownership is in motion; a ChangeOwner or writeback will
                // restart or complete the recall.
            }
            (Node::L2(home), MsgKind::Ack) => {
                let mut finished = None;
                if let Some(HomeTx::EvictL2 { acks_left, provider_acks_left, dirty, version }) =
                    self.tx[home].get_mut(&msg.block)
                {
                    *acks_left -= 1;
                    if *acks_left == 0 && *provider_acks_left == 0 {
                        finished = Some((*dirty, *version));
                    }
                } else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCoProviders,
                        msg.dst,
                        msg.block,
                        format!("stray invalidation ack at home (no EvictL2 transaction; from {:?})", msg.src),
                    ));
                }
                if let Some((dirty, version)) = finished {
                    self.finish_l2_eviction(ctx, home, msg.block, dirty, version);
                }
            }
            (Node::L2(home), MsgKind::AckCount { sharers }) => {
                let mut finished = None;
                if let Some(HomeTx::EvictL2 { acks_left, provider_acks_left, dirty, version }) =
                    self.tx[home].get_mut(&msg.block)
                {
                    *provider_acks_left -= 1;
                    *acks_left += sharers as i64;
                    if *acks_left == 0 && *provider_acks_left == 0 {
                        finished = Some((*dirty, *version));
                    }
                } else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCoProviders,
                        msg.dst,
                        msg.block,
                        format!("stray provider ack-count at home (no EvictL2 transaction; from {:?})", msg.src),
                    ));
                }
                if let Some((dirty, version)) = finished {
                    self.finish_l2_eviction(ctx, home, msg.block, dirty, version);
                }
            }
            _ => return Err(ProtoError::unexpected(ProtocolKind::DiCoProviders, &msg)),
        }
        self.drain_deferred(ctx);
        Ok(())
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut ProtoStats {
        &mut self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ProtoStats::default();
    }

    fn quiescent(&self) -> bool {
        self.mshr.iter().all(|m| m.is_empty())
            && self.l1_queues.iter().all(|q| q.idle())
            && self.home_queues.iter().all(|q| q.idle())
            && self.tx.iter().all(|t| t.is_empty())
            && self.co_pending.iter().all(|s| s.is_empty())
            && self.bounce_hold.iter().all(|b| b.values().all(|q| q.is_empty()))
    }

    fn clone_box(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }

    crate::common::snap_state_methods!(
        stats,
        authority,
        mem,
        l1,
        l1c,
        mshr,
        l1_queues,
        co_pending,
        co_ack_early,
        tombstones,
        tombstone_fifo,
        ptombstones,
        ptombstone_fifo,
        l2,
        l2c,
        home_queues,
        tx,
        bounce_hold,
        pending_mem_writes,
    );

    fn occupancy(&self) -> Occupancy {
        let (l1_lines, l1_capacity) = occupancy_of(&self.l1);
        let (l2_lines, l2_capacity) = occupancy_of(&self.l2);
        let (c1, cap1) = occupancy_of(&self.l1c);
        let (c2, cap2) = occupancy_of(&self.l2c);
        Occupancy {
            l1_lines,
            l1_capacity,
            l2_lines,
            l2_capacity,
            aux_lines: c1 + c2,
            aux_capacity: cap1 + cap2,
        }
    }

    fn snapshot(&self) -> ChipSnapshot {
        let mut snap = ChipSnapshot::new(self.spec.tiles());
        for (t, l1) in self.l1.iter().enumerate() {
            for (block, line) in l1.iter() {
                let state = match line.state {
                    L1State::Sharer { .. } => CopyState::Shared,
                    L1State::Provider => CopyState::Provider,
                    L1State::Owner { exclusive, dirty } => CopyState::Owner { exclusive, dirty },
                };
                snap.l1[t].insert(block, CopyView { state, version: line.version });
            }
        }
        for (home, bank) in self.l2.iter().enumerate() {
            for (block, e) in bank.iter() {
                snap.l2.insert(
                    block,
                    L2View { has_data: true, version: e.version, dirty: e.dirty, owner_in_l1: None },
                );
            }
            for (block, &o) in self.l2c[home].iter() {
                snap.l2.entry(block).or_insert(L2View {
                    has_data: false,
                    version: 0,
                    dirty: false,
                    owner_in_l1: Some(o),
                });
            }
        }
        for (b, v) in self.authority.iter() {
            snap.authority.insert(*b, *v);
            snap.memory.insert(*b, self.mem.version(*b));
        }
        // Coverage: sharers must appear in the area sharing code of
        // their area's supplier (owner or provider); suppliers
        // self-report (their reachability is through the owner's ProPos
        // or a providership hand-off chain, which the union cannot see).
        let mut rec: std::collections::BTreeMap<Block, u64> = Default::default();
        for (t, l1) in self.l1.iter().enumerate() {
            let area = self.area_of(t);
            for (block, line) in l1.iter() {
                let mut bits = 0u64;
                match line.state {
                    L1State::Owner { .. } | L1State::Provider => {
                        bits |= bit(t);
                        for s in self.area_tiles(area, line.area_sharers) {
                            bits |= bit(s);
                        }
                        if let L1State::Owner { .. } = line.state {
                            for p in line.propos.iter().flatten() {
                                bits |= bit(*p as Tile);
                            }
                        }
                    }
                    L1State::Sharer { .. } => {}
                }
                if bits != 0 {
                    *rec.entry(block).or_insert(0) |= bits;
                }
            }
        }
        for bank in &self.l2 {
            for (block, e) in bank.iter() {
                let mut bits = 0u64;
                for p in e.propos.iter().flatten() {
                    bits |= bit(*p as Tile);
                }
                *rec.entry(block).or_insert(0) |= bits;
            }
        }
        snap.recorded = rec;
        snap
    }

    fn pending_summary(&self) -> String {
        let mut out = String::new();
        for t in 0..self.spec.tiles() {
            for (b, e) in self.mshr[t].iter() {
                out += &format!(
                    "tile {t} MSHR block {b:#x}: write={} have_data={} acks={} packs={} upgrade={}\n",
                    e.write, e.have_data, e.acks_needed, e.provider_acks_needed, e.upgrade
                );
            }
            let mut co: Vec<Block> = self.co_pending[t].iter().copied().collect();
            co.sort_unstable();
            for b in co {
                out += &format!("tile {t} co_pending block {b:#x}\n");
            }
            for (b, n) in self.l1_queues[t].pending_counts() {
                out += &format!(
                    "tile {t} l1_queue block {b:#x}: {n} msgs (busy={})\n",
                    self.l1_queues[t].is_busy(b)
                );
            }
            let mut txs: Vec<(Block, &HomeTx)> =
                self.tx[t].iter().map(|(b, x)| (*b, x)).collect();
            txs.sort_unstable_by_key(|&(b, _)| b);
            for (b, tx) in txs {
                out += &format!("home {t} tx block {b:#x}: {tx:?}\n");
            }
            let mut holds: Vec<(Block, usize)> = self.bounce_hold[t]
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(b, q)| (*b, q.len()))
                .collect();
            holds.sort_unstable();
            for (b, n) in holds {
                out += &format!("home {t} bounce_hold block {b:#x}: {n} msgs\n");
            }
        }
        out
    }
}

impl Providers {
    fn finish_l2_eviction(&mut self, ctx: &mut Ctx, home: Tile, block: Block, dirty: bool, version: u64) {
        self.tx[home].remove(&block);
        if dirty {
            self.stats.mem_writes.inc();
            self.mem.write_back(block, version);
            ctx.mem_write(block, home, 0);
        }
        for mut m in self.home_queues[home].release(block) {
            if let MsgKind::Req(ref mut r) = m.kind {
                r.via_home = false;
                r.forwarder = None;
            }
            ctx.replay(m);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{random_stress, Harness};

    fn harness() -> Harness<Providers> {
        Harness::new(Providers::new(ChipSpec::small()))
    }

    /// ChipSpec::small is a 4x4 mesh with four 2x2 areas:
    /// area 0 = {0,1,4,5}, area 1 = {2,3,6,7}, area 2 = {8,9,12,13},
    /// area 3 = {10,11,14,15}.
    #[test]
    fn area_layout_assumption() {
        let spec = ChipSpec::small();
        assert_eq!(spec.area_of(0), 0);
        assert_eq!(spec.area_of(2), 1);
        assert_eq!(spec.area_of(8), 2);
        assert_eq!(spec.area_of(15), 3);
    }

    #[test]
    fn local_read_serves_as_dico() {
        let mut h = harness();
        h.push_access(0, 100, true); // tile 0 owner (area 0)
        h.run_checked(1000);
        h.push_access(1, 100, false); // same area read
        h.run_checked(2000);
        let snap = h.proto.snapshot();
        assert!(matches!(snap.l1[1].get(&100).unwrap().state, CopyState::Shared));
    }

    #[test]
    fn remote_read_creates_provider() {
        let mut h = harness();
        h.push_access(0, 100, true); // owner in area 0
        h.run_checked(1000);
        h.push_access(2, 100, false); // area 1 reads -> becomes provider
        h.run_checked(2000);
        let snap = h.proto.snapshot();
        assert!(matches!(snap.l1[2].get(&100).unwrap().state, CopyState::Provider));
    }

    #[test]
    fn provider_serves_in_area_read() {
        let mut h = harness();
        h.push_access(0, 100, true);
        h.run_checked(1000);
        h.push_access(2, 100, false); // provider of area 1
        h.run_checked(2000);
        h.push_access(3, 100, false); // same area as tile 2
        h.run_checked(3000);
        let snap = h.proto.snapshot();
        assert!(matches!(snap.l1[3].get(&100).unwrap().state, CopyState::Shared));
        // Tile 3 had no prediction: its request went through the home,
        // which forwarded to the owner, which forwarded to the provider —
        // the data still came from the provider L1.
        let s = h.proto.stats();
        assert!(
            s.class_count(MissClass::UnpredictedForwarded) >= 1,
            "classes: {:?}",
            s.miss_class
        );
    }

    #[test]
    fn predicted_provider_hit_is_classified() {
        let mut h = harness();
        h.push_access(0, 100, true);
        h.run_checked(1000);
        h.push_access(2, 100, false); // tile 2 provider (area 1)
        h.run_checked(2000);
        h.push_access(3, 100, false); // tile 3 sharer, hint -> tile 2
        h.run_checked(3000);
        // Evict nothing; tile 3's line hint points at the provider. Write
        // some other block then re-miss on 100 via eviction is complex;
        // instead make tile 6 (same area) read with a learned prediction:
        // tile 6 has no hint, so seed its L1C$ through an invalidation is
        // overkill — simply have tile 3 lose its copy by another tile's
        // write, then re-read using the hint learned from the Inv.
        h.push_access(0, 100, true); // invalidates everyone, tile 3 learns owner=0
        h.run_checked(5000);
        h.push_access(3, 100, false); // predicted to tile 0 (owner) -> 2-hop
        h.run_checked(6000);
        assert!(
            h.proto.stats().class_count(MissClass::PredictedOwnerHit) >= 1
                || h.proto.stats().class_count(MissClass::PredictedProviderHit) >= 1,
            "classes: {:?}",
            h.proto.stats().miss_class
        );
    }

    #[test]
    fn write_invalidates_across_areas() {
        let mut h = harness();
        h.push_access(0, 100, true); // owner area 0
        h.run_checked(1000);
        for t in [1usize, 2, 3, 8, 10] {
            h.push_access(t, 100, false); // sharers + providers in 4 areas
        }
        h.run_checked(8000);
        h.push_access(5, 100, true); // write from area 0
        h.run_checked(10_000);
        let snap = h.proto.snapshot();
        for t in [0usize, 1, 2, 3, 8, 10] {
            assert!(!snap.l1[t].contains_key(&100), "tile {t} kept a stale copy");
        }
        assert!(matches!(
            snap.l1[5].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: true }
        ));
        assert_eq!(*snap.authority.get(&100).unwrap(), 2);
    }

    #[test]
    fn writer_who_is_provider_invalidates_own_area() {
        let mut h = harness();
        h.push_access(0, 100, true); // owner area 0
        h.run_checked(1000);
        h.push_access(2, 100, false); // tile 2 provider of area 1
        h.run_checked(2000);
        h.push_access(3, 100, false); // tile 3 sharer tracked by tile 2
        h.run_checked(3000);
        h.push_access(2, 100, true); // the provider writes
        h.run_checked(6000);
        let snap = h.proto.snapshot();
        assert!(!snap.l1[3].contains_key(&100), "tile 3 must be invalidated by tile 2");
        assert!(!snap.l1[0].contains_key(&100));
        assert!(matches!(
            snap.l1[2].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: true }
        ));
    }

    #[test]
    fn ping_pong_across_areas_serializes() {
        let mut h = harness();
        for i in 0..12 {
            h.push_access([0, 2, 8, 10][i % 4], 64, true);
        }
        h.run_checked(60_000);
        assert_eq!(*h.proto.snapshot().authority.get(&64).unwrap(), 12);
    }

    #[test]
    fn stress_read_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xc1, 60, 40, 0.1);
    }

    #[test]
    fn stress_write_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xc2, 60, 24, 0.6);
    }

    #[test]
    fn stress_high_contention() {
        let mut h = harness();
        random_stress(&mut h, 0xc3, 50, 4, 0.5);
    }

    #[test]
    fn stress_tiny_chip_capacity_pressure() {
        let mut h = Harness::new(Providers::new(ChipSpec::tiny()));
        random_stress(&mut h, 0xc4, 80, 64, 0.3);
    }

    #[test]
    fn stress_many_seeds() {
        for seed in 0..6 {
            let mut h = harness();
            random_stress(&mut h, 0xd000 + seed, 30, 16, 0.4);
        }
    }
}
