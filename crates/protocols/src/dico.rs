//! Direct Coherence (DiCo), the paper's baseline proposal (§II-B).
//!
//! Ownership, data and the full-map sharing code live together in the
//! owner L1. An L1 miss predicts the owner through the L1C$ (or the
//! pointer embedded in an evicted line) and goes straight to it — two
//! hops in the common case, without visiting the home. The home's L2C$
//! stores the *exact* identity of the L1 owner and redirects
//! mispredicted requests.
//!
//! Ownership movement rules implemented as the paper describes:
//!
//! * a write moves the ownership to the writer; the **old** owner starts
//!   the invalidation of its sharers and sends `Change_Owner` to the
//!   home; the **new** owner may not transfer the ownership again until
//!   the home's acknowledgement arrives;
//! * owner replacement passes the ownership (plus sharing code and data)
//!   to a sharer, which registers itself with `Change_Owner`; a target
//!   that silently dropped its copy forwards the transfer to the next
//!   candidate, falling back to the home;
//! * an L2C$ eviction recalls the ownership from the L1 into the home.
//!
//! Unlike the blocking directory, reads are resolved without serializing
//! through the home, so a read fill and the invalidation of a later
//! write can cross on the wire; invalidations carry the epoch they kill
//! and a fill that lost such a race completes the read (it was
//! serialized first) but is not installed.

use crate::checker::{ChipSnapshot, CopyState, CopyView, L2View};
use crate::common::*;
use cmpsim_cache::{Mshr, SetAssoc};
use cmpsim_engine::{Cycle, FxHashMap, FxHashSet};
use std::collections::VecDeque;

/// L1 line state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    /// Sharer; `hint` remembers the last known supplier (stored in the
    /// line's directory-info space, moved to the L1C$ on eviction).
    Sharer { hint: Option<Tile> },
    /// Owner: data + sharing code live here.
    Owner {
        /// No sharers exist (E/M as opposed to O).
        exclusive: bool,
        /// Modified with respect to memory.
        dirty: bool,
    },
}

#[derive(Debug, Clone)]
struct L1Line {
    state: L1State,
    /// Chip-wide sharer bit-vector (valid when owner; excludes self).
    sharers: u64,
    version: u64,
}

impl L1Line {
    fn dirty(&self) -> bool {
        matches!(self.state, L1State::Owner { dirty: true, .. })
    }
}

/// L2 data entry: exists exactly when the home L2 holds the ownership.
#[derive(Debug, Clone)]
struct L2Entry {
    dirty: bool,
    version: u64,
    sharers: u64,
}

/// Outstanding miss at the requestor.
#[derive(Debug, Clone)]
struct MshrEntry {
    write: bool,
    issued_at: Cycle,
    /// Predicted destination, if the L1C$ produced one.
    predicted: Option<Tile>,
    /// In-place upgrade at the owner (no data expected).
    upgrade: bool,
    have_data: bool,
    fill: Option<DataInfo>,
    fill_from: Option<Node>,
    acks_needed: i64,
    /// An invalidation for epoch `v` arrived while a read fill was in
    /// flight; a fill with `version <= v` completes but is not installed.
    pending_inv: Option<u64>,
}

/// Home-side transaction.
#[derive(Debug, Clone)]
enum HomeTx {
    /// Off-chip fetch in flight; the triggering request is stored.
    MemFetch { req: Msg },
    /// L2C$ eviction recall in flight.
    Recall,
    /// The home granted ownership (from its own L2 data or from memory)
    /// and waits for the requestor's Unblock before updating the L2C$
    /// and serving the next request.
    Granting {
        /// The grantee.
        to: Tile,
    },
    /// Eviction of an L2-owner data line: collecting invalidation acks.
    EvictL2 { acks_left: u32, dirty: bool, version: u64 },
}

/// The Direct Coherence protocol.
#[derive(Clone)]
pub struct DiCo {
    spec: ChipSpec,
    stats: ProtoStats,
    authority: VersionAuthority,
    mem: MemoryImage,
    l1: Vec<SetAssoc<L1Line>>,
    l1c: Vec<SetAssoc<Tile>>,
    mshr: Vec<Mshr<MshrEntry>>,
    /// Per-L1 pending queues (owner busy with an upgrade or awaiting its
    /// Change_Owner ack).
    l1_queues: Vec<BlockQueues>,
    /// Blocks whose ownership we received from another L1 and whose
    /// Change_Owner ack is still outstanding.
    co_pending: Vec<FxHashSet<Block>>,
    /// Change_Owner acks that arrived before the data (network race).
    co_ack_early: Vec<FxHashSet<Block>>,
    /// Recently transferred-away blocks: new-owner tombstones.
    tombstones: Vec<FxHashMap<Block, Node>>,
    tombstone_fifo: Vec<VecDeque<Block>>,
    l2: Vec<SetAssoc<L2Entry>>,
    l2c: Vec<SetAssoc<Tile>>,
    home_queues: Vec<BlockQueues>,
    tx: Vec<FxHashMap<Block, HomeTx>>,
    /// Requests that returned to the home while its owner pointer was
    /// provably stale; replayed on the next ownership update.
    bounce_hold: Vec<FxHashMap<Block, VecDeque<Msg>>>,
    pending_mem_writes: Vec<(Tile, Block)>,
}

const TOMBSTONE_CAP: usize = 128;

cmpsim_engine::impl_snap!(L1Line { state, sharers, version });
cmpsim_engine::impl_snap!(L2Entry { dirty, version, sharers });
cmpsim_engine::impl_snap!(MshrEntry {
    write,
    issued_at,
    predicted,
    upgrade,
    have_data,
    fill,
    fill_from,
    acks_needed,
    pending_inv,
});

impl cmpsim_engine::Snap for L1State {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        match self {
            L1State::Sharer { hint } => {
                w.u8(0);
                hint.save(w);
            }
            L1State::Owner { exclusive, dirty } => {
                w.u8(1);
                exclusive.save(w);
                dirty.save(w);
            }
        }
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        Ok(match r.u8()? {
            0 => L1State::Sharer { hint: Snap::load(r)? },
            1 => L1State::Owner { exclusive: Snap::load(r)?, dirty: Snap::load(r)? },
            tag => return Err(cmpsim_engine::SnapError::BadTag { what: "dico::L1State", tag }),
        })
    }
}

impl cmpsim_engine::Snap for HomeTx {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        match self {
            HomeTx::MemFetch { req } => {
                w.u8(0);
                req.save(w);
            }
            HomeTx::Recall => w.u8(1),
            HomeTx::Granting { to } => {
                w.u8(2);
                to.save(w);
            }
            HomeTx::EvictL2 { acks_left, dirty, version } => {
                w.u8(3);
                acks_left.save(w);
                dirty.save(w);
                version.save(w);
            }
        }
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        Ok(match r.u8()? {
            0 => HomeTx::MemFetch { req: Snap::load(r)? },
            1 => HomeTx::Recall,
            2 => HomeTx::Granting { to: Snap::load(r)? },
            3 => HomeTx::EvictL2 {
                acks_left: Snap::load(r)?,
                dirty: Snap::load(r)?,
                version: Snap::load(r)?,
            },
            tag => return Err(cmpsim_engine::SnapError::BadTag { what: "dico::HomeTx", tag }),
        })
    }
}

impl DiCo {
    /// Builds the protocol for `spec`.
    pub fn new(spec: ChipSpec) -> Self {
        let n = spec.tiles();
        Self {
            l1: (0..n).map(|_| SetAssoc::new(spec.l1)).collect(),
            l1c: (0..n).map(|_| SetAssoc::new(spec.aux)).collect(),
            mshr: (0..n).map(|_| Mshr::new(8)).collect(),
            l1_queues: (0..n).map(|_| BlockQueues::default()).collect(),
            co_pending: vec![FxHashSet::default(); n],
            co_ack_early: vec![FxHashSet::default(); n],
            tombstones: vec![FxHashMap::default(); n],
            tombstone_fifo: vec![VecDeque::new(); n],
            l2: (0..n).map(|_| SetAssoc::new(spec.l2)).collect(),
            l2c: (0..n).map(|_| SetAssoc::new(spec.aux_home)).collect(),
            home_queues: (0..n).map(|_| BlockQueues::default()).collect(),
            tx: (0..n).map(|_| FxHashMap::default()).collect(),
            bounce_hold: vec![FxHashMap::default(); n],
            pending_mem_writes: Vec::new(),
            spec,
            stats: ProtoStats::default(),
            authority: VersionAuthority::default(),
            mem: MemoryImage::default(),
        }
    }

    fn home(&self, block: Block) -> Tile {
        self.spec.home_of(block)
    }

    fn send_req(
        &mut self,
        ctx: &mut Ctx,
        block: Block,
        src: Node,
        dst: Node,
        req: ReqInfo,
        delay: Cycle,
    ) {
        ctx.send(Msg { kind: MsgKind::Req(req), block, src, dst }, delay);
    }

    fn tombstone_set(&mut self, tile: Tile, block: Block, to: Node) {
        if self.tombstones[tile].insert(block, to).is_none() {
            self.tombstone_fifo[tile].push_back(block);
            if self.tombstone_fifo[tile].len() > TOMBSTONE_CAP {
                if let Some(old) = self.tombstone_fifo[tile].pop_front() {
                    self.tombstones[tile].remove(&old);
                }
            }
        }
    }

    // --------------------------------------------------------- L1 side

    /// Prediction for the supplier of `block` at `tile` (L1C$ lookup).
    fn predict(&mut self, tile: Tile, block: Block) -> Option<Tile> {
        if !self.spec.enable_prediction {
            return None;
        }
        self.stats.l1c_access.inc();
        match self.l1c[tile].get_mut(block) {
            Some(&mut t) if t != tile => Some(t),
            _ => None,
        }
    }

    /// Records a supplier hint (line space first, else the L1C$ array).
    fn learn(&mut self, tile: Tile, block: Block, supplier: Tile) {
        if supplier == tile {
            return;
        }
        if let Some(line) = self.l1[tile].peek_mut(block) {
            if let L1State::Sharer { hint } = &mut line.state {
                *hint = Some(supplier);
                return;
            }
        }
        self.stats.l1c_access.inc();
        if let Some(p) = self.l1c[tile].get_mut(block) {
            *p = supplier;
        } else {
            self.l1c[tile].insert(block, supplier);
        }
    }

    fn start_miss(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, write: bool, upgrade: bool) {
        self.stats.l1_misses.inc();
        if write {
            self.stats.write_misses.inc();
        }
        // A sharer's line hint is the first prediction source.
        let line_hint = match self.l1[tile].peek(block).map(|l| &l.state) {
            Some(L1State::Sharer { hint }) => hint.filter(|&t| t != tile),
            _ => None,
        };
        let predicted = if upgrade || !self.spec.enable_prediction {
            None
        } else if line_hint.is_some() {
            self.stats.l1c_access.inc(); // embedded pointers are part of the L1C$
            line_hint
        } else {
            self.predict(tile, block)
        };
        self.mshr[tile].alloc(
            block,
            MshrEntry {
                write,
                issued_at: ctx.now,
                predicted,
                upgrade,
                have_data: upgrade,
                fill: None,
                fill_from: None,
                acks_needed: 0,
                pending_inv: None,
            },
        );
        if upgrade {
            // In-place upgrade: we are the owner; invalidate our sharers.
            let line = self.l1[tile].peek(block).expect("upgrade at owner");
            let (sharers, version) = (line.sharers, line.version);
            let n = sharers.count_ones();
            debug_assert!(n > 0, "upgrade with no sharers would be a silent hit");
            let e = self.mshr[tile].get_mut(block).expect("just allocated");
            e.acks_needed = n as i64;
            self.l1_queues[tile].set_busy(block);
            for t in iter_bits(sharers) {
                self.stats.invalidations.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::Inv { reply_to: Node::L1(tile), version },
                        block,
                        src: Node::L1(tile),
                        dst: Node::L1(t),
                    },
                    self.spec.lat.l1_tag,
                );
            }
            return;
        }
        let dst = match predicted {
            Some(t) => Node::L1(t),
            None => Node::L2(self.home(block)),
        };
        self.send_req(
            ctx,
            block,
            Node::L1(tile),
            dst,
            ReqInfo {
                requestor: tile,
                write,
                forwarder: None,
                via_home: false,
                predicted: predicted.is_some(),
                vouched: false,
                hops: 0,
            },
            self.spec.lat.l1_tag,
        );
    }

    /// Our own roaming request reached us after an ownership transfer
    /// made us the owner: complete the miss in place. Reads finish
    /// immediately (the line is valid); writes convert to an in-place
    /// upgrade that invalidates the inherited sharers.
    fn self_serve(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        let write = self.mshr[tile].get(block).map(|e| e.write).unwrap_or(false);
        if !write {
            let e = self.mshr[tile].release(block).expect("self-serve without MSHR");
            self.l1[tile].touch(block);
            self.stats.l1_data_read.inc();
            self.stats.record_miss(MissClass::UnpredictedForwarded, ctx.now - e.issued_at);
            ctx.complete(tile, block, self.spec.lat.l1_data);
            if !self.co_pending[tile].contains(&block) {
                for m in self.l1_queues[tile].release(block) {
                    ctx.replay(m);
                }
            }
            return;
        }
        // Write: upgrade in place.
        let line = self.l1[tile].peek(block).expect("owner line");
        let (sharers, version) = (line.sharers, line.version);
        let n = sharers.count_ones() as i64;
        {
            let e = self.mshr[tile].get_mut(block).expect("self-serve without MSHR");
            e.upgrade = true;
            e.have_data = true;
            e.acks_needed += n;
        }
        self.l1_queues[tile].set_busy(block);
        for t in iter_bits(sharers) {
            self.stats.invalidations.inc();
            ctx.send(
                Msg {
                    kind: MsgKind::Inv { reply_to: Node::L1(tile), version },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(t),
                },
                self.spec.lat.l1_tag,
            );
        }
        let line = self.l1[tile].peek_mut(block).expect("owner line");
        line.sharers = 0;
        self.try_complete(ctx, tile, block);
    }

    fn try_complete(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        let Some(e) = self.mshr[tile].get(block) else { return };
        if !e.have_data || e.acks_needed != 0 {
            return;
        }
        let e = self.mshr[tile].release(block).expect("checked");
        let lat = self.spec.lat;

        if e.upgrade {
            // Commit the in-place upgrade.
            let v = self.authority.commit(block);
            let line = self.l1[tile].peek_mut(block).expect("upgrade owner line");
            line.state = L1State::Owner { exclusive: true, dirty: true };
            line.sharers = 0;
            line.version = v;
            self.stats.l1_data_write.inc();
            self.stats.record_miss(MissClass::PredictedOwnerHit, ctx.now - e.issued_at);
            ctx.complete(tile, block, lat.l1_data);
            for m in self.l1_queues[tile].release(block) {
                ctx.replay(m);
            }
            return;
        }

        let fill = e.fill.expect("have_data");
        let stale = e.pending_inv.map(|v| fill.version <= v).unwrap_or(false);
        let class = self.classify(&e, &fill);
        self.stats.record_miss(class, ctx.now - e.issued_at);

        if e.write {
            let v = self.authority.commit(block);
            let line = L1Line {
                state: L1State::Owner { exclusive: true, dirty: true },
                sharers: 0,
                version: v,
            };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
            if fill.ownership && fill.supplier == Supplier::OwnerL1 {
                // Wait for the home's Change_Owner ack before moving the
                // ownership again.
                if !self.co_ack_early[tile].remove(&block) {
                    self.co_pending[tile].insert(block);
                    self.l1_queues[tile].set_busy(block);
                }
            }
        } else if fill.ownership {
            let line = L1Line {
                state: L1State::Owner { exclusive: fill.exclusive, dirty: fill.dirty },
                sharers: fill.sharers & !bit(tile),
                version: fill.version,
            };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
        } else if !stale {
            let hint = e.fill_from.map(|n| n.tile()).filter(|&t| t != tile);
            let line =
                L1Line { state: L1State::Sharer { hint }, sharers: 0, version: fill.version };
            self.install_l1(ctx, tile, block, line);
            self.stats.l1_data_write.inc();
        }
        // Home-supplied grants run under a busy flag at the home bank;
        // the Unblock releases it and commits the L2C$ owner pointer.
        if matches!(fill.supplier, Supplier::HomeL2 | Supplier::Memory) {
            ctx.send(
                Msg {
                    kind: MsgKind::Unblock { became_owner: true },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                0,
            );
        }
        ctx.complete(tile, block, lat.l1_data);
        if !self.co_pending[tile].contains(&block) {
            for m in self.l1_queues[tile].release(block) {
                ctx.replay(m);
            }
        }
    }

    fn classify(&self, e: &MshrEntry, fill: &DataInfo) -> MissClass {
        match (e.predicted, fill.supplier) {
            (_, Supplier::Memory) => MissClass::Memory,
            (Some(p), Supplier::OwnerL1) if e.fill_from == Some(Node::L1(p)) => {
                MissClass::PredictedOwnerHit
            }
            (Some(_), _) => MissClass::PredictionFailed,
            (None, Supplier::HomeL2) => MissClass::UnpredictedHome,
            (None, _) => MissClass::UnpredictedForwarded,
        }
    }

    fn install_l1(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        // A fresh copy supersedes any stale hand-off note for the block.
        self.tombstones[tile].remove(&block);
        if let Some(existing) = self.l1[tile].get_mut(block) {
            *existing = line;
            return;
        }
        let co = &self.co_pending[tile];
        let lq = &self.l1_queues[tile];
        let (victims, _overflow) = self.l1[tile]
            .insert_filtered(block, line, |b| !co.contains(&b) && !lq.is_busy(b));
        for (vb, vline) in victims {
            self.evict_l1_line(ctx, tile, vb, vline);
        }
    }

    fn evict_l1_line(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        let lat = self.spec.lat;
        match line.state {
            L1State::Sharer { hint } => {
                // Silent data eviction; the supplier identity is retained
                // in the L1C$ for future two-hop misses (paper §IV-A2).
                if let Some(h) = hint {
                    self.stats.l1c_access.inc();
                    if let Some(p) = self.l1c[tile].get_mut(block) {
                        *p = h;
                    } else {
                        self.l1c[tile].insert(block, h);
                    }
                }
            }
            L1State::Owner { dirty, .. } => {
                self.stats.l1_repl_transactions.inc();
                if line.sharers != 0 {
                    // Pass ownership (+ data + sharing code) to a sharer.
                    let target = line.sharers.trailing_zeros() as Tile;
                    let rest = line.sharers & !bit(target);
                    self.tombstone_set(tile, block, Node::L1(target));
                    ctx.send(
                        Msg {
                            kind: MsgKind::OwnershipTransfer {
                                sharers: rest,
                                propos: [None; MAX_AREAS],
                                dirty,
                                version: line.version,
                                remaining: rest,
                            },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L1(target),
                        },
                        lat.l1_hit(),
                    );
                } else {
                    // No sharers: ownership (and data if dirty) go home.
                    self.tombstone_set(tile, block, Node::L2(self.home(block)));
                    ctx.send(
                        Msg {
                            kind: MsgKind::OwnershipToHome {
                                dirty,
                                version: line.version,
                                propos: [None; MAX_AREAS],
                                sharers: 0,
                                former_stays_provider: false,
                            },
                            block,
                            src: Node::L1(tile),
                            dst: Node::L2(self.home(block)),
                        },
                        lat.l1_hit(),
                    );
                }
            }
        }
    }

    /// A request (predicted, home-forwarded, or chasing) arrives at an L1.
    fn l1_handle_req(&mut self, ctx: &mut Ctx, tile: Tile, msg: Msg, req: ReqInfo) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        let lat = self.spec.lat;

        // Our own request coming back. If an ownership transfer made us
        // the owner while it was roaming, it completes its MSHR here
        // (self-serve) — the single completion path guarantees a request
        // can never be served twice. Otherwise it is chasing a stale
        // owner pointer: send it home as a bounce (the home holds it
        // until the in-flight ownership update lands).
        if req.requestor == tile {
            let is_owner = matches!(
                self.l1[tile].peek(block).map(|l| &l.state),
                Some(L1State::Owner { .. })
            );
            if self.mshr[tile].contains(block) {
                if is_owner {
                    self.self_serve(ctx, tile, block);
                    return;
                }
            } else if is_owner {
                // Stale duplicate (already completed): nothing to do.
                return;
            }
            self.send_req(
                ctx,
                block,
                Node::L1(tile),
                Node::L2(self.home(block)),
                ReqInfo { forwarder: Some(tile), via_home: true, ..req },
                lat.l1_tag,
            );
            return;
        }

        let is_owner =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Owner { .. }));
        if is_owner {
            if self.l1_queues[tile].is_busy(block) {
                // Mid-upgrade or ownership not yet committed: wait.
                self.l1_queues[tile].enqueue(msg);
                return;
            }
            if req.write && self.co_pending[tile].contains(&block) {
                self.l1_queues[tile].enqueue(msg);
                return;
            }
            if req.write {
                self.serve_write_as_owner(ctx, tile, block, req);
            } else {
                // Serve the read; the requestor becomes a sharer.
                let line = self.l1[tile].get_mut(block).expect("owner");
                line.sharers |= bit(req.requestor);
                if let L1State::Owner { exclusive, .. } = &mut line.state {
                    *exclusive = false;
                }
                let version = line.version;
                self.stats.l1_data_read.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::Data(DataInfo::shared(version, Supplier::OwnerL1)),
                        block,
                        src: Node::L1(tile),
                        dst: Node::L1(req.requestor),
                    },
                    lat.l1_hit(),
                );
            }
            return;
        }

        // Not the owner. A tombstone knows where the ownership went —
        // but chasing is bounded (DiCo's deadlock-avoidance): after
        // MAX_CHASE_HOPS forwards the request falls back to the home.
        // Park first: an in-flight transaction that will make us the
        // owner outranks any (possibly stale) hand-off note.
        if let Some(e) = self.mshr[tile].get(block) {
            let ownership_incoming =
                (req.vouched && e.write) || e.fill.map(|f| f.ownership).unwrap_or(false);
            if ownership_incoming {
                self.l1_queues[tile].enqueue(msg);
                return;
            }
        }
        // Chase the hand-off note, bounded (DiCo's deadlock avoidance).
        if req.hops < MAX_CHASE_HOPS {
            if let Some(&next) = self.tombstones[tile].get(&block) {
                self.send_req(
                    ctx,
                    block,
                    Node::L1(tile),
                    next,
                    ReqInfo { forwarder: Some(tile), hops: req.hops + 1, ..req },
                    lat.l1_tag,
                );
                return;
            }
        }
        // Fall back to the home (bounce).
        self.send_req(
            ctx,
            block,
            Node::L1(tile),
            Node::L2(self.home(block)),
            ReqInfo { forwarder: Some(tile), via_home: true, ..req },
            lat.l1_tag,
        );
    }

    /// We are the stable owner and a write request arrived: move the
    /// ownership to the writer (paper Figure 4).
    fn serve_write_as_owner(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, req: ReqInfo) {
        let lat = self.spec.lat;
        let line = self.l1[tile].remove(block).expect("owner line");
        let sharers_to_inv = line.sharers & !bit(req.requestor);
        let n = sharers_to_inv.count_ones();
        self.stats.l1_data_read.inc();
        // Data + ownership to the writer.
        ctx.send(
            Msg {
                kind: MsgKind::Data(DataInfo {
                    exclusive: true,
                    ownership: true,
                    acks_sharers: n,
                    dirty: line.dirty(),
                    version: line.version,
                    supplier: Supplier::OwnerL1,
                    ..DataInfo::shared(line.version, Supplier::OwnerL1)
                }),
                block,
                src: Node::L1(tile),
                dst: Node::L1(req.requestor),
            },
            lat.l1_hit(),
        );
        // Invalidations from the old owner (it knows the sharers).
        for t in iter_bits(sharers_to_inv) {
            self.stats.invalidations.inc();
            ctx.send(
                Msg {
                    kind: MsgKind::Inv {
                        reply_to: Node::L1(req.requestor),
                        version: line.version,
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(t),
                },
                lat.l1_tag,
            );
        }
        // Register the new owner with the home.
        ctx.send(
            Msg {
                kind: MsgKind::ChangeOwner { new_owner: req.requestor },
                block,
                src: Node::L1(tile),
                dst: Node::L2(self.home(block)),
            },
            lat.l1_tag,
        );
        self.tombstone_set(tile, block, Node::L1(req.requestor));
    }

    fn l1_handle_inv(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        reply_to: Node,
        version: u64,
    ) {
        self.stats.l1_tag.inc();
        if self.l1[tile].contains(block) {
            debug_assert!(
                matches!(
                    self.l1[tile].peek(block).map(|l| &l.state),
                    Some(L1State::Sharer { .. })
                ),
                "invalidation reached an owner (tile {tile}, block {block:#x})"
            );
            self.l1[tile].remove(block);
        } else if let Some(e) = self.mshr[tile].get_mut(block) {
            if !e.write && !e.have_data {
                // A read fill may be in flight from the pre-write epoch.
                e.pending_inv = Some(e.pending_inv.map_or(version, |v| v.max(version)));
            }
        }
        // The collector of the acks is the next owner: remember it as the
        // supplier prediction (paper Figure 5).
        if let Node::L1(new_owner) = reply_to {
            self.learn(tile, block, new_owner);
        }
        ctx.send(
            Msg { kind: MsgKind::Ack, block, src: Node::L1(tile), dst: reply_to },
            self.spec.lat.l1_tag,
        );
    }

    fn l1_handle_transfer(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        msg: Msg,
        sharers: u64,
        dirty: bool,
        version: u64,
    ) {
        self.stats.l1_tag.inc();
        let block = msg.block;
        // Receiving a transfer supersedes any stale hand-off note.
        self.tombstones[tile].remove(&block);
        let lat = self.spec.lat;
        let mine = sharers & !bit(tile);
        // A tile with a miss outstanding and no line accepts the
        // ownership as a fresh line; its own roaming request completes
        // the MSHR when it returns (self-serve). Transfers never touch
        // MSHRs, so a request can never be satisfied twice.
        if !self.l1[tile].contains(block) && self.mshr[tile].contains(block) {
            let line = L1Line {
                state: L1State::Owner { exclusive: mine == 0, dirty },
                sharers: mine,
                version,
            };
            self.install_l1(ctx, tile, block, line);
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeOwner { new_owner: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            if !self.co_ack_early[tile].remove(&block) {
                self.co_pending[tile].insert(block);
            }
            return;
        }
        if self.l1[tile].contains(block) {
            // Plain sharer accepts the ownership.
            let line = self.l1[tile].get_mut(block).expect("sharer line");
            debug_assert_eq!(line.version, version, "sharer holds the current version");
            line.state = L1State::Owner { exclusive: mine == 0, dirty };
            line.sharers = mine;
            // Refresh the inherited sharers' predictions (Figure 5).
            let hint_targets: Vec<Tile> =
                if self.spec.enable_hints { iter_bits(mine).collect() } else { Vec::new() };
            for t in hint_targets {
                ctx.send(
                    Msg {
                        kind: MsgKind::Hint { supplier: tile },
                        block,
                        src: Node::L1(tile),
                        dst: Node::L1(t),
                    },
                    lat.l1_tag,
                );
            }
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeOwner { new_owner: tile },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            if !self.co_ack_early[tile].remove(&block) {
                self.co_pending[tile].insert(block);
                self.l1_queues[tile].set_busy(block);
            }
            return;
        }
        // We silently dropped our copy: pass the transfer along (paper
        // §IV-A1), or return the ownership to the home. Updating our own
        // tombstone keeps every forwarding pointer pointing forward in
        // the ownership timeline (no chasing cycles).
        if mine != 0 {
            let target = mine.trailing_zeros() as Tile;
            self.tombstone_set(tile, block, Node::L1(target));
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipTransfer {
                        sharers: mine,
                        propos: [None; MAX_AREAS],
                        dirty,
                        version,
                        remaining: mine & !bit(target),
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L1(target),
                },
                lat.l1_tag,
            );
        } else {
            self.tombstone_set(tile, block, Node::L2(self.home(block)));
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipToHome {
                        dirty,
                        version,
                        propos: [None; MAX_AREAS],
                        sharers: 0,
                        former_stays_provider: false,
                    },
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
        }
    }

    fn l1_handle_recall(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        self.stats.l1_tag.inc();
        let lat = self.spec.lat;
        let is_owner =
            matches!(self.l1[tile].peek(block).map(|l| &l.state), Some(L1State::Owner { .. }));
        if !is_owner {
            // Ownership may be on its way to us (the home learned about
            // it through our Change_Owner before our data arrived): park
            // the recall; the completion replay honors it.
            if let Some(e) = self.mshr[tile].get(block) {
                if e.write || e.fill.map(|f| f.ownership).unwrap_or(false) {
                    let home = self.home(block);
                    self.l1_queues[tile].enqueue(Msg {
                        kind: MsgKind::OwnershipRecall,
                        block,
                        src: Node::L2(home),
                        dst: Node::L1(tile),
                    });
                    return;
                }
            }
            ctx.send(
                Msg {
                    kind: MsgKind::RecallFailed,
                    block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(block)),
                },
                lat.l1_tag,
            );
            return;
        }
        if self.l1_queues[tile].is_busy(block) || self.co_pending[tile].contains(&block) {
            // Owner but unstable: retry once we settle.
            let home = self.home(block);
            self.l1_queues[tile].enqueue(Msg {
                kind: MsgKind::OwnershipRecall,
                block,
                src: Node::L2(home),
                dst: Node::L1(tile),
            });
            return;
        }
        let line = self.l1[tile].get_mut(block).expect("owner");
        let (dirty, version, sharers) = (line.dirty(), line.version, line.sharers);
        // The former owner keeps a shared copy.
        line.state = L1State::Sharer { hint: None };
        line.sharers = 0;
        self.stats.l1_data_read.inc();
        ctx.send(
            Msg {
                kind: MsgKind::OwnershipToHome {
                    dirty,
                    version,
                    propos: [None; MAX_AREAS],
                    sharers: sharers | bit(tile),
                    former_stays_provider: false,
                },
                block,
                src: Node::L1(tile),
                dst: Node::L2(self.home(block)),
            },
            lat.l1_hit(),
        );
    }

    // -------------------------------------------------------- home side

    fn l2c_insert(&mut self, ctx: &mut Ctx, home: Tile, block: Block, owner: Tile) {
        self.stats.l2c_access.inc();
        if let Some(o) = self.l2c[home].get_mut(block) {
            *o = owner;
            return;
        }
        let hq = &self.home_queues[home];
        let (victims, _overflow) =
            self.l2c[home].insert_filtered(block, owner, |b| !hq.is_busy(b));
        for (vb, vo) in victims {
            // Recall the victim's ownership into the home (paper §IV-A1).
            self.home_queues[home].set_busy(vb);
            self.tx[home].insert(vb, HomeTx::Recall);
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipRecall,
                    block: vb,
                    src: Node::L2(home),
                    dst: Node::L1(vo),
                },
                self.spec.lat.l2_tag,
            );
        }
    }

    fn l2_insert(&mut self, ctx: &mut Ctx, home: Tile, block: Block, entry: L2Entry) {
        self.stats.l2_data_write.inc();
        let hq = &self.home_queues[home];
        let (victims, _overflow) =
            self.l2[home].insert_filtered(block, entry, |b| !hq.is_busy(b));
        for (vb, ve) in victims {
            self.evict_l2_owner_entry(ctx, home, vb, ve);
        }
    }

    /// Evicting an L2-owner line invalidates every sharer (the home acts
    /// as both owner and requestor, paper §IV-A).
    fn evict_l2_owner_entry(&mut self, ctx: &mut Ctx, home: Tile, block: Block, e: L2Entry) {
        self.stats.l2_evictions.inc();
        let n = e.sharers.count_ones();
        if n == 0 {
            if e.dirty {
                self.stats.mem_writes.inc();
                self.mem.write_back(block, e.version);
                self.pending_mem_writes.push((home, block));
            }
            return;
        }
        self.home_queues[home].set_busy(block);
        self.tx[home]
            .insert(block, HomeTx::EvictL2 { acks_left: n, dirty: e.dirty, version: e.version });
        for t in iter_bits(e.sharers) {
            self.stats.invalidations.inc();
            ctx.send(
                Msg {
                    kind: MsgKind::Inv { reply_to: Node::L2(home), version: e.version },
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(t),
                },
                self.spec.lat.l2_tag,
            );
        }
    }

    fn home_dispatch(&mut self, ctx: &mut Ctx, home: Tile, msg: Msg, req: ReqInfo) {
        let block = msg.block;
        let lat = self.spec.lat;
        self.stats.l2_tag.inc();
        self.stats.l2c_access.inc();
        self.stats.home_lookups.inc();
        if self.l2c[home].contains(block) {
            self.stats.home_hits.inc();
        }
        if let Some(&owner) = self.l2c[home].peek(block) {
            // A *vouched* request that bounced off the very cache our
            // pointer still names proves that cache lost the ownership
            // after we vouched for it — its loss notification (a
            // ChangeOwner or writeback) is guaranteed to be in flight,
            // so the request is held until it lands. Anything else is
            // (re-)forwarded with our vouch: the destination parks it if
            // its ownership is still en route.
            if req.vouched && req.forwarder == Some(owner) {
                self.bounce_hold[home]
                    .entry(block)
                    .or_default()
                    .push_back(Msg { kind: MsgKind::Req(req), ..msg });
                return;
            }
            self.send_req(
                ctx,
                block,
                Node::L2(home),
                Node::L1(owner),
                ReqInfo { via_home: true, vouched: true, hops: 0, ..req },
                lat.l2_tag,
            );
            return;
        }
        if self.l2[home].contains(block) {
            // The home is the owner: grant the ownership to the requestor
            // (ownership lives in L1s whenever possible in DiCo). The
            // grant runs under a busy flag released by the requestor's
            // Unblock, which also commits the L2C$ pointer.
            let e = self.l2[home].remove(block).expect("contains");
            self.stats.l2_data_read.inc();
            let others = e.sharers & !bit(req.requestor);
            let acks = if req.write { others.count_ones() } else { 0 };
            if req.write {
                for t in iter_bits(others) {
                    self.stats.invalidations.inc();
                    ctx.send(
                        Msg {
                            kind: MsgKind::Inv {
                                reply_to: Node::L1(req.requestor),
                                version: e.version,
                            },
                            block,
                            src: Node::L2(home),
                            dst: Node::L1(t),
                        },
                        lat.l2_tag,
                    );
                }
            }
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo {
                        exclusive: others == 0,
                        ownership: true,
                        sharers: if req.write { 0 } else { others },
                        acks_sharers: acks,
                        dirty: e.dirty,
                        version: e.version,
                        supplier: Supplier::HomeL2,
                        ..DataInfo::shared(e.version, Supplier::HomeL2)
                    }),
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(req.requestor),
                },
                lat.l2_access(),
            );
            self.home_queues[home].set_busy(block);
            self.tx[home].insert(block, HomeTx::Granting { to: req.requestor });
            return;
        }
        // Uncached: fetch from memory.
        self.home_queues[home].set_busy(block);
        self.tx[home].insert(block, HomeTx::MemFetch { req: msg });
        self.stats.mem_reads.inc();
        ctx.mem_read(block, home, lat.l2_tag);
    }

    fn home_handle_unblock(&mut self, ctx: &mut Ctx, home: Tile, block: Block, src: Tile) {
        if let Some(HomeTx::Granting { to }) = self.tx[home].get(&block) {
            debug_assert_eq!(*to, src, "Unblock from a non-grantee");
            self.tx[home].remove(&block);
            self.l2c_insert(ctx, home, block, src);
            for mut m in self.home_queues[home].release(block) {
                if let MsgKind::Req(ref mut r) = m.kind {
                    // Any bounce marker predates this release and is
                    // stale: let the request re-evaluate freshly.
                    r.via_home = false;
                    r.forwarder = None;
                    r.vouched = false;
                }
                ctx.replay(m);
            }
            self.release_bounces(ctx, home, block);
        }
        // Unblocks for superseded grants cannot occur: the grantee's
        // Unblock travels the same (src, dst) FIFO path as any later
        // message it could send about this block.
    }

    fn home_handle_memdata(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        let Some(HomeTx::MemFetch { req }) = self.tx[home].remove(&block) else {
            panic!("MemData without MemFetch");
        };
        let MsgKind::Req(req) = req.kind else { unreachable!() };
        let version = self.mem.version(block);
        // Data goes straight to the requestor, which becomes the
        // exclusive owner; the home records it in the L2C$ (no L2 copy —
        // DiCo keeps one copy, in the owner L1).
        ctx.send(
            Msg {
                kind: MsgKind::Data(DataInfo {
                    exclusive: true,
                    ownership: true,
                    dirty: false,
                    version,
                    supplier: Supplier::Memory,
                    ..DataInfo::shared(version, Supplier::Memory)
                }),
                block,
                src: Node::L2(home),
                dst: Node::L1(req.requestor),
            },
            self.spec.lat.l2_access(),
        );
        // Stay busy until the requestor's Unblock commits the pointer.
        self.tx[home].insert(block, HomeTx::Granting { to: req.requestor });
    }

    fn home_handle_change_owner(
        &mut self,
        ctx: &mut Ctx,
        home: Tile,
        block: Block,
        new_owner: Tile,
    ) {
        self.stats.l2c_access.inc();
        let lat = self.spec.lat;
        if let Some(HomeTx::Recall) = self.tx[home].get(&block) {
            // The ownership moved while we were recalling it: ack the new
            // owner and chase it with another recall.
            ctx.send(
                Msg {
                    kind: MsgKind::ChangeOwnerAck,
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(new_owner),
                },
                lat.l2_tag,
            );
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipRecall,
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(new_owner),
                },
                lat.l2_tag,
            );
            self.release_bounces(ctx, home, block);
            return;
        }
        if let Some(o) = self.l2c[home].get_mut(block) {
            *o = new_owner;
        } else {
            self.l2c_insert(ctx, home, block, new_owner);
        }
        ctx.send(
            Msg {
                kind: MsgKind::ChangeOwnerAck,
                block,
                src: Node::L2(home),
                dst: Node::L1(new_owner),
            },
            lat.l2_tag,
        );
        self.release_bounces(ctx, home, block);
    }

    fn release_bounces(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        if let Some(q) = self.bounce_hold[home].remove(&block) {
            for mut m in q {
                // Re-dispatch from scratch (clear the via_home marker so
                // the request may be forwarded again).
                if let MsgKind::Req(ref mut r) = m.kind {
                    r.via_home = false;
                    r.forwarder = None;
                    r.vouched = false;
                }
                ctx.replay(m);
            }
        }
    }

    fn home_handle_wb(
        &mut self,
        ctx: &mut Ctx,
        home: Tile,
        block: Block,
        dirty: bool,
        version: u64,
        sharers: u64,
    ) {
        self.stats.l2_tag.inc();
        self.stats.l2c_access.inc();
        // The ownership is home now: drop the L2C$ pointer.
        self.l2c[home].remove(block);
        if let Some(HomeTx::Recall) = self.tx[home].get(&block) {
            self.tx[home].remove(&block);
            self.l2_insert(ctx, home, block, L2Entry { dirty, version, sharers });
            for mut m in self.home_queues[home].release(block) {
                if let MsgKind::Req(ref mut r) = m.kind {
                    // Any bounce marker predates this release and is
                    // stale: let the request re-evaluate freshly.
                    r.via_home = false;
                    r.forwarder = None;
                    r.vouched = false;
                }
                ctx.replay(m);
            }
        } else {
            self.l2_insert(ctx, home, block, L2Entry { dirty, version, sharers });
        }
        self.release_bounces(ctx, home, block);
    }

    fn drain_deferred(&mut self, ctx: &mut Ctx) {
        let writes = std::mem::take(&mut self.pending_mem_writes);
        for (home, block) in writes {
            ctx.mem_write(block, home, 0);
        }
    }
}

impl CoherenceProtocol for DiCo {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::DiCo
    }

    fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    fn core_access(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        write: bool,
    ) -> Result<AccessOutcome, ProtoError> {
        self.stats.accesses.inc();
        self.stats.l1_tag.inc();
        if self.mshr[tile].contains(block) {
            return Ok(AccessOutcome::Blocked { reason: BlockReason::MshrConflict });
        }
        if self.l1_queues[tile].is_busy(block) {
            return Ok(AccessOutcome::Blocked { reason: BlockReason::BusyBlock });
        }
        let lat = self.spec.lat;
        enum Action {
            HitRead,
            HitWrite,
            Upgrade,
            Miss,
        }
        let action = match self.l1[tile].peek(block).map(|l| &l.state) {
            Some(L1State::Sharer { .. }) if !write => Action::HitRead,
            Some(L1State::Sharer { .. }) => Action::Miss,
            Some(L1State::Owner { .. }) if !write => Action::HitRead,
            Some(L1State::Owner { exclusive: true, .. }) => Action::HitWrite,
            Some(L1State::Owner { exclusive: false, .. }) => Action::Upgrade,
            None => Action::Miss,
        };
        let outcome = match action {
            Action::HitRead => {
                self.l1[tile].touch(block);
                self.stats.l1_data_read.inc();
                self.stats.l1_hits.inc();
                AccessOutcome::Hit { latency: lat.l1_hit() }
            }
            Action::HitWrite => {
                let v = self.authority.commit(block);
                let line = self.l1[tile].get_mut(block).expect("hit");
                line.version = v;
                line.state = L1State::Owner { exclusive: true, dirty: true };
                self.stats.l1_data_write.inc();
                self.stats.l1_hits.inc();
                AccessOutcome::Hit { latency: lat.l1_hit() }
            }
            Action::Upgrade => {
                self.start_miss(ctx, tile, block, true, true);
                self.drain_deferred(ctx);
                AccessOutcome::Miss
            }
            Action::Miss => {
                self.start_miss(ctx, tile, block, write, false);
                self.drain_deferred(ctx);
                AccessOutcome::Miss
            }
        };
        Ok(outcome)
    }

    fn handle(&mut self, ctx: &mut Ctx, msg: Msg) -> Result<(), ProtoError> {
        match (msg.dst, msg.kind) {
            // ------------------------------------------------ L1 side
            (Node::L1(tile), MsgKind::Req(req)) => self.l1_handle_req(ctx, tile, msg, req),
            (Node::L1(tile), MsgKind::Data(d)) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCo,
                        msg.dst,
                        msg.block,
                        format!("data fill without MSHR entry ({:?} from {:?})", d.supplier, msg.src),
                    ));
                };
                e.have_data = true;
                e.acks_needed += d.acks_sharers as i64;
                e.fill = Some(d);
                e.fill_from = Some(msg.src);
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Ack) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::DiCo,
                        msg.dst,
                        msg.block,
                        format!("invalidation ack without MSHR entry (from {:?})", msg.src),
                    ));
                };
                e.acks_needed -= 1;
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Inv { reply_to, version }) => {
                self.l1_handle_inv(ctx, tile, msg.block, reply_to, version);
            }
            (Node::L1(tile), MsgKind::OwnershipTransfer { sharers, dirty, version, .. }) => {
                self.l1_handle_transfer(ctx, tile, msg, sharers, dirty, version);
            }
            (Node::L1(tile), MsgKind::OwnershipRecall) => {
                self.l1_handle_recall(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Hint { supplier }) => {
                self.stats.l1_tag.inc();
                self.learn(tile, msg.block, supplier);
            }
            (Node::L1(tile), MsgKind::ChangeOwnerAck) => {
                if self.co_pending[tile].remove(&msg.block) {
                    for m in self.l1_queues[tile].release(msg.block) {
                        ctx.replay(m);
                    }
                } else {
                    self.co_ack_early[tile].insert(msg.block);
                }
            }
            // ---------------------------------------------- home side
            (Node::L2(home), MsgKind::Req(req)) => {
                if self.home_queues[home].is_busy(msg.block) {
                    self.home_queues[home].enqueue(msg);
                } else {
                    self.home_dispatch(ctx, home, msg, req);
                }
            }
            (Node::L2(home), MsgKind::MemData) => self.home_handle_memdata(ctx, home, msg.block),
            (Node::L2(home), MsgKind::Unblock { .. }) => {
                self.home_handle_unblock(ctx, home, msg.block, msg.src.tile());
            }
            (Node::L2(home), MsgKind::ChangeOwner { new_owner }) => {
                self.home_handle_change_owner(ctx, home, msg.block, new_owner);
            }
            (Node::L2(home), MsgKind::OwnershipToHome { dirty, version, sharers, .. }) => {
                self.home_handle_wb(ctx, home, msg.block, dirty, version, sharers);
            }
            (Node::L2(home), MsgKind::RecallFailed) => {
                // Either the ownership is moving (the pending ChangeOwner
                // or OwnershipToHome will restart or finish the recall),
                // or the recall already completed through a replacement
                // writeback that crossed this reply — ignore in both
                // cases.
                let _ = home;
            }
            (Node::L2(home), MsgKind::Ack) => {
                let finish = {
                    let Some(HomeTx::EvictL2 { acks_left, .. }) =
                        self.tx[home].get_mut(&msg.block)
                    else {
                        return Err(ProtoError::new(
                            ProtocolKind::DiCo,
                            msg.dst,
                            msg.block,
                            format!("stray invalidation ack at home (no EvictL2 transaction; from {:?})", msg.src),
                        ));
                    };
                    *acks_left -= 1;
                    *acks_left == 0
                };
                if finish {
                    let Some(HomeTx::EvictL2 { dirty, version, .. }) =
                        self.tx[home].remove(&msg.block)
                    else {
                        unreachable!()
                    };
                    if dirty {
                        self.stats.mem_writes.inc();
                        self.mem.write_back(msg.block, version);
                        ctx.mem_write(msg.block, home, 0);
                    }
                    for mut m in self.home_queues[home].release(msg.block) {
                        if let MsgKind::Req(ref mut r) = m.kind {
                            r.via_home = false;
                            r.forwarder = None;
                            r.vouched = false;
                        }
                        ctx.replay(m);
                    }
                }
            }
            _ => return Err(ProtoError::unexpected(ProtocolKind::DiCo, &msg)),
        }
        self.drain_deferred(ctx);
        Ok(())
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut ProtoStats {
        &mut self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ProtoStats::default();
    }

    fn quiescent(&self) -> bool {
        self.mshr.iter().all(|m| m.is_empty())
            && self.l1_queues.iter().all(|q| q.idle())
            && self.home_queues.iter().all(|q| q.idle())
            && self.tx.iter().all(|t| t.is_empty())
            && self.co_pending.iter().all(|s| s.is_empty())
            && self.bounce_hold.iter().all(|b| b.values().all(|q| q.is_empty()))
    }

    fn clone_box(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }

    crate::common::snap_state_methods!(
        stats,
        authority,
        mem,
        l1,
        l1c,
        mshr,
        l1_queues,
        co_pending,
        co_ack_early,
        tombstones,
        tombstone_fifo,
        l2,
        l2c,
        home_queues,
        tx,
        bounce_hold,
        pending_mem_writes,
    );

    fn occupancy(&self) -> Occupancy {
        let (l1_lines, l1_capacity) = occupancy_of(&self.l1);
        let (l2_lines, l2_capacity) = occupancy_of(&self.l2);
        let (c1, cap1) = occupancy_of(&self.l1c);
        let (c2, cap2) = occupancy_of(&self.l2c);
        Occupancy {
            l1_lines,
            l1_capacity,
            l2_lines,
            l2_capacity,
            aux_lines: c1 + c2,
            aux_capacity: cap1 + cap2,
        }
    }

    fn pending_summary(&self) -> String {
        let mut out = String::new();
        for t in 0..self.spec.tiles() {
            for (b, e) in self.mshr[t].iter() {
                out += &format!(
                    "tile {t} MSHR block {b:#x}: write={} have_data={} acks={} upgrade={}\n",
                    e.write, e.have_data, e.acks_needed, e.upgrade
                );
            }
            if !self.l1_queues[t].idle() {
                out += &format!("tile {t} l1_queue busy: {} blocks\n", self.l1_queues[t].busy_count());
            }
            let mut co: Vec<Block> = self.co_pending[t].iter().copied().collect();
            co.sort_unstable();
            for b in co {
                out += &format!("tile {t} co_pending block {b:#x}\n");
            }
            for (b, n) in self.l1_queues[t].pending_counts() {
                out += &format!(
                    "tile {t} l1_queue block {b:#x}: {n} msgs (busy={})\n",
                    self.l1_queues[t].is_busy(b)
                );
            }
            let mut txs: Vec<(Block, &HomeTx)> =
                self.tx[t].iter().map(|(b, x)| (*b, x)).collect();
            txs.sort_unstable_by_key(|&(b, _)| b);
            for (b, tx) in txs {
                out += &format!("home {t} tx block {b:#x}: {tx:?}\n");
            }
            if !self.home_queues[t].idle() {
                out += &format!("home {t} queue busy: {} blocks\n", self.home_queues[t].busy_count());
            }
            let mut holds: Vec<(Block, usize)> = self.bounce_hold[t]
                .iter()
                .filter(|(_, q)| !q.is_empty())
                .map(|(b, q)| (*b, q.len()))
                .collect();
            holds.sort_unstable();
            for (b, n) in holds {
                out += &format!("home {t} bounce_hold block {b:#x}: {n} msgs\n");
            }
        }
        out
    }

    fn snapshot(&self) -> ChipSnapshot {
        let mut snap = ChipSnapshot::new(self.spec.tiles());
        for (t, l1) in self.l1.iter().enumerate() {
            for (block, line) in l1.iter() {
                let state = match line.state {
                    L1State::Sharer { .. } => CopyState::Shared,
                    L1State::Owner { exclusive, dirty } => CopyState::Owner { exclusive, dirty },
                };
                snap.l1[t].insert(block, CopyView { state, version: line.version });
            }
        }
        for (home, bank) in self.l2.iter().enumerate() {
            for (block, e) in bank.iter() {
                snap.l2.insert(
                    block,
                    L2View {
                        has_data: true,
                        version: e.version,
                        dirty: e.dirty,
                        owner_in_l1: None,
                    },
                );
            }
            for (block, &o) in self.l2c[home].iter() {
                snap.l2.entry(block).or_insert(L2View {
                    has_data: false,
                    version: 0,
                    dirty: false,
                    owner_in_l1: Some(o),
                });
            }
        }
        for (b, v) in self.authority.iter() {
            snap.authority.insert(*b, *v);
            snap.memory.insert(*b, self.mem.version(*b));
        }
        // Coverage: the owner's full-map sharing code (plus itself) must
        // name every copy; the home's sharing code covers L2-owned
        // blocks.
        for (t, l1) in self.l1.iter().enumerate() {
            for (block, line) in l1.iter() {
                if matches!(line.state, L1State::Owner { .. }) {
                    snap.recorded.insert(block, line.sharers | bit(t));
                }
            }
        }
        for bank in &self.l2 {
            for (block, e) in bank.iter() {
                snap.recorded.entry(block).and_modify(|v| *v |= e.sharers).or_insert(e.sharers);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{random_stress, Harness};

    fn harness() -> Harness<DiCo> {
        Harness::new(DiCo::new(ChipSpec::small()))
    }

    #[test]
    fn first_read_owner_from_memory() {
        let mut h = harness();
        h.push_access(0, 100, false);
        h.run_checked(1000);
        let snap = h.proto.snapshot();
        assert!(matches!(
            snap.l1[0].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: false }
        ));
        assert_eq!(h.proto.stats().class_count(MissClass::Memory), 1);
    }

    #[test]
    fn second_reader_becomes_sharer_via_home() {
        let mut h = harness();
        h.push_access(0, 100, false);
        h.run_checked(1000);
        h.push_access(1, 100, false);
        h.run_checked(2000);
        let snap = h.proto.snapshot();
        assert!(matches!(snap.l1[1].get(&100).unwrap().state, CopyState::Shared));
        // No prediction available -> through the home -> forwarded.
        assert_eq!(h.proto.stats().class_count(MissClass::UnpredictedForwarded), 1);
    }

    #[test]
    fn prediction_resolves_two_hop() {
        let mut h = harness();
        h.push_access(0, 100, true); // tile 0 owns
        h.run_checked(1000);
        h.push_access(1, 100, false); // sharer, learns the owner
        h.run_checked(2000);
        // Tile 1 writes: its line hint points at tile 0.
        h.push_access(1, 100, true);
        h.run_checked(3000);
        assert_eq!(h.proto.stats().class_count(MissClass::PredictedOwnerHit), 1);
        let snap = h.proto.snapshot();
        assert!(matches!(
            snap.l1[1].get(&100).unwrap().state,
            CopyState::Owner { dirty: true, .. }
        ));
        assert!(!snap.l1[0].contains_key(&100), "old owner invalidated itself");
    }

    #[test]
    fn upgrade_in_place_invalidates_sharers() {
        let mut h = harness();
        h.push_access(0, 100, true);
        h.run_checked(1000);
        h.push_access(1, 100, false);
        h.push_access(2, 100, false);
        h.run_checked(3000);
        // Tile 0 is owner with sharers {1, 2}; writes again in place.
        h.push_access(0, 100, true);
        h.run_checked(4000);
        let snap = h.proto.snapshot();
        assert!(!snap.l1[1].contains_key(&100));
        assert!(!snap.l1[2].contains_key(&100));
        assert!(matches!(
            snap.l1[0].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: true }
        ));
        assert_eq!(*snap.authority.get(&100).unwrap(), 2);
    }

    #[test]
    fn write_by_sharer_moves_ownership() {
        let mut h = harness();
        h.push_access(0, 100, true);
        h.run_checked(1000);
        h.push_access(1, 100, false);
        h.run_checked(2000);
        h.push_access(1, 100, true);
        h.run_checked(3000);
        let snap = h.proto.snapshot();
        assert!(matches!(
            snap.l1[1].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: true }
        ));
        assert_eq!(*snap.authority.get(&100).unwrap(), 2);
    }

    #[test]
    fn ping_pong_writes_serialize() {
        let mut h = harness();
        for i in 0..12 {
            h.push_access(i % 3, 64, true);
        }
        h.run_checked(40_000);
        assert_eq!(*h.proto.snapshot().authority.get(&64).unwrap(), 12);
    }

    #[test]
    fn owner_eviction_keeps_ownership_reachable() {
        let mut h = harness();
        // Tile 0 owns block 0; tile 1 shares it.
        h.push_access(0, 0, true);
        h.run_checked(1000);
        h.push_access(1, 0, false);
        h.run_checked(2000);
        // Force evictions in tile 0's set 0 (small L1: 8 sets).
        h.push_access(0, 128, false);
        h.push_access(0, 256, false);
        h.run_checked(8000);
        let snap = h.proto.snapshot();
        let t1_owner =
            matches!(snap.l1[1].get(&0).map(|c| c.state), Some(CopyState::Owner { .. }));
        let home_owner = snap.l2.get(&0).map(|v| v.has_data).unwrap_or(false);
        assert!(t1_owner || home_owner, "ownership lost on eviction");
    }

    #[test]
    fn stress_read_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xa1, 60, 40, 0.1);
    }

    #[test]
    fn stress_write_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xa2, 60, 24, 0.6);
    }

    #[test]
    fn stress_high_contention() {
        let mut h = harness();
        random_stress(&mut h, 0xa3, 50, 4, 0.5);
    }

    #[test]
    fn stress_tiny_chip_capacity_pressure() {
        let mut h = Harness::new(DiCo::new(ChipSpec::tiny()));
        random_stress(&mut h, 0xa4, 80, 64, 0.3);
    }

    #[test]
    fn stress_many_seeds() {
        for seed in 0..6 {
            let mut h = harness();
            random_stress(&mut h, 0xb000 + seed, 30, 16, 0.4);
        }
    }
}
