#![warn(missing_docs)]

//! # cmpsim-protocols
//!
//! The four cache-coherence protocols evaluated by the paper, implemented
//! over the storage substrates of `cmpsim-cache`:
//!
//! * [`directory`] — the highly-optimized flat directory baseline:
//!   full-map bit-vectors at the home L2 bank, an NCID-style directory
//!   cache for blocks living only in L1s, and home-serialized (blocking)
//!   transactions.
//! * [`dico`] — Direct Coherence: data, ownership and the sharing code
//!   live together in the owner L1; an L1C$ predicts the supplier so most
//!   misses resolve in two hops; the home's L2C$ tracks the exact owner.
//! * [`providers`] — **DiCo-Providers** (paper §III-A/§IV-A): the chip is
//!   statically divided into areas; the owner tracks one provider per
//!   area plus the sharers of its own area; providers track the sharers
//!   of their areas and serve in-area reads, shortening misses to
//!   deduplicated (inter-VM shared) data.
//! * [`arin`] — **DiCo-Arin** (paper §III-B/§IV-B): blocks confined to
//!   one area behave as DiCo; the first remote-area read dissolves
//!   ownership, parks the data at the home L2 (which stores one ProPo per
//!   area), makes every new sharer a provider, and relies on a safe
//!   three-way broadcast to invalidate shared-between-areas blocks.
//!
//! All protocols speak the unified message vocabulary of [`common`] and
//! are driven through [`common::Ctx`] by a host (the full simulator in
//! the `cmpsim` crate, or the in-crate [`harness`] used for unit and
//! stress tests). [`checker`] implements the whole-chip coherence
//! invariants (SWMR, no stale values, directory conservativeness) that
//! the test suite enforces at quiescence.
//!
//! # Example: driving a protocol through the test harness
//!
//! ```
//! use cmpsim_protocols::common::{ChipSpec, CoherenceProtocol};
//! use cmpsim_protocols::dico::DiCo;
//! use cmpsim_protocols::harness::Harness;
//!
//! let mut h = Harness::new(DiCo::new(ChipSpec::small()));
//! h.push_access(0, 42, true);  // tile 0 writes block 42
//! h.push_access(1, 42, false); // tile 1 reads it
//! h.run_checked(10_000);       // drain + coherence invariants
//! assert_eq!(h.total_completed(), 2);
//! assert_eq!(h.proto.stats().l1_misses.get(), 2);
//! ```

pub mod arin;
pub mod checker;
pub mod common;
pub mod dico;
pub mod directory;
pub mod harness;
pub mod providers;

pub use common::{
    AccessOutcome, CoherenceProtocol, Ctx, MissClass, Msg, MsgKind, Node, Occupancy, ProtoError,
    ProtoStats, ProtocolKind, Supplier,
};
