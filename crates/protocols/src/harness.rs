//! In-crate test driver for the protocols.
//!
//! The full simulator (`cmpsim` crate) drives protocols through the mesh
//! NoC with contention and real memory controllers. For unit and stress
//! tests we want something smaller: this harness delivers every message
//! with a fixed latency, synthesizes memory responses, and runs per-tile
//! scripts of accesses to completion. It is deliberately timing-naive —
//! protocol *correctness* must not depend on timing, and the randomized
//! tests shuffle delivery latencies to prove it.

use crate::checker::{self, StepChecker};
use crate::common::{
    AccessOutcome, Block, CoherenceProtocol, Ctx, Msg, MsgKind, Node, Tile,
};
use cmpsim_engine::{Cycle, EventQueue, SimRng};
use std::collections::{BTreeMap, VecDeque};

#[derive(Debug)]
enum Ev {
    Deliver(Msg),
    Retry(Tile),
}

/// Fixed-latency test driver around a protocol instance.
pub struct Harness<P: CoherenceProtocol> {
    /// The protocol under test (public for direct inspection).
    pub proto: P,
    queue: EventQueue<Ev>,
    /// Remaining scripted accesses per tile.
    scripts: Vec<VecDeque<(Block, bool)>>,
    /// Outstanding access per tile.
    outstanding: Vec<Option<(Block, bool)>>,
    /// Completed accesses per tile.
    pub completed: Vec<u64>,
    /// Per-message network latency (varied by tests).
    pub net_latency: Cycle,
    /// Memory latency.
    pub mem_latency: Cycle,
    /// Optional RNG for jittering delivery (None = deterministic fixed).
    pub jitter: Option<SimRng>,
    /// Per-(src, dst) in-order delivery floor: a dimension-ordered
    /// wormhole mesh preserves point-to-point ordering, and the
    /// protocols rely on it for (e.g.) Unblock-before-ChangeOwner.
    fifo: BTreeMap<(Node, Node), Cycle>,
    events_processed: u64,
    /// Optional per-message invariant checker (see
    /// [`enable_invariant_checker`](Self::enable_invariant_checker)).
    checker: Option<StepChecker>,
}

impl<P: CoherenceProtocol> Harness<P> {
    /// Wraps `proto`.
    pub fn new(proto: P) -> Self {
        let tiles = proto.spec().tiles();
        Self {
            proto,
            queue: EventQueue::new(),
            scripts: vec![VecDeque::new(); tiles],
            outstanding: vec![None; tiles],
            completed: vec![0; tiles],
            net_latency: 10,
            mem_latency: 100,
            jitter: None,
            fifo: BTreeMap::new(),
            events_processed: 0,
            checker: None,
        }
    }

    /// Turns on the per-message invariant checker: SWMR and the
    /// forwarding bound are validated after every handled message, and
    /// the full quiescent checks whenever the chip drains. Slows the run
    /// down (a whole-chip snapshot per message) but pins down *when* an
    /// invariant first breaks instead of discovering it at the end.
    pub fn enable_invariant_checker(&mut self) {
        self.checker = Some(StepChecker::new());
    }

    /// Appends an access to a tile's script.
    pub fn push_access(&mut self, tile: Tile, block: Block, write: bool) {
        self.scripts[tile].push_back((block, write));
    }

    fn lat(&mut self, base: Cycle) -> Cycle {
        match &mut self.jitter {
            Some(rng) => base + rng.gen_range(base.max(1)),
            None => base,
        }
    }

    /// Applies one `Ctx` worth of protocol output.
    fn apply_ctx(&mut self, now: Cycle, ctx: Ctx) {
        for out in ctx.sends {
            let mut at = now + out.delay + self.lat(self.net_latency);
            let key = (out.msg.src, out.msg.dst);
            if let Some(&floor) = self.fifo.get(&key) {
                at = at.max(floor);
            }
            self.fifo.insert(key, at);
            self.queue.push(at, Ev::Deliver(out.msg));
        }
        for b in ctx.bcasts {
            for t in 0..self.proto.spec().tiles() {
                if Some(t) == b.exclude {
                    continue;
                }
                let at = now + b.delay + self.lat(self.net_latency);
                self.queue.push(
                    at,
                    Ev::Deliver(Msg { kind: b.kind, block: b.block, src: b.src, dst: Node::L1(t) }),
                );
            }
        }
        for m in ctx.replays {
            // Same-cycle replay; FIFO order preserves fairness.
            self.queue.push(now, Ev::Deliver(m));
        }
        for op in ctx.mem_ops {
            if !op.is_write {
                let at = now + op.delay + self.lat(self.mem_latency);
                self.queue.push(
                    at,
                    Ev::Deliver(Msg {
                        kind: MsgKind::MemData,
                        block: op.block,
                        src: Node::L2(op.home),
                        dst: Node::L2(op.home),
                    }),
                );
            }
            // Writebacks are fire-and-forget; the protocol updated its
            // memory image when it issued the op.
        }
        for c in ctx.completions {
            let tile = c.tile;
            assert!(
                self.outstanding[tile].is_some(),
                "completion for tile {tile} with no outstanding access"
            );
            self.outstanding[tile] = None;
            self.completed[tile] += 1;
            // Issue the tile's next scripted access.
            self.queue.push(now + c.delay + 1, Ev::Retry(tile));
        }
    }

    fn try_issue(&mut self, now: Cycle, tile: Tile) {
        if self.outstanding[tile].is_some() {
            return;
        }
        let Some(&(block, write)) = self.scripts[tile].front() else {
            return;
        };
        let mut ctx = Ctx::at(now);
        if let Some(chk) = &mut self.checker {
            chk.record_access(now, tile, block, write);
        }
        let outcome = self
            .proto
            .core_access(&mut ctx, tile, block, write)
            .unwrap_or_else(|e| panic!("{e}\n{}", self.proto.pending_summary()));
        match outcome {
            AccessOutcome::Hit { .. } => {
                self.scripts[tile].pop_front();
                self.completed[tile] += 1;
                self.apply_ctx(now, ctx);
                // Immediately try the next access.
                self.queue.push(now + 1, Ev::Retry(tile));
            }
            AccessOutcome::Miss => {
                self.scripts[tile].pop_front();
                self.outstanding[tile] = Some((block, write));
                self.apply_ctx(now, ctx);
            }
            AccessOutcome::Blocked { .. } => {
                self.apply_ctx(now, ctx);
                self.queue.push(now + 7, Ev::Retry(tile));
            }
        }
    }

    /// Runs every scripted access to completion. Panics (with context)
    /// if the system fails to drain within `max_events`.
    pub fn run(&mut self, max_events: u64) {
        // Kick every tile (the clock may have advanced in a prior run).
        let t0 = self.queue.now();
        for t in 0..self.proto.spec().tiles() {
            self.queue.push(t0, Ev::Retry(t));
        }
        // Debug knobs, read once per run (a malformed value warns once
        // instead of once per delivered message).
        let trace_tail = cmpsim_engine::env::flag(cmpsim_engine::env::TRACE);
        let trace_block: Option<u64> = cmpsim_engine::env::parsed_or_warn(
            cmpsim_engine::env::TRACE_BLOCK,
            "a block address (u64)",
        );
        while let Some((now, ev)) = self.queue.pop() {
            self.events_processed += 1;
            assert!(
                self.events_processed <= max_events,
                "harness did not drain after {max_events} events \
                 (deadlock or livelock?); outstanding: {:?}\n{}",
                self.outstanding
                    .iter()
                    .enumerate()
                    .filter(|(_, o)| o.is_some())
                    .collect::<Vec<_>>(),
                self.proto.pending_summary()
            );
            match ev {
                Ev::Deliver(msg) => {
                    if trace_tail && self.events_processed > max_events.saturating_sub(200) {
                        cmpsim_engine::debug_log::trace(now, format_args!("{msg:?}"));
                    }
                    if let Some(b) = trace_block {
                        if msg.block == b {
                            cmpsim_engine::debug_log::trace(now, format_args!("{msg:?}"));
                        }
                    }
                    let mut ctx = Ctx::at(now);
                    if let Err(e) = self.proto.handle(&mut ctx, msg) {
                        let history = self
                            .checker
                            .as_ref()
                            .map(|c| c.history_for(msg.block).join("\n"))
                            .unwrap_or_default();
                        panic!("{e}\n{}\n{history}", self.proto.pending_summary());
                    }
                    self.apply_ctx(now, ctx);
                    if let Some(chk) = &mut self.checker {
                        chk.record_message(now, &msg);
                        let snap = self.proto.snapshot();
                        // True quiescence needs an empty event queue too:
                        // fire-and-forget traffic (hints, acks, writebacks)
                        // is not tracked by the protocol's pending state.
                        let quiescent = self.queue.is_empty() && self.proto.quiescent();
                        if let Err(errors) = chk.check_step(&msg, &snap, quiescent) {
                            panic!(
                                "invariant violation at cycle {now} after {:?} -> {:?}: {:?}\n{}\nhistory of block {:#x}:\n{}",
                                msg.src,
                                msg.dst,
                                msg.kind,
                                errors.join("\n"),
                                msg.block,
                                chk.history_for(msg.block).join("\n")
                            );
                        }
                    }
                }
                Ev::Retry(tile) => self.try_issue(now, tile),
            }
        }
        // Everything scripted must have completed.
        for t in 0..self.proto.spec().tiles() {
            assert!(
                self.scripts[t].is_empty() && self.outstanding[t].is_none(),
                "tile {t} stuck: {} scripted left, outstanding {:?}\n{}",
                self.scripts[t].len(),
                self.outstanding[t],
                self.proto.pending_summary()
            );
        }
        assert!(self.proto.quiescent(), "protocol not quiescent after drain\n{}", self.proto.pending_summary());
    }

    /// Runs and then checks every coherence invariant.
    pub fn run_checked(&mut self, max_events: u64) {
        self.run(max_events);
        let snap = self.proto.snapshot();
        if let Err(errors) = checker::check(&snap) {
            panic!(
                "coherence invariants violated ({} errors):\n{}",
                errors.len(),
                errors.join("\n")
            );
        }
    }

    /// Total accesses completed across all tiles.
    pub fn total_completed(&self) -> u64 {
        self.completed.iter().sum()
    }
}

/// Generates a random access script mixing private and contended blocks,
/// pushes it into `h`, runs it, and checks invariants. The workhorse of
/// every protocol's stress tests.
pub fn random_stress<P: CoherenceProtocol>(
    h: &mut Harness<P>,
    seed: u64,
    ops_per_tile: usize,
    num_blocks: u64,
    write_frac: f64,
) {
    let mut rng = SimRng::new(seed);
    h.jitter = Some(rng.fork(0xbead));
    let tiles = h.proto.spec().tiles();
    for t in 0..tiles {
        for _ in 0..ops_per_tile {
            let block = rng.gen_range(num_blocks);
            let write = rng.gen_bool(write_frac);
            h.push_access(t, block, write);
        }
    }
    let budget = (ops_per_tile as u64 * tiles as u64 + 10) * 400;
    h.run_checked(budget);
    assert_eq!(h.total_completed(), (ops_per_tile * tiles) as u64);
}
