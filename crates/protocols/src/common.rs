//! Vocabulary shared by all four coherence protocols: chip description,
//! messages, the driver context, statistics, and small helpers
//! (per-block pending queues, write-serialization authority, memory
//! image).

use cmpsim_cache::Geometry;
use cmpsim_engine::metrics::{MetricSource, MetricsRegistry};
use cmpsim_engine::stats::{Counter, Log2Hist, Running};
use cmpsim_engine::{Cycle, FxHashMap, FxHashSet, SmallVec};
use cmpsim_virt::AreaMap;
use std::collections::{BTreeMap, VecDeque};

/// Tile index.
pub type Tile = usize;
/// Physical block address.
pub type Block = u64;
/// Maximum number of areas a simulated chip can have (analytic models in
/// `cmpsim-power` go beyond this; the cycle simulator does not need to).
pub const MAX_AREAS: usize = 16;
/// One provider pointer per area, as stored by owners (DiCo-Providers)
/// or the home L2 (DiCo-Arin).
pub type Propos = [Option<u16>; MAX_AREAS];

/// Identifies a protocol implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ProtocolKind {
    /// Flat directory with full-map sharing code and directory cache.
    Directory,
    /// Direct Coherence baseline.
    DiCo,
    /// DiCo-Providers (paper contribution 1).
    DiCoProviders,
    /// DiCo-Arin (paper contribution 2).
    DiCoArin,
}

impl ProtocolKind {
    /// All four, in the paper's reporting order.
    pub fn all() -> [ProtocolKind; 4] {
        [
            ProtocolKind::Directory,
            ProtocolKind::DiCo,
            ProtocolKind::DiCoProviders,
            ProtocolKind::DiCoArin,
        ]
    }

    /// Report name.
    pub fn name(&self) -> &'static str {
        match self {
            ProtocolKind::Directory => "Directory",
            ProtocolKind::DiCo => "DiCo",
            ProtocolKind::DiCoProviders => "DiCo-Providers",
            ProtocolKind::DiCoArin => "DiCo-Arin",
        }
    }
}

/// Cache access latencies (paper Table III).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Latencies {
    /// L1 tag array access.
    pub l1_tag: Cycle,
    /// L1 data array access.
    pub l1_data: Cycle,
    /// L2 tag array access.
    pub l2_tag: Cycle,
    /// L2 data array access.
    pub l2_data: Cycle,
}

impl Default for Latencies {
    fn default() -> Self {
        Self { l1_tag: 1, l1_data: 2, l2_tag: 2, l2_data: 3 }
    }
}

impl Latencies {
    /// L1 hit latency (tag + data).
    pub fn l1_hit(&self) -> Cycle {
        self.l1_tag + self.l1_data
    }

    /// Full L2 access latency (tag + data).
    pub fn l2_access(&self) -> Cycle {
        self.l2_tag + self.l2_data
    }
}

/// Static description of the simulated chip, shared by every protocol.
#[derive(Debug, Clone)]
pub struct ChipSpec {
    /// Area map (also fixes mesh dimensions and tile count).
    pub areas: AreaMap,
    /// L1 data cache geometry (per tile).
    pub l1: Geometry,
    /// L2 bank geometry (per tile; index skips the home-select bits).
    pub l2: Geometry,
    /// L1C$ geometry (2048 entries in the paper).
    pub aux: Geometry,
    /// Directory cache / L2C$ geometry (home-bank side: index skips the
    /// home-select bits).
    pub aux_home: Geometry,
    /// Cache latencies.
    pub lat: Latencies,
    /// Ablation: consult the L1C$ / line pointers to predict suppliers
    /// (true in the paper; false degrades every miss to the home path).
    pub enable_prediction: bool,
    /// Ablation: send the Figure-5 hint messages when ownership or
    /// providership moves.
    pub enable_hints: bool,
}

impl ChipSpec {
    /// The paper's configuration: 8x8 tiles, 4 areas, 128 KiB 4-way L1,
    /// 1 MiB 8-way L2 banks, 2048-entry auxiliary structures.
    pub fn paper() -> Self {
        Self::paper_with_areas(4)
    }

    /// The paper's chip divided into a different number of hard-wired
    /// areas (for the area-count trade-off and virtualization-density
    /// studies).
    pub fn paper_with_areas(num_areas: usize) -> Self {
        let shift = 6; // log2(64 tiles)
        Self {
            areas: AreaMap::new(8, 8, num_areas),
            l1: Geometry::from_capacity(128 * 1024, 64, 4),
            l2: Geometry::from_capacity(1024 * 1024, 64, 8).with_shift(shift),
            aux: Geometry::from_entries(2048, 4),
            aux_home: Geometry::from_entries(2048, 4).with_shift(shift),
            lat: Latencies::default(),
            enable_prediction: true,
            enable_hints: true,
        }
    }

    /// A tiny chip for protocol stress tests: 2x2 tiles, 2 areas, caches
    /// small enough that replacements and directory evictions are
    /// constantly exercised.
    pub fn tiny() -> Self {
        Self {
            areas: AreaMap::new(2, 2, 2),
            l1: Geometry::new(4, 2),
            l2: Geometry::new(8, 2).with_shift(2),
            aux: Geometry::new(4, 2),
            aux_home: Geometry::new(4, 2).with_shift(2),
            lat: Latencies::default(),
            enable_prediction: true,
            enable_hints: true,
        }
    }

    /// A 4x4-tile chip with 4 areas and small caches; the middle ground
    /// used by randomized cross-protocol tests.
    pub fn small() -> Self {
        Self {
            areas: AreaMap::new(4, 4, 4),
            l1: Geometry::new(8, 2),
            l2: Geometry::new(16, 4).with_shift(4),
            aux: Geometry::new(8, 2),
            aux_home: Geometry::new(8, 2).with_shift(4),
            lat: Latencies::default(),
            enable_prediction: true,
            enable_hints: true,
        }
    }

    /// Tile count.
    pub fn tiles(&self) -> usize {
        self.areas.tiles()
    }

    /// Number of areas.
    pub fn num_areas(&self) -> usize {
        self.areas.num_areas()
    }

    /// Home L2 bank for a block (low address bits, as in the paper).
    pub fn home_of(&self, block: Block) -> Tile {
        (block % self.tiles() as u64) as Tile
    }

    /// Area of a tile.
    pub fn area_of(&self, tile: Tile) -> usize {
        self.areas.area_of(tile)
    }
}

/// A protocol endpoint: an L1 cache or an L2 bank, in some tile.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Node {
    /// The L1 cache of a tile.
    L1(Tile),
    /// The L2 bank of a tile.
    L2(Tile),
}

impl Node {
    /// Mesh tile this endpoint lives in.
    pub fn tile(&self) -> Tile {
        match self {
            Node::L1(t) | Node::L2(t) => *t,
        }
    }
}

/// Who supplied the data for a miss — the paper's Figure 9b taxonomy
/// feeds off this plus the prediction outcome.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Supplier {
    /// An owner L1 cache.
    OwnerL1,
    /// A provider L1 cache in the requestor's area.
    ProviderL1,
    /// The home L2 bank.
    HomeL2,
    /// Off-chip memory (through the home L2).
    Memory,
}

/// A coherence request (read or write miss).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReqInfo {
    /// Tile whose L1 missed.
    pub requestor: Tile,
    /// Write (GetX) vs read (GetS).
    pub write: bool,
    /// L1 cache that forwarded this request toward the home, if any
    /// (DiCo-Arin uses it to refresh stale provider pointers).
    pub forwarder: Option<Tile>,
    /// True when the home L2 already redirected this request (suppresses
    /// a second trip through the home on the misprediction path).
    pub via_home: bool,
    /// True when the request was launched using an L1C$ prediction
    /// (cleared when re-routed through the home).
    pub predicted: bool,
    /// The home forwarded this request based on its owner pointer
    /// ("vouched"): the destination either is the owner, has the
    /// ownership en route (park the request), or has provably sent a
    /// loss notification (bounce back; the home holds until it lands).
    pub vouched: bool,
    /// L1-to-L1 forwards taken so far. DiCo's deadlock-avoidance bound:
    /// after [`MAX_CHASE_HOPS`] forwards the request is routed to the
    /// home instead of chasing possibly-stale owner pointers further.
    pub hops: u8,
}

/// Forwarding budget before a request must fall back to the home.
pub const MAX_CHASE_HOPS: u8 = 8;

/// Payload of a data response.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataInfo {
    /// Grant exclusive (no other copies exist).
    pub exclusive: bool,
    /// Transfers ownership to the requestor.
    pub ownership: bool,
    /// Requestor must install the line in provider state (DiCo-Arin
    /// shared-between-areas fills; DiCo-Providers remote reads).
    pub make_provider: bool,
    /// Sharing code transferred with ownership (bit per tile-in-area or
    /// per chip tile depending on protocol).
    pub sharers: u64,
    /// Provider pointers transferred with ownership.
    pub propos: Propos,
    /// Identity of a known supplier for the requestor's L1C$ (e.g. the
    /// in-area provider the home L2 knows about).
    pub provider_hint: Option<Tile>,
    /// Sharer invalidation acks the requestor must collect (writes).
    pub acks_sharers: u32,
    /// Provider acks (each carrying its own sharer count) to collect.
    pub acks_providers: u32,
    /// This fill answers a write to a shared-between-areas block: the
    /// requestor must run DiCo-Arin's unblock broadcast on completion.
    pub sba_write: bool,
    /// The line is dirty with respect to memory.
    pub dirty: bool,
    /// Data version (write-serialization number, for checking).
    pub version: u64,
    /// Who supplied the data.
    pub supplier: Supplier,
}

impl DataInfo {
    /// A plain shared-data response carrying `version`.
    pub fn shared(version: u64, supplier: Supplier) -> Self {
        Self {
            exclusive: false,
            ownership: false,
            make_provider: false,
            sharers: 0,
            propos: [None; MAX_AREAS],
            provider_hint: None,
            acks_sharers: 0,
            acks_providers: 0,
            sba_write: false,
            dirty: false,
            version,
            supplier,
        }
    }
}

/// Every message the four protocols exchange. Unused variants for a given
/// protocol are simply never constructed by it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MsgKind {
    /// Coherence request (GetS/GetX).
    Req(ReqInfo),
    /// Data response.
    Data(DataInfo),
    /// Invalidate a sharer; ack to `reply_to`.
    Inv {
        /// Collector of the ack (requestor L1, or home L2 for
        /// directory-eviction invalidations).
        reply_to: Node,
        /// Version of the data being invalidated. A cache with a read
        /// fill in flight uses it to discard a stale fill that was
        /// serialized before this invalidation (the DiCo family resolves
        /// reads without blocking the home, so a fill and an
        /// invalidation for the previous epoch can cross on the wire).
        version: u64,
    },
    /// Invalidate a provider and, transitively, the sharers of its area;
    /// the provider replies to `reply_to` with an `AckCount`.
    InvProvider {
        /// Collector of the acks.
        reply_to: Node,
    },
    /// Silent invalidation: kills a copy (cascading through a provider's
    /// tracked sharers) without any acknowledgement. Used when a
    /// provider pointer is repaired after a message crossing — the
    /// displaced provider's copy is current but about to become
    /// untracked, so it is simply destroyed (equivalent to forcing its
    /// eviction).
    InvSilent,
    /// Sharer invalidation acknowledgement.
    Ack,
    /// Provider acknowledgement carrying how many sharer acks its area
    /// will additionally produce.
    AckCount {
        /// Number of sharers the provider invalidated (their acks travel
        /// directly to the requestor).
        sharers: u32,
    },
    /// Registers a new owner at the home L2C$.
    ChangeOwner {
        /// Tile now holding the ownership.
        new_owner: Tile,
    },
    /// Home L2 acknowledgement of a `ChangeOwner` (ownership may move
    /// again only after this).
    ChangeOwnerAck,
    /// Registers a new provider for `area` at the owner (routed via the
    /// home L2, which forwards it when the owner is an L1).
    ChangeProvider {
        /// Area whose provider moved.
        area: u16,
        /// New provider tile.
        new_provider: Tile,
    },
    /// Owner acknowledgement of a `ChangeProvider`.
    ChangeProviderAck,
    /// A provider evicted its line and its area has no sharers left.
    NoProvider {
        /// Area that lost its provider.
        area: u16,
        /// The former provider (lets the owner ignore stale updates).
        former: Tile,
    },
    /// Replacement: ownership (+ sharing code, propos, data) moves to a
    /// sharer. `remaining` lists other candidate sharers to try when the
    /// target silently dropped its copy.
    OwnershipTransfer {
        /// Area-sharer (or chip-sharer) bit-vector being handed over.
        sharers: u64,
        /// Provider pointers handed over.
        propos: Propos,
        /// Dirty with respect to memory.
        dirty: bool,
        /// Version of the data.
        version: u64,
        /// Candidate sharers (bit-vector, same encoding as `sharers`)
        /// not yet tried.
        remaining: u64,
    },
    /// Replacement: providership (+ area sharing code) moves to a sharer.
    ProvidershipTransfer {
        /// Area-sharer bit-vector being handed over.
        sharers: u64,
        /// Candidates not yet tried.
        remaining: u64,
        /// The evicting provider (for owner bookkeeping).
        former: Tile,
    },
    /// Home L2C$ eviction: the owner must relinquish ownership to the
    /// home.
    OwnershipRecall,
    /// The recall reached a cache that is no longer the owner (the
    /// ownership is in flight); the home retries when it learns the new
    /// owner.
    RecallFailed,
    /// Ownership returns to the home L2 (replacement of an owner with no
    /// sharers, or answer to `OwnershipRecall`).
    OwnershipToHome {
        /// Dirty data travels with the message.
        dirty: bool,
        /// Data version.
        version: u64,
        /// Provider pointers returned to the home.
        propos: Propos,
        /// Area sharers (DiCo/DiCo-Arin: chip or area sharing code that
        /// the home keeps tracking).
        sharers: u64,
        /// The former owner stays on as provider of its area
        /// (L2C$-recall path of DiCo-Providers).
        former_stays_provider: bool,
    },
    /// Home acknowledgement of an `OwnershipToHome` writeback.
    WbAck,
    /// DiCo-Arin: a remote-area read dissolved the ownership; data and
    /// the former owner's identity park at the home L2, which becomes a
    /// provider-serving ordering point.
    SbaTransition {
        /// Dirty with respect to memory.
        dirty: bool,
        /// Data version.
        version: u64,
        /// Former owner (stays on as provider of its area).
        former: Tile,
        /// Tile whose read triggered the transition (becomes provider of
        /// its own area).
        reader: Tile,
    },
    /// Home acknowledgement of an `SbaTransition`.
    SbaAck,
    /// DiCo-Arin three-way invalidation, step 1: block and invalidate.
    BcastInv {
        /// Where acknowledgements must be sent.
        reply_to: Node,
    },
    /// Acknowledgement of a `BcastInv`.
    BcastAck,
    /// DiCo-Arin three-way invalidation, step 3: unblock.
    BcastUnblock,
    /// Collector of a broadcast invalidation tells the home it finished
    /// (write case; home then commits the new owner).
    BcastDone {
        /// The new owner (writer), or `None` for an L2-replacement
        /// invalidation.
        new_owner: Option<Tile>,
    },
    /// Off-chip memory response (synthesized by the driver, addressed to
    /// the home L2 bank that issued the fetch).
    MemData,
    /// Directory protocol: requestor signals transaction completion so
    /// the blocking home can serve the next queued request.
    Unblock {
        /// The requestor installed the line as owner (E/M) rather than
        /// as a sharer; the home updates its directory info accordingly.
        became_owner: bool,
    },
    /// Supplier-identity hint updating L1C$ predictions.
    Hint {
        /// The new supplier to predict.
        supplier: Tile,
    },
}

impl MsgKind {
    /// True when the message carries a cache block (5-flit packet).
    pub fn carries_data(&self) -> bool {
        match self {
            MsgKind::Data(_) | MsgKind::MemData | MsgKind::SbaTransition { .. } => true,
            MsgKind::OwnershipTransfer { .. } => true,
            MsgKind::OwnershipToHome { dirty, .. } => *dirty,
            _ => false,
        }
    }

    /// Short static name for traces and dumps.
    pub fn label(&self) -> &'static str {
        match self {
            MsgKind::Req(r) => {
                if r.write {
                    "GetX"
                } else {
                    "GetS"
                }
            }
            MsgKind::Data(_) => "Data",
            MsgKind::Inv { .. } => "Inv",
            MsgKind::InvProvider { .. } => "InvProvider",
            MsgKind::InvSilent => "InvSilent",
            MsgKind::Ack => "Ack",
            MsgKind::AckCount { .. } => "AckCount",
            MsgKind::ChangeOwner { .. } => "ChangeOwner",
            MsgKind::ChangeOwnerAck => "ChangeOwnerAck",
            MsgKind::ChangeProvider { .. } => "ChangeProvider",
            MsgKind::ChangeProviderAck => "ChangeProviderAck",
            MsgKind::NoProvider { .. } => "NoProvider",
            MsgKind::OwnershipTransfer { .. } => "OwnershipTransfer",
            MsgKind::ProvidershipTransfer { .. } => "ProvidershipTransfer",
            MsgKind::OwnershipRecall => "OwnershipRecall",
            MsgKind::RecallFailed => "RecallFailed",
            MsgKind::OwnershipToHome { .. } => "OwnershipToHome",
            MsgKind::WbAck => "WbAck",
            MsgKind::SbaTransition { .. } => "SbaTransition",
            MsgKind::SbaAck => "SbaAck",
            MsgKind::BcastInv { .. } => "BcastInv",
            MsgKind::BcastAck => "BcastAck",
            MsgKind::BcastUnblock => "BcastUnblock",
            MsgKind::BcastDone { .. } => "BcastDone",
            MsgKind::MemData => "MemData",
            MsgKind::Unblock { .. } => "Unblock",
            MsgKind::Hint { .. } => "Hint",
        }
    }
}

/// One coherence message in flight.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Msg {
    /// Payload.
    pub kind: MsgKind,
    /// Block the message concerns.
    pub block: Block,
    /// Sender endpoint.
    pub src: Node,
    /// Receiver endpoint.
    pub dst: Node,
}

/// Outgoing unicast with a local processing delay (cache access
/// latencies) before injection.
#[derive(Debug, Clone, Copy)]
pub struct OutMsg {
    /// The message.
    pub msg: Msg,
    /// Cycles of local work before the message enters the network.
    pub delay: Cycle,
}

/// Outgoing broadcast to every L1, optionally excluding one tile (the
/// write requestor in DiCo-Arin's three-way invalidation).
#[derive(Debug, Clone, Copy)]
pub struct OutBcast {
    /// Template; `dst` is filled per destination tile.
    pub kind: MsgKind,
    /// Block concerned.
    pub block: Block,
    /// Source endpoint.
    pub src: Node,
    /// Tile whose L1 must NOT receive the broadcast, if any.
    pub exclude: Option<Tile>,
    /// Cycles of local work before injection.
    pub delay: Cycle,
}

/// Memory operation issued by a home L2 bank.
#[derive(Debug, Clone, Copy)]
pub struct MemOp {
    /// Block.
    pub block: Block,
    /// Issuing home tile (responses come back to its L2).
    pub home: Tile,
    /// Write-back (no response) vs fetch (MemData response).
    pub is_write: bool,
    /// Local delay before the operation leaves the tile.
    pub delay: Cycle,
}

/// Classification of a completed L1 miss (paper Figure 9b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MissClass {
    /// Predicted; the predicted node was the owner and served it.
    PredictedOwnerHit,
    /// Predicted; the predicted node was an in-area provider and served
    /// it.
    PredictedProviderHit,
    /// Predicted, but the predicted node could not serve the request
    /// (re-routed through the home).
    PredictionFailed,
    /// Not predicted; the home L2 served the data itself.
    UnpredictedHome,
    /// Not predicted; the home forwarded to the supplier (3-hop).
    UnpredictedForwarded,
    /// Data came from off-chip memory.
    Memory,
}

impl MissClass {
    /// All six categories, report order.
    pub fn all() -> [MissClass; 6] {
        [
            MissClass::PredictedOwnerHit,
            MissClass::PredictedProviderHit,
            MissClass::PredictionFailed,
            MissClass::UnpredictedHome,
            MissClass::UnpredictedForwarded,
            MissClass::Memory,
        ]
    }

    /// Short label for reports.
    pub fn label(&self) -> &'static str {
        match self {
            MissClass::PredictedOwnerHit => "pred-owner-hit",
            MissClass::PredictedProviderHit => "pred-provider-hit",
            MissClass::PredictionFailed => "pred-failed",
            MissClass::UnpredictedHome => "unpred-home",
            MissClass::UnpredictedForwarded => "unpred-forwarded",
            MissClass::Memory => "memory",
        }
    }
}

/// A finished miss, handed back to the driver so it can resume the core.
#[derive(Debug, Clone, Copy)]
pub struct Completion {
    /// Tile whose core resumes.
    pub tile: Tile,
    /// Block that was missing.
    pub block: Block,
    /// Extra cycles before the core restarts (fill latency).
    pub delay: Cycle,
}

/// Per-call output channel between a protocol and its driver.
#[derive(Debug, Default)]
pub struct Ctx {
    /// Current cycle.
    pub now: Cycle,
    /// Unicasts to inject (inline up to the typical fan-out of 4).
    pub sends: SmallVec<OutMsg, 4>,
    /// Broadcasts to inject (DiCo-Arin only).
    pub bcasts: Vec<OutBcast>,
    /// Messages to re-handle immediately (drained pending queues).
    pub replays: Vec<Msg>,
    /// Completed misses (inline: almost always 0 or 1 per dispatch).
    pub completions: SmallVec<Completion, 2>,
    /// Memory fetches/writebacks.
    pub mem_ops: Vec<MemOp>,
}

impl Ctx {
    /// Fresh context for one dispatch at `now`.
    pub fn at(now: Cycle) -> Self {
        Self { now, ..Default::default() }
    }

    /// Re-arms a pooled context for the next dispatch at `now`, keeping
    /// every buffer's capacity (the driver reuses one `Ctx` for all
    /// dispatches so the hot path never allocates).
    pub fn reset(&mut self, now: Cycle) {
        self.now = now;
        self.sends.clear();
        self.bcasts.clear();
        self.replays.clear();
        self.completions.clear();
        self.mem_ops.clear();
    }

    /// Queues a unicast.
    pub fn send(&mut self, msg: Msg, delay: Cycle) {
        self.sends.push(OutMsg { msg, delay });
    }

    /// Queues a broadcast from `src` to every L1 except `exclude`.
    pub fn broadcast(
        &mut self,
        kind: MsgKind,
        block: Block,
        src: Node,
        exclude: Option<Tile>,
        delay: Cycle,
    ) {
        self.bcasts.push(OutBcast { kind, block, src, exclude, delay });
    }

    /// Queues an immediate replay of `msg` (dispatch again after queue
    /// release).
    pub fn replay(&mut self, msg: Msg) {
        self.replays.push(msg);
    }

    /// Reports a completed miss.
    pub fn complete(&mut self, tile: Tile, block: Block, delay: Cycle) {
        self.completions.push(Completion { tile, block, delay });
    }

    /// Issues a memory fetch for `block` from `home`.
    pub fn mem_read(&mut self, block: Block, home: Tile, delay: Cycle) {
        self.mem_ops.push(MemOp { block, home, is_write: false, delay });
    }

    /// Issues a memory write-back for `block` from `home`.
    pub fn mem_write(&mut self, block: Block, home: Tile, delay: Cycle) {
        self.mem_ops.push(MemOp { block, home, is_write: true, delay });
    }
}

/// Outcome of a core load/store presented to the L1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// Served locally; core resumes after `latency`.
    Hit {
        /// L1 access latency.
        latency: Cycle,
    },
    /// A transaction was started; a [`Completion`] will arrive later.
    Miss,
    /// The block is temporarily locked; the core must retry shortly.
    Blocked {
        /// What the core is waiting on (feeds the attribution
        /// profiler's pre-issue wait accounting).
        reason: BlockReason,
    },
}

/// Why an access could not issue (the [`AccessOutcome::Blocked`] cause).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockReason {
    /// The tile's MSHR already tracks a miss on this block.
    MshrConflict,
    /// The block is locked by an in-flight coherence action (busy
    /// queue entry or a broadcast invalidation in progress).
    BusyBlock,
}

/// Event counts every protocol maintains; the power model turns these
/// into energy and the reports into Figures 7/8/9.
#[derive(Debug, Clone, Default)]
pub struct ProtoStats {
    /// L1 tag array accesses (incl. probes by remote requests).
    pub l1_tag: Counter,
    /// L1 data array reads (hits + supplying data).
    pub l1_data_read: Counter,
    /// L1 data array writes (fills + store hits).
    pub l1_data_write: Counter,
    /// L2 tag array accesses.
    pub l2_tag: Counter,
    /// L2 data array reads.
    pub l2_data_read: Counter,
    /// L2 data array writes.
    pub l2_data_write: Counter,
    /// Directory-cache accesses (flat directory only).
    pub dir_access: Counter,
    /// L1C$ accesses (DiCo family).
    pub l1c_access: Counter,
    /// L2C$ accesses (DiCo family).
    pub l2c_access: Counter,
    /// Core loads+stores presented to the L1.
    pub accesses: Counter,
    /// L1 hits.
    pub l1_hits: Counter,
    /// L1 misses (transactions started).
    pub l1_misses: Counter,
    /// Store misses/upgrades among the above.
    pub write_misses: Counter,
    /// Invalidation messages sent (unicast).
    pub invalidations: Counter,
    /// Broadcast invalidation rounds (DiCo-Arin).
    pub broadcast_invs: Counter,
    /// L1 replacements that required a transaction.
    pub l1_repl_transactions: Counter,
    /// L2/directory evictions that invalidated L1 copies.
    pub l2_evictions: Counter,
    /// Memory fetches.
    pub mem_reads: Counter,
    /// Memory writebacks.
    pub mem_writes: Counter,
    /// Misses launched on an owner/provider prediction (L1C$ or line
    /// pointer chose a destination other than the home); counted at
    /// miss completion from the Figure-9b classification.
    pub pred_lookups: Counter,
    /// Predictions whose target served the miss directly (the two
    /// predicted-hit classes).
    pub pred_hits: Counter,
    /// Home-side ordering-structure lookups (directory cache, or the
    /// L2C$ owner cache in the DiCo family).
    pub home_lookups: Counter,
    /// Home-side lookups that found the entry cached on-chip.
    pub home_hits: Counter,
    /// Request retransmissions issued by the timeout/retry recovery
    /// layer (nonzero only under fault injection).
    pub retries: Counter,
    /// MSHR request timeouts that fired on a live (uncompleted) miss
    /// (nonzero only under fault injection).
    pub timeouts: Counter,
    /// Deliveries suppressed by the idempotent-receive duplicate filter
    /// (nonzero only under fault injection).
    pub dedup_drops: Counter,
    /// Miss latency distribution (summary).
    pub miss_latency: Running,
    /// Miss latency distribution (log2 histogram, for percentiles).
    pub miss_latency_hist: Log2Hist,
    /// Figure 9b: completed-miss classification.
    pub miss_class: BTreeMap<&'static str, u64>,
}

impl ProtoStats {
    /// Records a classified, completed miss with its latency. The
    /// prediction counters feed off the classification: the three
    /// `Predicted*`/`PredictionFailed` classes are exactly the misses
    /// that launched using an L1C$/line-pointer prediction.
    pub fn record_miss(&mut self, class: MissClass, latency: Cycle) {
        self.miss_latency.record(latency);
        self.miss_latency_hist.record(latency);
        *self.miss_class.entry(class.label()).or_insert(0) += 1;
        match class {
            MissClass::PredictedOwnerHit | MissClass::PredictedProviderHit => {
                self.pred_lookups.inc();
                self.pred_hits.inc();
            }
            MissClass::PredictionFailed => self.pred_lookups.inc(),
            _ => {}
        }
    }

    /// Count for one Figure-9b class.
    pub fn class_count(&self, class: MissClass) -> u64 {
        self.miss_class.get(class.label()).copied().unwrap_or(0)
    }

    /// Prediction hit rate over the measured window (`None` when the
    /// protocol made no predictions — e.g. the flat directory).
    pub fn pred_hit_rate(&self) -> Option<f64> {
        let n = self.pred_lookups.get();
        (n > 0).then(|| self.pred_hits.get() as f64 / n as f64)
    }

    /// Home ordering-structure (directory cache / L2C$) hit rate.
    pub fn home_hit_rate(&self) -> Option<f64> {
        let n = self.home_lookups.get();
        (n > 0).then(|| self.home_hits.get() as f64 / n as f64)
    }
}

impl MetricSource for ProtoStats {
    fn publish(&self, prefix: &str, reg: &mut MetricsRegistry) {
        let c = [
            ("l1_tag", &self.l1_tag),
            ("l1_data_read", &self.l1_data_read),
            ("l1_data_write", &self.l1_data_write),
            ("l2_tag", &self.l2_tag),
            ("l2_data_read", &self.l2_data_read),
            ("l2_data_write", &self.l2_data_write),
            ("dir_access", &self.dir_access),
            ("l1c_access", &self.l1c_access),
            ("l2c_access", &self.l2c_access),
            ("accesses", &self.accesses),
            ("l1_hits", &self.l1_hits),
            ("l1_misses", &self.l1_misses),
            ("write_misses", &self.write_misses),
            ("invalidations", &self.invalidations),
            ("broadcast_invs", &self.broadcast_invs),
            ("l1_repl_transactions", &self.l1_repl_transactions),
            ("l2_evictions", &self.l2_evictions),
            ("mem_reads", &self.mem_reads),
            ("mem_writes", &self.mem_writes),
            ("pred_lookups", &self.pred_lookups),
            ("pred_hits", &self.pred_hits),
            ("home_lookups", &self.home_lookups),
            ("home_hits", &self.home_hits),
            ("retries", &self.retries),
            ("timeouts", &self.timeouts),
            ("dedup_drops", &self.dedup_drops),
        ];
        for (name, counter) in c {
            reg.set_counter(&format!("{prefix}.{name}"), counter.get());
        }
        if let Some(r) = self.pred_hit_rate() {
            reg.set_gauge(&format!("{prefix}.pred_hit_rate"), r);
        }
        if let Some(r) = self.home_hit_rate() {
            reg.set_gauge(&format!("{prefix}.home_hit_rate"), r);
        }
        reg.merge_hist(&format!("{prefix}.miss_latency"), &self.miss_latency_hist);
        for (class, n) in &self.miss_class {
            reg.set_counter(&format!("{prefix}.miss_class.{class}"), *n);
        }
    }
}

/// Cache-line occupancy snapshot (valid lines vs capacity), sampled by
/// the interval time-series. `aux` covers the protocol's auxiliary
/// structure: the directory cache, or L1C$+L2C$ for the DiCo family.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Occupancy {
    /// Valid L1 lines across all tiles.
    pub l1_lines: u64,
    /// Total L1 capacity in lines.
    pub l1_capacity: u64,
    /// Valid L2 lines across all banks.
    pub l2_lines: u64,
    /// Total L2 capacity in lines.
    pub l2_capacity: u64,
    /// Valid entries in auxiliary structures.
    pub aux_lines: u64,
    /// Total auxiliary capacity in entries.
    pub aux_capacity: u64,
}

/// Sums resident lines and total capacity over per-tile cache arrays
/// (helper for [`CoherenceProtocol::occupancy`] implementations).
pub fn occupancy_of<T>(arrays: &[cmpsim_cache::SetAssoc<T>]) -> (u64, u64) {
    arrays
        .iter()
        .fold((0, 0), |(l, c), a| (l + a.len() as u64, c + a.capacity() as u64))
}

impl Occupancy {
    fn frac(lines: u64, cap: u64) -> f64 {
        if cap == 0 {
            0.0
        } else {
            lines as f64 / cap as f64
        }
    }

    /// L1 fill fraction in `[0, 1]`.
    pub fn l1_frac(&self) -> f64 {
        Self::frac(self.l1_lines, self.l1_capacity)
    }

    /// L2 fill fraction in `[0, 1]`.
    pub fn l2_frac(&self) -> f64 {
        Self::frac(self.l2_lines, self.l2_capacity)
    }

    /// Auxiliary-structure fill fraction in `[0, 1]`.
    pub fn aux_frac(&self) -> f64 {
        Self::frac(self.aux_lines, self.aux_capacity)
    }
}

/// A fatal protocol-state inconsistency detected during dispatch: a
/// message arrived that the receiving controller's state machine has no
/// transition for (e.g. a data fill without an allocated MSHR, or a
/// completion signal with no matching transaction).
///
/// These used to be `panic!`s inside the protocol crates; they are now
/// typed so the driver can abort gracefully, attach the chip-wide
/// diagnostic dump, and emit a replay artifact.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtoError {
    /// Protocol that faulted.
    pub protocol: ProtocolKind,
    /// Endpoint whose controller had no transition for the event.
    pub at: Node,
    /// Block the offending event concerned.
    pub block: Block,
    /// What happened, e.g. `"fill without MSHR"` or
    /// `"unexpected message Ack"`.
    pub what: String,
}

impl ProtoError {
    /// A fault at `at` concerning `block`.
    pub fn new(protocol: ProtocolKind, at: Node, block: Block, what: impl Into<String>) -> Self {
        Self { protocol, at, block, what: what.into() }
    }

    /// The standard "this controller has no transition for this message"
    /// fault.
    pub fn unexpected(protocol: ProtocolKind, msg: &Msg) -> Self {
        Self::new(protocol, msg.dst, msg.block, format!("unexpected message {:?} from {:?}", msg.kind, msg.src))
    }
}

impl std::fmt::Display for ProtoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{} protocol fault at {:?}, block {:#x}: {}",
            self.protocol.name(),
            self.at,
            self.block,
            self.what
        )
    }
}

impl std::error::Error for ProtoError {}

/// The interface every protocol implements; the driver in `cmpsim` (and
/// the in-crate test harness) is written against this.
pub trait CoherenceProtocol {
    /// Which protocol this is.
    fn kind(&self) -> ProtocolKind;
    /// Chip description.
    fn spec(&self) -> &ChipSpec;
    /// A core load (`write == false`) or store presented to its L1.
    ///
    /// `Err` means the L1 controller's state machine hit an
    /// inconsistency; the simulation cannot continue.
    fn core_access(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        write: bool,
    ) -> Result<AccessOutcome, ProtoError>;
    /// A delivered message.
    ///
    /// `Err` means the receiving controller had no transition for the
    /// message; the simulation cannot continue.
    fn handle(&mut self, ctx: &mut Ctx, msg: Msg) -> Result<(), ProtoError>;
    /// Statistics.
    fn stats(&self) -> &ProtoStats;
    /// Mutable statistics — lets the driver charge transport-layer
    /// recovery events (request retries, timeouts, duplicate
    /// suppressions) to the protocol's counters so they publish through
    /// the same registry as every other protocol event.
    fn stats_mut(&mut self) -> &mut ProtoStats;
    /// Clears statistics (used after simulation warm-up).
    fn reset_stats(&mut self);
    /// True when no transaction is in flight anywhere in the chip
    /// (used by tests to know when invariants must hold exactly).
    fn quiescent(&self) -> bool;
    /// Whole-chip snapshot for the invariant checker.
    fn snapshot(&self) -> crate::checker::ChipSnapshot;
    /// Human-readable dump of in-flight transaction state, used by the
    /// test harness when a run fails to drain.
    fn pending_summary(&self) -> String {
        String::new()
    }
    /// Current cache-line occupancy (sampled by the interval
    /// time-series). The default reports nothing, so test harness
    /// protocols need not implement it.
    fn occupancy(&self) -> Occupancy {
        Occupancy::default()
    }
    /// Deep copy of the whole protocol state, for in-memory snapshot
    /// forking.
    fn clone_box(&self) -> Box<dyn CoherenceProtocol>;
    /// Serializes every mutable field (caches, MSHRs, ordering-point
    /// transactions, statistics). The immutable [`ChipSpec`] is identity,
    /// not state: the restorer rebuilds the protocol from the same config
    /// and then calls [`CoherenceProtocol::load_state`].
    fn save_state(&self, w: &mut cmpsim_engine::SnapWriter);
    /// Restores state written by [`CoherenceProtocol::save_state`] into a
    /// freshly-built protocol of the same kind and spec.
    fn load_state(
        &mut self,
        r: &mut cmpsim_engine::SnapReader<'_>,
    ) -> Result<(), cmpsim_engine::SnapError>;
}

impl Clone for Box<dyn CoherenceProtocol> {
    fn clone(&self) -> Self {
        self.clone_box()
    }
}

// ------------------------------------------------------------- snapshots

use cmpsim_engine::{Snap, SnapError, SnapReader, SnapWriter};

impl Snap for Node {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            Node::L1(t) => {
                w.u8(0);
                t.save(w);
            }
            Node::L2(t) => {
                w.u8(1);
                t.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Node::L1(Snap::load(r)?)),
            1 => Ok(Node::L2(Snap::load(r)?)),
            tag => Err(SnapError::BadTag { what: "Node", tag }),
        }
    }
}

impl Snap for Supplier {
    fn save(&self, w: &mut SnapWriter) {
        w.u8(match self {
            Supplier::OwnerL1 => 0,
            Supplier::ProviderL1 => 1,
            Supplier::HomeL2 => 2,
            Supplier::Memory => 3,
        });
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        match r.u8()? {
            0 => Ok(Supplier::OwnerL1),
            1 => Ok(Supplier::ProviderL1),
            2 => Ok(Supplier::HomeL2),
            3 => Ok(Supplier::Memory),
            tag => Err(SnapError::BadTag { what: "Supplier", tag }),
        }
    }
}

cmpsim_engine::impl_snap!(ReqInfo {
    requestor,
    write,
    forwarder,
    via_home,
    predicted,
    vouched,
    hops,
});

cmpsim_engine::impl_snap!(DataInfo {
    exclusive,
    ownership,
    make_provider,
    sharers,
    propos,
    provider_hint,
    acks_sharers,
    acks_providers,
    sba_write,
    dirty,
    version,
    supplier,
});

impl Snap for MsgKind {
    fn save(&self, w: &mut SnapWriter) {
        match self {
            MsgKind::Req(req) => {
                w.u8(0);
                req.save(w);
            }
            MsgKind::Data(d) => {
                w.u8(1);
                d.save(w);
            }
            MsgKind::Inv { reply_to, version } => {
                w.u8(2);
                reply_to.save(w);
                version.save(w);
            }
            MsgKind::InvProvider { reply_to } => {
                w.u8(3);
                reply_to.save(w);
            }
            MsgKind::InvSilent => w.u8(4),
            MsgKind::Ack => w.u8(5),
            MsgKind::AckCount { sharers } => {
                w.u8(6);
                sharers.save(w);
            }
            MsgKind::ChangeOwner { new_owner } => {
                w.u8(7);
                new_owner.save(w);
            }
            MsgKind::ChangeOwnerAck => w.u8(8),
            MsgKind::ChangeProvider { area, new_provider } => {
                w.u8(9);
                area.save(w);
                new_provider.save(w);
            }
            MsgKind::ChangeProviderAck => w.u8(10),
            MsgKind::NoProvider { area, former } => {
                w.u8(11);
                area.save(w);
                former.save(w);
            }
            MsgKind::OwnershipTransfer { sharers, propos, dirty, version, remaining } => {
                w.u8(12);
                sharers.save(w);
                propos.save(w);
                dirty.save(w);
                version.save(w);
                remaining.save(w);
            }
            MsgKind::ProvidershipTransfer { sharers, remaining, former } => {
                w.u8(13);
                sharers.save(w);
                remaining.save(w);
                former.save(w);
            }
            MsgKind::OwnershipRecall => w.u8(14),
            MsgKind::RecallFailed => w.u8(15),
            MsgKind::OwnershipToHome { dirty, version, propos, sharers, former_stays_provider } => {
                w.u8(16);
                dirty.save(w);
                version.save(w);
                propos.save(w);
                sharers.save(w);
                former_stays_provider.save(w);
            }
            MsgKind::WbAck => w.u8(17),
            MsgKind::SbaTransition { dirty, version, former, reader } => {
                w.u8(18);
                dirty.save(w);
                version.save(w);
                former.save(w);
                reader.save(w);
            }
            MsgKind::SbaAck => w.u8(19),
            MsgKind::BcastInv { reply_to } => {
                w.u8(20);
                reply_to.save(w);
            }
            MsgKind::BcastAck => w.u8(21),
            MsgKind::BcastUnblock => w.u8(22),
            MsgKind::BcastDone { new_owner } => {
                w.u8(23);
                new_owner.save(w);
            }
            MsgKind::MemData => w.u8(24),
            MsgKind::Unblock { became_owner } => {
                w.u8(25);
                became_owner.save(w);
            }
            MsgKind::Hint { supplier } => {
                w.u8(26);
                supplier.save(w);
            }
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match r.u8()? {
            0 => MsgKind::Req(Snap::load(r)?),
            1 => MsgKind::Data(Snap::load(r)?),
            2 => MsgKind::Inv { reply_to: Snap::load(r)?, version: Snap::load(r)? },
            3 => MsgKind::InvProvider { reply_to: Snap::load(r)? },
            4 => MsgKind::InvSilent,
            5 => MsgKind::Ack,
            6 => MsgKind::AckCount { sharers: Snap::load(r)? },
            7 => MsgKind::ChangeOwner { new_owner: Snap::load(r)? },
            8 => MsgKind::ChangeOwnerAck,
            9 => MsgKind::ChangeProvider { area: Snap::load(r)?, new_provider: Snap::load(r)? },
            10 => MsgKind::ChangeProviderAck,
            11 => MsgKind::NoProvider { area: Snap::load(r)?, former: Snap::load(r)? },
            12 => MsgKind::OwnershipTransfer {
                sharers: Snap::load(r)?,
                propos: Snap::load(r)?,
                dirty: Snap::load(r)?,
                version: Snap::load(r)?,
                remaining: Snap::load(r)?,
            },
            13 => MsgKind::ProvidershipTransfer {
                sharers: Snap::load(r)?,
                remaining: Snap::load(r)?,
                former: Snap::load(r)?,
            },
            14 => MsgKind::OwnershipRecall,
            15 => MsgKind::RecallFailed,
            16 => MsgKind::OwnershipToHome {
                dirty: Snap::load(r)?,
                version: Snap::load(r)?,
                propos: Snap::load(r)?,
                sharers: Snap::load(r)?,
                former_stays_provider: Snap::load(r)?,
            },
            17 => MsgKind::WbAck,
            18 => MsgKind::SbaTransition {
                dirty: Snap::load(r)?,
                version: Snap::load(r)?,
                former: Snap::load(r)?,
                reader: Snap::load(r)?,
            },
            19 => MsgKind::SbaAck,
            20 => MsgKind::BcastInv { reply_to: Snap::load(r)? },
            21 => MsgKind::BcastAck,
            22 => MsgKind::BcastUnblock,
            23 => MsgKind::BcastDone { new_owner: Snap::load(r)? },
            24 => MsgKind::MemData,
            25 => MsgKind::Unblock { became_owner: Snap::load(r)? },
            26 => MsgKind::Hint { supplier: Snap::load(r)? },
            tag => return Err(SnapError::BadTag { what: "MsgKind", tag }),
        })
    }
}

cmpsim_engine::impl_snap!(Msg { kind, block, src, dst });

impl Snap for ProtoStats {
    fn save(&self, w: &mut SnapWriter) {
        self.l1_tag.save(w);
        self.l1_data_read.save(w);
        self.l1_data_write.save(w);
        self.l2_tag.save(w);
        self.l2_data_read.save(w);
        self.l2_data_write.save(w);
        self.dir_access.save(w);
        self.l1c_access.save(w);
        self.l2c_access.save(w);
        self.accesses.save(w);
        self.l1_hits.save(w);
        self.l1_misses.save(w);
        self.write_misses.save(w);
        self.invalidations.save(w);
        self.broadcast_invs.save(w);
        self.l1_repl_transactions.save(w);
        self.l2_evictions.save(w);
        self.mem_reads.save(w);
        self.mem_writes.save(w);
        self.pred_lookups.save(w);
        self.pred_hits.save(w);
        self.home_lookups.save(w);
        self.home_hits.save(w);
        self.retries.save(w);
        self.timeouts.save(w);
        self.dedup_drops.save(w);
        self.miss_latency.save(w);
        self.miss_latency_hist.save(w);
        // miss_class keys are the static Figure-9b labels; serialize as
        // strings and map back on load (BTreeMap iterates sorted, so the
        // byte stream is deterministic).
        w.len_prefix(self.miss_class.len());
        for (label, n) in &self.miss_class {
            label.to_string().save(w);
            n.save(w);
        }
    }

    fn load(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        let mut s = ProtoStats {
            l1_tag: Snap::load(r)?,
            l1_data_read: Snap::load(r)?,
            l1_data_write: Snap::load(r)?,
            l2_tag: Snap::load(r)?,
            l2_data_read: Snap::load(r)?,
            l2_data_write: Snap::load(r)?,
            dir_access: Snap::load(r)?,
            l1c_access: Snap::load(r)?,
            l2c_access: Snap::load(r)?,
            accesses: Snap::load(r)?,
            l1_hits: Snap::load(r)?,
            l1_misses: Snap::load(r)?,
            write_misses: Snap::load(r)?,
            invalidations: Snap::load(r)?,
            broadcast_invs: Snap::load(r)?,
            l1_repl_transactions: Snap::load(r)?,
            l2_evictions: Snap::load(r)?,
            mem_reads: Snap::load(r)?,
            mem_writes: Snap::load(r)?,
            pred_lookups: Snap::load(r)?,
            pred_hits: Snap::load(r)?,
            home_lookups: Snap::load(r)?,
            home_hits: Snap::load(r)?,
            retries: Snap::load(r)?,
            timeouts: Snap::load(r)?,
            dedup_drops: Snap::load(r)?,
            miss_latency: Snap::load(r)?,
            miss_latency_hist: Snap::load(r)?,
            miss_class: BTreeMap::new(),
        };
        let n = r.len_prefix("ProtoStats.miss_class", 1)?;
        for _ in 0..n {
            let label = String::load(r)?;
            let count = u64::load(r)?;
            let stat = MissClass::all()
                .iter()
                .map(|c| c.label())
                .find(|l| *l == label)
                .ok_or(SnapError::Corrupt("unknown miss-class label"))?;
            s.miss_class.insert(stat, count);
        }
        Ok(s)
    }
}

cmpsim_engine::impl_snap!(BlockQueues { busy, pending });
cmpsim_engine::impl_snap!(VersionAuthority { latest });
cmpsim_engine::impl_snap!(MemoryImage { versions });

/// Expands to the [`CoherenceProtocol::save_state`] /
/// [`CoherenceProtocol::load_state`] method pair over the listed fields
/// (every mutable field, in declaration order; the immutable `ChipSpec`
/// is identity and is supplied again by the restorer's constructor).
macro_rules! snap_state_methods {
    ($($field:ident),+ $(,)?) => {
        fn save_state(&self, w: &mut cmpsim_engine::SnapWriter) {
            $( cmpsim_engine::Snap::save(&self.$field, w); )+
        }

        fn load_state(
            &mut self,
            r: &mut cmpsim_engine::SnapReader<'_>,
        ) -> Result<(), cmpsim_engine::SnapError> {
            $( self.$field = cmpsim_engine::Snap::load(r)?; )+
            Ok(())
        }
    };
}
pub(crate) use snap_state_methods;

/// Per-block busy flags with FIFO pending queues — the transaction
/// serialization device used at every ordering point.
#[derive(Debug, Clone, Default)]
pub struct BlockQueues {
    busy: FxHashSet<Block>,
    pending: FxHashMap<Block, VecDeque<Msg>>,
}

impl BlockQueues {
    /// True when `block` has an in-flight transaction here.
    pub fn is_busy(&self, block: Block) -> bool {
        self.busy.contains(&block)
    }

    /// Marks `block` busy.
    pub fn set_busy(&mut self, block: Block) {
        self.busy.insert(block);
    }

    /// Appends a message to the pending queue of its (busy) block.
    pub fn enqueue(&mut self, msg: Msg) {
        self.pending.entry(msg.block).or_default().push_back(msg);
    }

    /// Clears the busy flag and drains pending messages (FIFO) for
    /// replay.
    pub fn release(&mut self, block: Block) -> Vec<Msg> {
        self.busy.remove(&block);
        self.pending.remove(&block).map(|q| q.into_iter().collect()).unwrap_or_default()
    }

    /// True when neither busy flags nor queued messages exist.
    pub fn idle(&self) -> bool {
        self.busy.is_empty() && self.pending.iter().all(|(_, q)| q.is_empty())
    }

    /// Number of busy blocks (diagnostics).
    pub fn busy_count(&self) -> usize {
        self.busy.len()
    }

    /// Blocks with queued messages and their counts, address-ordered
    /// (diagnostics; the backing map iterates in unspecified order).
    pub fn pending_counts(&self) -> Vec<(Block, usize)> {
        let mut counts: Vec<(Block, usize)> = self
            .pending
            .iter()
            .filter(|(_, q)| !q.is_empty())
            .map(|(b, q)| (*b, q.len()))
            .collect();
        counts.sort_unstable_by_key(|&(b, _)| b);
        counts
    }
}

/// Bit mask for one tile in a sharing code.
#[inline]
pub fn bit(t: Tile) -> u64 {
    1u64 << t
}

/// Tiles set in a sharing code, ascending.
pub fn iter_bits(mut v: u64) -> impl Iterator<Item = Tile> {
    std::iter::from_fn(move || {
        if v == 0 {
            None
        } else {
            let t = v.trailing_zeros() as Tile;
            v &= v - 1;
            Some(t)
        }
    })
}

/// Write-serialization authority: every committed store gets a fresh,
/// globally increasing version per block. Data messages carry versions so
/// the checker can detect stale data being served.
#[derive(Debug, Clone, Default)]
pub struct VersionAuthority {
    latest: FxHashMap<Block, u64>,
}

impl VersionAuthority {
    /// Commits a store to `block`, returning its new version.
    pub fn commit(&mut self, block: Block) -> u64 {
        let v = self.latest.entry(block).or_insert(0);
        *v += 1;
        *v
    }

    /// Latest committed version of `block` (0 if never written).
    pub fn latest(&self, block: Block) -> u64 {
        self.latest.get(&block).copied().unwrap_or(0)
    }

    /// Iterates `(block, version)` pairs, in unspecified order (the
    /// snapshot sinks are keyed maps, so order never matters).
    pub fn iter(&self) -> impl Iterator<Item = (&Block, &u64)> {
        self.latest.iter()
    }
}

/// Off-chip memory image, tracked as versions only (the simulator never
/// materializes data bytes).
#[derive(Debug, Clone, Default)]
pub struct MemoryImage {
    versions: FxHashMap<Block, u64>,
}

impl MemoryImage {
    /// Version memory holds for `block` (0 = never written back).
    pub fn version(&self, block: Block) -> u64 {
        self.versions.get(&block).copied().unwrap_or(0)
    }

    /// Records a write-back of `version`.
    pub fn write_back(&mut self, block: Block, version: u64) {
        self.versions.insert(block, version);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn home_mapping_is_interleaved() {
        let spec = ChipSpec::paper();
        assert_eq!(spec.home_of(0), 0);
        assert_eq!(spec.home_of(63), 63);
        assert_eq!(spec.home_of(64), 0);
        assert_eq!(spec.home_of(130), 2);
    }

    #[test]
    fn paper_spec_shape() {
        let spec = ChipSpec::paper();
        assert_eq!(spec.tiles(), 64);
        assert_eq!(spec.num_areas(), 4);
        assert_eq!(spec.l1.entries(), 2048);
        assert_eq!(spec.l2.entries(), 16384);
        assert_eq!(spec.aux.entries(), 2048);
        assert_eq!(spec.lat.l1_hit(), 3);
        assert_eq!(spec.lat.l2_access(), 5);
    }

    #[test]
    fn data_messages_are_data_sized() {
        assert!(MsgKind::Data(DataInfo::shared(0, Supplier::HomeL2)).carries_data());
        assert!(MsgKind::MemData.carries_data());
        assert!(!MsgKind::Ack.carries_data());
        assert!(!MsgKind::Req(ReqInfo {
            requestor: 0,
            write: false,
            forwarder: None,
            via_home: false,
            predicted: false,
            vouched: false,
            hops: 0,
        })
        .carries_data());
        assert!(!MsgKind::OwnershipToHome {
            dirty: false,
            version: 0,
            propos: [None; MAX_AREAS],
            sharers: 0,
            former_stays_provider: false
        }
        .carries_data());
        assert!(MsgKind::OwnershipToHome {
            dirty: true,
            version: 1,
            propos: [None; MAX_AREAS],
            sharers: 0,
            former_stays_provider: false
        }
        .carries_data());
    }

    #[test]
    fn block_queues_fifo() {
        let mut q = BlockQueues::default();
        assert!(!q.is_busy(5));
        q.set_busy(5);
        let mk = |i: u64| Msg {
            kind: MsgKind::Ack,
            block: 5,
            src: Node::L1(i as usize),
            dst: Node::L2(0),
        };
        q.enqueue(mk(1));
        q.enqueue(mk(2));
        assert!(q.is_busy(5));
        assert!(!q.idle());
        let drained = q.release(5);
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[0].src, Node::L1(1));
        assert!(q.idle());
    }

    #[test]
    fn version_authority_monotone() {
        let mut a = VersionAuthority::default();
        assert_eq!(a.latest(9), 0);
        assert_eq!(a.commit(9), 1);
        assert_eq!(a.commit(9), 2);
        assert_eq!(a.commit(3), 1);
        assert_eq!(a.latest(9), 2);
    }

    #[test]
    fn memory_image_versions() {
        let mut m = MemoryImage::default();
        assert_eq!(m.version(4), 0);
        m.write_back(4, 7);
        assert_eq!(m.version(4), 7);
    }

    #[test]
    fn miss_class_labels_unique() {
        let mut labels: Vec<&str> = MissClass::all().iter().map(|c| c.label()).collect();
        labels.sort_unstable();
        labels.dedup();
        assert_eq!(labels.len(), 6);
    }

    #[test]
    fn protocol_kind_names() {
        assert_eq!(ProtocolKind::all().len(), 4);
        assert_eq!(ProtocolKind::DiCoArin.name(), "DiCo-Arin");
    }
}
