//! The highly-optimized flat directory protocol (paper §II-A).
//!
//! MESI with a full-map bit-vector sharing code held at the home L2 bank.
//! Following NCID, the L2 is non-inclusive but the directory is
//! inclusive: directory information for blocks whose data is not resident
//! in the L2 lives in a *directory cache* (extra L2 tags). Evicting a
//! data line therefore does **not** invalidate L1 copies; only evicting a
//! directory entry does.
//!
//! The home bank is the ordering point. Transactions block the address at
//! the home until the requestor's `Unblock` (the classic GEMS blocking
//! directory), which keeps races simple and — importantly for the paper's
//! comparisons — gives the directory its characteristic 3-hop
//! requestor → home → owner → requestor misses.

use crate::checker::{ChipSnapshot, CopyState, CopyView, L2View};
use crate::common::*;
use cmpsim_cache::{Mshr, SetAssoc};
use cmpsim_engine::{Cycle, FxHashMap};

/// L1 line states (MESI minus I, which is "not present").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum L1State {
    Shared,
    Exclusive,
    Modified,
}

#[derive(Debug, Clone)]
struct L1Line {
    state: L1State,
    version: u64,
}

/// L2 data entry with embedded directory information (full map).
#[derive(Debug, Clone)]
struct L2Entry {
    dirty: bool,
    version: u64,
    sharers: u64,
    owner: Option<Tile>,
}

/// Directory-cache entry (dir info for blocks not resident in L2 data).
#[derive(Debug, Clone)]
struct DirEntry {
    sharers: u64,
    owner: Option<Tile>,
}

/// Outstanding miss bookkeeping at the requestor.
#[derive(Debug, Clone)]
struct MshrEntry {
    write: bool,
    issued_at: Cycle,
    have_data: bool,
    fill: Option<DataInfo>,
    /// Sharer acks still owed (may transiently go negative when acks
    /// outrun the data response that carries the expected count).
    acks_needed: i64,
}

/// In-flight transaction at the home bank.
#[derive(Debug, Clone)]
enum HomeTx {
    /// Waiting for off-chip data; `req` is replayed when it arrives.
    MemFetch { req: Msg },
    /// Home supplied (or will supply) the data itself; waiting Unblock.
    Served,
    /// Request forwarded to the L1 owner.
    Forwarded { wb_applied: bool, unblocked: bool, bounced: Option<Msg> },
    /// Directory-entry eviction: collecting invalidation acks (and the
    /// owner's writeback, when there was an owner).
    Evict { acks_left: u32, wb_pending: bool },
}

/// The flat directory protocol.
#[derive(Clone)]
pub struct Directory {
    spec: ChipSpec,
    stats: ProtoStats,
    authority: VersionAuthority,
    mem: MemoryImage,
    l1: Vec<SetAssoc<L1Line>>,
    mshr: Vec<Mshr<MshrEntry>>,
    l2: Vec<SetAssoc<L2Entry>>,
    dircache: Vec<SetAssoc<DirEntry>>,
    queues: Vec<BlockQueues>,
    tx: Vec<FxHashMap<Block, HomeTx>>,
    /// Deferred invalidation fan-outs (flushed into the Ctx at the end of
    /// each dispatch; avoids borrowing tangles in nested evictions).
    pending_evict_invs: Vec<(Tile, Block, u64)>,
    /// Deferred memory write-back ops for driver accounting.
    pending_mem_writes: Vec<(Tile, Block)>,
}

cmpsim_engine::impl_snap!(L1Line { state, version });
cmpsim_engine::impl_snap!(L2Entry { dirty, version, sharers, owner });
cmpsim_engine::impl_snap!(DirEntry { sharers, owner });
cmpsim_engine::impl_snap!(MshrEntry { write, issued_at, have_data, fill, acks_needed });

impl cmpsim_engine::Snap for L1State {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        w.u8(match self {
            L1State::Shared => 0,
            L1State::Exclusive => 1,
            L1State::Modified => 2,
        });
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        match r.u8()? {
            0 => Ok(L1State::Shared),
            1 => Ok(L1State::Exclusive),
            2 => Ok(L1State::Modified),
            tag => Err(cmpsim_engine::SnapError::BadTag { what: "directory::L1State", tag }),
        }
    }
}

impl cmpsim_engine::Snap for HomeTx {
    fn save(&self, w: &mut cmpsim_engine::SnapWriter) {
        match self {
            HomeTx::MemFetch { req } => {
                w.u8(0);
                req.save(w);
            }
            HomeTx::Served => w.u8(1),
            HomeTx::Forwarded { wb_applied, unblocked, bounced } => {
                w.u8(2);
                wb_applied.save(w);
                unblocked.save(w);
                bounced.save(w);
            }
            HomeTx::Evict { acks_left, wb_pending } => {
                w.u8(3);
                acks_left.save(w);
                wb_pending.save(w);
            }
        }
    }

    fn load(r: &mut cmpsim_engine::SnapReader<'_>) -> Result<Self, cmpsim_engine::SnapError> {
        use cmpsim_engine::Snap;
        Ok(match r.u8()? {
            0 => HomeTx::MemFetch { req: Snap::load(r)? },
            1 => HomeTx::Served,
            2 => HomeTx::Forwarded {
                wb_applied: Snap::load(r)?,
                unblocked: Snap::load(r)?,
                bounced: Snap::load(r)?,
            },
            3 => HomeTx::Evict { acks_left: Snap::load(r)?, wb_pending: Snap::load(r)? },
            tag => {
                return Err(cmpsim_engine::SnapError::BadTag { what: "directory::HomeTx", tag })
            }
        })
    }
}

impl Directory {
    /// Builds the protocol for `spec`.
    pub fn new(spec: ChipSpec) -> Self {
        let n = spec.tiles();
        Self {
            l1: (0..n).map(|_| SetAssoc::new(spec.l1)).collect(),
            mshr: (0..n).map(|_| Mshr::new(8)).collect(),
            l2: (0..n).map(|_| SetAssoc::new(spec.l2)).collect(),
            dircache: (0..n).map(|_| SetAssoc::new(spec.aux_home)).collect(),
            queues: (0..n).map(|_| BlockQueues::default()).collect(),
            tx: (0..n).map(|_| FxHashMap::default()).collect(),
            pending_evict_invs: Vec::new(),
            pending_mem_writes: Vec::new(),
            spec,
            stats: ProtoStats::default(),
            authority: VersionAuthority::default(),
            mem: MemoryImage::default(),
        }
    }

    fn home(&self, block: Block) -> Tile {
        self.spec.home_of(block)
    }

    /// Diagnostics: total resident (L2 data lines, directory-cache
    /// entries) across all banks.
    #[doc(hidden)]
    pub fn occupancy(&self) -> (usize, usize) {
        (
            self.l2.iter().map(|b| b.len()).sum(),
            self.dircache.iter().map(|b| b.len()).sum(),
        )
    }

    // ---------------------------------------------------------- L1 side

    fn start_miss(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, write: bool) {
        self.stats.l1_misses.inc();
        if write {
            self.stats.write_misses.inc();
        }
        self.mshr[tile].alloc(
            block,
            MshrEntry { write, issued_at: ctx.now, have_data: false, fill: None, acks_needed: 0 },
        );
        let home = self.home(block);
        ctx.send(
            Msg {
                kind: MsgKind::Req(ReqInfo {
                    requestor: tile,
                    write,
                    forwarder: None,
                    via_home: false,
                    predicted: false,
                    vouched: false,
                    hops: 0,
                }),
                block,
                src: Node::L1(tile),
                dst: Node::L2(home),
            },
            self.spec.lat.l1_tag,
        );
    }

    fn try_complete(&mut self, ctx: &mut Ctx, tile: Tile, block: Block) {
        let Some(e) = self.mshr[tile].get(block) else { return };
        if !e.have_data || e.acks_needed != 0 {
            return;
        }
        let e = self.mshr[tile].release(block).expect("checked above");
        let fill = e.fill.expect("have_data implies fill");
        let version = if e.write { self.authority.commit(block) } else { fill.version };
        let state = if e.write {
            L1State::Modified
        } else if fill.exclusive {
            L1State::Exclusive
        } else {
            L1State::Shared
        };
        self.install_l1(ctx, tile, block, L1Line { state, version });
        self.stats.l1_data_write.inc();
        let class = match fill.supplier {
            Supplier::Memory => MissClass::Memory,
            Supplier::HomeL2 => MissClass::UnpredictedHome,
            _ => MissClass::UnpredictedForwarded,
        };
        self.stats.record_miss(class, ctx.now - e.issued_at);
        ctx.complete(tile, block, self.spec.lat.l1_data);
        let became_owner = e.write || fill.exclusive;
        ctx.send(
            Msg {
                kind: MsgKind::Unblock { became_owner },
                block,
                src: Node::L1(tile),
                dst: Node::L2(self.home(block)),
            },
            0,
        );
    }

    /// Installs (or updates) an L1 line, running the replacement protocol
    /// for any victim.
    fn install_l1(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        if let Some(existing) = self.l1[tile].get_mut(block) {
            *existing = line;
            return;
        }
        let (victims, _overflow) =
            self.l1[tile].insert_filtered(block, line, |_| true);
        for (vb, vline) in victims {
            self.evict_l1_line(ctx, tile, vb, vline);
        }
    }

    fn evict_l1_line(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, line: L1Line) {
        match line.state {
            // Silent eviction; the directory's sharer bit goes stale and
            // is cleaned up by a future (harmless) invalidation.
            L1State::Shared => {}
            L1State::Exclusive | L1State::Modified => {
                self.stats.l1_repl_transactions.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::OwnershipToHome {
                            dirty: line.state == L1State::Modified,
                            version: line.version,
                            propos: [None; MAX_AREAS],
                            sharers: 0,
                            former_stays_provider: false,
                        },
                        block,
                        src: Node::L1(tile),
                        dst: Node::L2(self.home(block)),
                    },
                    self.spec.lat.l1_tag,
                );
            }
        }
    }

    fn l1_handle_forwarded(&mut self, ctx: &mut Ctx, tile: Tile, msg: Msg, req: ReqInfo) {
        self.stats.l1_tag.inc();
        let lat = self.spec.lat;
        let can_serve =
            matches!(self.l1[tile].peek(msg.block).map(|l| l.state), Some(L1State::Exclusive) | Some(L1State::Modified));
        if !can_serve {
            // Bounce: we are no longer the owner (eviction in flight).
            ctx.send(
                Msg {
                    kind: MsgKind::Req(ReqInfo { forwarder: Some(tile), ..req }),
                    block: msg.block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(msg.block)),
                },
                lat.l1_tag,
            );
            return;
        }
        let line = self.l1[tile].get_mut(msg.block).expect("checked");
        let (version, was_dirty) = (line.version, line.state == L1State::Modified);
        self.stats.l1_data_read.inc();
        if req.write {
            // Hand everything to the writer and drop our copy.
            self.l1[tile].remove(msg.block);
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo {
                        exclusive: true,
                        dirty: was_dirty,
                        version,
                        supplier: Supplier::OwnerL1,
                        ..DataInfo::shared(version, Supplier::OwnerL1)
                    }),
                    block: msg.block,
                    src: Node::L1(tile),
                    dst: Node::L1(req.requestor),
                },
                lat.l1_hit(),
            );
        } else {
            // Downgrade to shared; data to requestor and home.
            line.state = L1State::Shared;
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo::shared(version, Supplier::OwnerL1)),
                    block: msg.block,
                    src: Node::L1(tile),
                    dst: Node::L1(req.requestor),
                },
                lat.l1_hit(),
            );
            ctx.send(
                Msg {
                    kind: MsgKind::OwnershipToHome {
                        dirty: was_dirty,
                        version,
                        propos: [None; MAX_AREAS],
                        sharers: bit(tile),
                        former_stays_provider: false,
                    },
                    block: msg.block,
                    src: Node::L1(tile),
                    dst: Node::L2(self.home(msg.block)),
                },
                lat.l1_hit(),
            );
        }
    }

    fn l1_handle_inv(&mut self, ctx: &mut Ctx, tile: Tile, block: Block, reply_to: Node) {
        self.stats.l1_tag.inc();
        if let Some(line) = self.l1[tile].remove(block) {
            if matches!(line.state, L1State::Exclusive | L1State::Modified) {
                // Directory-eviction invalidation reached an owner: the
                // data must survive, so write it back alongside the ack.
                ctx.send(
                    Msg {
                        kind: MsgKind::OwnershipToHome {
                            dirty: line.state == L1State::Modified,
                            version: line.version,
                            propos: [None; MAX_AREAS],
                            sharers: 0,
                            former_stays_provider: false,
                        },
                        block,
                        src: Node::L1(tile),
                        dst: Node::L2(self.home(block)),
                    },
                    self.spec.lat.l1_tag,
                );
            }
        }
        ctx.send(
            Msg { kind: MsgKind::Ack, block, src: Node::L1(tile), dst: reply_to },
            self.spec.lat.l1_tag,
        );
    }

    // -------------------------------------------------------- home side

    /// Directory info for `block`, wherever it lives.
    fn dir_info(&self, home: Tile, block: Block) -> Option<(u64, Option<Tile>)> {
        if let Some(e) = self.l2[home].peek(block) {
            return Some((e.sharers, e.owner));
        }
        self.dircache[home].peek(block).map(|d| (d.sharers, d.owner))
    }

    fn dir_update(&mut self, home: Tile, block: Block, f: impl FnOnce(&mut u64, &mut Option<Tile>)) {
        self.stats.dir_access.inc();
        if let Some(e) = self.l2[home].peek_mut(block) {
            f(&mut e.sharers, &mut e.owner);
            return;
        }
        if let Some(d) = self.dircache[home].peek_mut(block) {
            f(&mut d.sharers, &mut d.owner);
            return;
        }
        // No dir info: materialize a dircache entry.
        let mut sharers = 0;
        let mut owner = None;
        f(&mut sharers, &mut owner);
        if sharers != 0 || owner.is_some() {
            self.dircache_insert(home, block, DirEntry { sharers, owner });
        }
    }

    /// Pending dircache insertions are applied outside `dir_update` to
    /// keep borrow scopes simple; evicted victims trigger full
    /// invalidation transactions.
    fn dircache_insert(&mut self, home: Tile, block: Block, entry: DirEntry) {
        let queues = &self.queues[home];
        let (victims, _overflow) =
            self.dircache[home].insert_filtered(block, entry, |b| !queues.is_busy(b));
        for (vb, vd) in victims {
            self.start_dir_eviction(home, vb, vd);
        }
    }

    /// Invalidate every copy of a block whose directory entry was
    /// evicted (NCID: only this eviction kills L1 copies).
    fn start_dir_eviction(&mut self, home: Tile, block: Block, dirent: DirEntry) {
        self.stats.l2_evictions.inc();
        let mut targets = dirent.sharers;
        if let Some(o) = dirent.owner {
            targets |= bit(o);
        }
        let n = targets.count_ones();
        if n == 0 {
            return;
        }
        self.queues[home].set_busy(block);
        self.tx[home].insert(
            block,
            HomeTx::Evict { acks_left: n, wb_pending: dirent.owner.is_some() },
        );
        self.pending_evict_invs.push((home, block, targets));
    }

    fn flush_evict_invs(&mut self, ctx: &mut Ctx) {
        let pend = std::mem::take(&mut self.pending_evict_invs);
        for (home, block, targets) in pend {
            for t in iter_bits(targets) {
                self.stats.invalidations.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::Inv { reply_to: Node::L2(home), version: 0 },
                        block,
                        src: Node::L2(home),
                        dst: Node::L1(t),
                    },
                    self.spec.lat.l2_tag,
                );
            }
        }
    }

    /// Handles an L2 data-array victim: directory info survives in the
    /// dircache (NCID), dirty data that nobody owns goes to memory.
    fn handle_l2_victim(&mut self, home: Tile, block: Block, entry: L2Entry) {
        // Dirty data always goes to memory — even when an L1 owner
        // exists: that owner may hold a *clean* exclusive copy (granted E
        // from this dirty line) and would evict silently later.
        if entry.dirty {
            self.stats.mem_writes.inc();
            self.mem.write_back(block, entry.version);
            self.pending_mem_writes.push((home, block));
        }
        if entry.sharers != 0 || entry.owner.is_some() {
            self.dircache_insert(home, block, DirEntry { sharers: entry.sharers, owner: entry.owner });
        }
    }

    fn l2_insert(&mut self, home: Tile, block: Block, entry: L2Entry) {
        self.stats.l2_data_write.inc();
        let queues = &self.queues[home];
        let (victims, _overflow) = self.l2[home].insert_filtered(block, entry, |b| !queues.is_busy(b));
        for (vb, ve) in victims {
            self.handle_l2_victim(home, vb, ve);
        }
        // Directory info must be unique: drop any dircache duplicate.
        if let Some(d) = self.dircache[home].remove(block) {
            let e = self.l2[home].peek_mut(block).expect("just inserted");
            e.sharers |= d.sharers;
            if e.owner.is_none() {
                e.owner = d.owner;
            }
        }
    }

    /// Serves a request for which the home can answer right now (owner is
    /// not an L1, data present or fetched). Sets the `Served` transaction.
    fn serve_from_home(&mut self, ctx: &mut Ctx, home: Tile, msg: Msg, req: ReqInfo, supplier: Supplier) {
        let block = msg.block;
        let entry = self.l2[home].get_mut(block).expect("serve requires data");
        let (version, dirty, sharers) = (entry.version, entry.dirty, entry.sharers);
        self.stats.l2_data_read.inc();
        let others = sharers & !bit(req.requestor);
        let lat = self.spec.lat;
        if req.write {
            let n = others.count_ones();
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo {
                        exclusive: true,
                        acks_sharers: n,
                        dirty,
                        version,
                        supplier,
                        ..DataInfo::shared(version, supplier)
                    }),
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(req.requestor),
                },
                lat.l2_access(),
            );
            for t in iter_bits(others) {
                self.stats.invalidations.inc();
                ctx.send(
                    Msg {
                        kind: MsgKind::Inv { reply_to: Node::L1(req.requestor), version },
                        block,
                        src: Node::L2(home),
                        dst: Node::L1(t),
                    },
                    lat.l2_tag,
                );
            }
        } else {
            let exclusive = sharers == 0;
            ctx.send(
                Msg {
                    kind: MsgKind::Data(DataInfo {
                        exclusive,
                        dirty,
                        version,
                        supplier,
                        ..DataInfo::shared(version, supplier)
                    }),
                    block,
                    src: Node::L2(home),
                    dst: Node::L1(req.requestor),
                },
                lat.l2_access(),
            );
        }
        self.queues[home].set_busy(block);
        self.tx[home].insert(block, HomeTx::Served);
    }

    /// Request dispatch at a non-busy home.
    fn home_dispatch(&mut self, ctx: &mut Ctx, home: Tile, msg: Msg, req: ReqInfo) {
        let block = msg.block;
        self.stats.l2_tag.inc();
        self.stats.dir_access.inc();
        let dir = self.dir_info(home, block);
        self.stats.home_lookups.inc();
        if dir.is_some() {
            self.stats.home_hits.inc();
        }
        match dir {
            Some((_, Some(owner))) => {
                // Owner in an L1: forward (3-hop path).
                self.queues[home].set_busy(block);
                self.tx[home].insert(
                    block,
                    HomeTx::Forwarded { wb_applied: false, unblocked: false, bounced: None },
                );
                ctx.send(
                    Msg {
                        kind: MsgKind::Req(ReqInfo { via_home: true, forwarder: None, ..req }),
                        block,
                        src: Node::L2(home),
                        dst: Node::L1(owner),
                    },
                    self.spec.lat.l2_tag,
                );
            }
            _ => {
                if self.l2[home].contains(block) {
                    self.l2[home].touch(block);
                    self.serve_from_home(ctx, home, msg, req, Supplier::HomeL2);
                } else {
                    // Fetch from memory (dir info, if any, stays put).
                    self.queues[home].set_busy(block);
                    self.tx[home].insert(block, HomeTx::MemFetch { req: msg });
                    self.stats.mem_reads.inc();
                    ctx.mem_read(block, home, self.spec.lat.l2_tag);
                }
            }
        }
    }

    fn home_handle_memdata(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        let Some(HomeTx::MemFetch { req }) = self.tx[home].remove(&block) else {
            panic!("MemData without MemFetch tx for block {block:#x}");
        };
        let version = self.mem.version(block);
        // Preserve sharers recorded in the dircache (blocks whose data
        // was evicted while sharers remained).
        let prior = self.dircache[home].remove(block);
        let sharers = prior.as_ref().map(|d| d.sharers).unwrap_or(0);
        self.l2_insert(home, block, L2Entry { dirty: false, version, sharers, owner: None });
        // The busy flag stays held; serving transitions the tx to Served.
        let MsgKind::Req(req) = req.kind else { panic!("MemFetch holds a request") };
        let msg = Msg { kind: MsgKind::Req(req), block, src: Node::L2(home), dst: Node::L2(home) };
        self.serve_from_home(ctx, home, msg, req, Supplier::Memory);
    }

    /// Applies an ownership writeback (forward-read downgrade, owner
    /// replacement, or directory-eviction response).
    #[allow(clippy::too_many_arguments)]
    fn apply_wb(
        &mut self,
        ctx: &mut Ctx,
        home: Tile,
        block: Block,
        src: Tile,
        dirty: bool,
        version: u64,
        stay_sharers: u64,
    ) {
        // Directory-eviction transactions consume the writeback
        // specially: data goes straight to memory.
        if let Some(HomeTx::Evict { wb_pending, .. }) = self.tx[home].get_mut(&block) {
            if dirty {
                self.stats.mem_writes.inc();
                self.mem.write_back(block, version);
                self.pending_mem_writes.push((home, block));
            }
            *wb_pending = false;
            self.finish_evict_if_done(ctx, home, block);
            return;
        }
        // Normal path: owner returns to home.
        let owner_matches = matches!(self.dir_info(home, block), Some((_, Some(o))) if o == src);
        if owner_matches {
            self.dir_update(home, block, |sharers, owner| {
                *owner = None;
                *sharers |= stay_sharers;
            });
        } else if self.dir_info(home, block).is_none() && !dirty {
            // Clean writeback for a block whose dir info vanished
            // (eviction already completed): nothing to do.
            return;
        } else {
            self.dir_update(home, block, |sharers, owner| {
                if *owner == Some(src) {
                    *owner = None;
                }
                *sharers |= stay_sharers;
            });
        }
        if dirty {
            if self.l2[home].contains(block) {
                let e = self.l2[home].peek_mut(block).expect("contains");
                e.dirty = true;
                e.version = version;
                self.stats.l2_data_write.inc();
            } else {
                let prior = self.dircache[home].remove(block);
                let (sharers, owner) =
                    prior.map(|d| (d.sharers, d.owner)).unwrap_or((0, None));
                self.l2_insert(home, block, L2Entry { dirty: true, version, sharers, owner });
            }
        }
        // If a forwarded transaction was waiting on this writeback,
        // progress it.
        let mut redispatch = None;
        if let Some(HomeTx::Forwarded { wb_applied, bounced, unblocked }) =
            self.tx[home].get_mut(&block)
        {
            *wb_applied = true;
            if let Some(b) = bounced.take() {
                redispatch = Some(b);
            } else if *unblocked {
                self.tx[home].remove(&block);
                for m in self.queues[home].release(block) {
                    ctx.replay(m);
                }
            }
        }
        if let Some(b) = redispatch {
            // Busy flag and pending queue stay held; dispatch the bounced
            // request anew against the now-updated directory state.
            self.tx[home].remove(&block);
            let MsgKind::Req(req) = b.kind else { unreachable!("bounced is a request") };
            self.home_dispatch(ctx, home, b, req);
        }
    }

    fn finish_evict_if_done(&mut self, ctx: &mut Ctx, home: Tile, block: Block) {
        if let Some(HomeTx::Evict { acks_left, wb_pending }) = self.tx[home].get(&block) {
            if *acks_left == 0 && !*wb_pending {
                self.tx[home].remove(&block);
                for m in self.queues[home].release(block) {
                    ctx.replay(m);
                }
            }
        }
    }

    fn home_handle_unblock(&mut self, ctx: &mut Ctx, home: Tile, block: Block, src: Tile, became_owner: bool) {
        self.dir_update(home, block, |sharers, owner| {
            if became_owner {
                *owner = Some(src);
                *sharers = 0;
            } else {
                *sharers |= bit(src);
            }
        });
        let release = match self.tx[home].get_mut(&block) {
            Some(HomeTx::Served) => true,
            Some(HomeTx::Forwarded { unblocked, wb_applied, bounced }) => {
                *unblocked = true;
                // Writes expect no writeback; reads do.
                *wb_applied |= became_owner;
                *wb_applied && bounced.is_none()
            }
            other => panic!("Unblock without transaction: {other:?}"),
        };
        if release {
            self.tx[home].remove(&block);
            for m in self.queues[home].release(block) {
                ctx.replay(m);
            }
        }
    }
}

impl Directory {
    /// Flushes deferred work (fan-out invalidations, memory write-backs)
    /// into the Ctx at the end of every dispatch. The memory image is
    /// updated eagerly; these ops exist for network/DRAM accounting.
    fn drain_deferred(&mut self, ctx: &mut Ctx) {
        self.flush_evict_invs(ctx);
        let writes = std::mem::take(&mut self.pending_mem_writes);
        for (home, block) in writes {
            ctx.mem_write(block, home, 0);
        }
    }
}

impl CoherenceProtocol for Directory {
    fn kind(&self) -> ProtocolKind {
        ProtocolKind::Directory
    }

    fn spec(&self) -> &ChipSpec {
        &self.spec
    }

    fn core_access(
        &mut self,
        ctx: &mut Ctx,
        tile: Tile,
        block: Block,
        write: bool,
    ) -> Result<AccessOutcome, ProtoError> {
        self.stats.accesses.inc();
        self.stats.l1_tag.inc();
        if self.mshr[tile].contains(block) {
            return Ok(AccessOutcome::Blocked { reason: BlockReason::MshrConflict });
        }
        let lat = self.spec.lat;
        let hit = match self.l1[tile].get_mut(block) {
            Some(line) => match (line.state, write) {
                (L1State::Shared, false)
                | (L1State::Exclusive, false)
                | (L1State::Modified, _) => true,
                (L1State::Exclusive, true) => {
                    line.state = L1State::Modified;
                    line.version = 0; // placeholder, set below
                    true
                }
                (L1State::Shared, true) => false,
            },
            None => false,
        };
        if hit {
            if write {
                let v = self.authority.commit(block);
                let line = self.l1[tile].peek_mut(block).expect("hit");
                line.version = v;
                line.state = L1State::Modified;
                self.stats.l1_data_write.inc();
            } else {
                self.stats.l1_data_read.inc();
            }
            self.stats.l1_hits.inc();
            return Ok(AccessOutcome::Hit { latency: lat.l1_hit() });
        }
        self.start_miss(ctx, tile, block, write);
        self.drain_deferred(ctx);
        Ok(AccessOutcome::Miss)
    }

    fn handle(&mut self, ctx: &mut Ctx, msg: Msg) -> Result<(), ProtoError> {
        match (msg.dst, msg.kind) {
            // ---------------- home (L2 bank) side
            (Node::L2(home), MsgKind::Req(req)) => {
                self.stats.l2_tag.inc();
                if self.queues[home].is_busy(msg.block) {
                    // A bounced request belongs to the transaction in
                    // flight; anything else waits its turn.
                    if req.forwarder.is_some() {
                        match self.tx[home].get_mut(&msg.block) {
                            Some(HomeTx::Forwarded { wb_applied, bounced, .. }) => {
                                if *wb_applied {
                                    let m = Msg { kind: MsgKind::Req(ReqInfo { forwarder: None, ..req }), ..msg };
                                    self.tx[home].remove(&msg.block);
                                    self.home_dispatch(ctx, home, m, ReqInfo { forwarder: None, ..req });
                                } else {
                                    *bounced = Some(Msg {
                                        kind: MsgKind::Req(ReqInfo { forwarder: None, ..req }),
                                        ..msg
                                    });
                                }
                            }
                            _ => self.queues[home].enqueue(msg),
                        }
                    } else {
                        self.queues[home].enqueue(msg);
                    }
                } else {
                    self.home_dispatch(ctx, home, msg, req);
                }
            }
            (Node::L2(home), MsgKind::MemData) => {
                self.home_handle_memdata(ctx, home, msg.block);
            }
            (Node::L2(home), MsgKind::OwnershipToHome { dirty, version, sharers, .. }) => {
                self.stats.l2_tag.inc();
                self.apply_wb(ctx, home, msg.block, msg.src.tile(), dirty, version, sharers);
            }
            (Node::L2(home), MsgKind::Unblock { became_owner }) => {
                self.home_handle_unblock(ctx, home, msg.block, msg.src.tile(), became_owner);
            }
            (Node::L2(home), MsgKind::Ack) => {
                if let Some(HomeTx::Evict { acks_left, .. }) = self.tx[home].get_mut(&msg.block) {
                    *acks_left -= 1;
                    self.finish_evict_if_done(ctx, home, msg.block);
                } else {
                    return Err(ProtoError::new(
                        ProtocolKind::Directory,
                        msg.dst,
                        msg.block,
                        format!("stray eviction ack at home (no Evict transaction; from {:?})", msg.src),
                    ));
                }
            }
            // ---------------- L1 side
            (Node::L1(tile), MsgKind::Req(req)) => {
                self.l1_handle_forwarded(ctx, tile, msg, req);
            }
            (Node::L1(tile), MsgKind::Data(d)) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::Directory,
                        msg.dst,
                        msg.block,
                        format!("data fill without MSHR entry ({:?} from {:?})", d.supplier, msg.src),
                    ));
                };
                e.have_data = true;
                e.acks_needed += d.acks_sharers as i64;
                e.fill = Some(d);
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Ack) => {
                let Some(e) = self.mshr[tile].get_mut(msg.block) else {
                    return Err(ProtoError::new(
                        ProtocolKind::Directory,
                        msg.dst,
                        msg.block,
                        format!("invalidation ack without MSHR entry (from {:?})", msg.src),
                    ));
                };
                e.acks_needed -= 1;
                self.try_complete(ctx, tile, msg.block);
            }
            (Node::L1(tile), MsgKind::Inv { reply_to, .. }) => {
                self.l1_handle_inv(ctx, tile, msg.block, reply_to);
            }
            _ => return Err(ProtoError::unexpected(ProtocolKind::Directory, &msg)),
        }
        self.drain_deferred(ctx);
        Ok(())
    }

    fn stats(&self) -> &ProtoStats {
        &self.stats
    }

    fn stats_mut(&mut self) -> &mut ProtoStats {
        &mut self.stats
    }

    fn reset_stats(&mut self) {
        self.stats = ProtoStats::default();
    }

    fn quiescent(&self) -> bool {
        self.mshr.iter().all(|m| m.is_empty())
            && self.queues.iter().all(|q| q.idle())
            && self.tx.iter().all(|t| t.is_empty())
    }

    fn clone_box(&self) -> Box<dyn CoherenceProtocol> {
        Box::new(self.clone())
    }

    crate::common::snap_state_methods!(
        stats,
        authority,
        mem,
        l1,
        mshr,
        l2,
        dircache,
        queues,
        tx,
        pending_evict_invs,
        pending_mem_writes,
    );

    fn occupancy(&self) -> Occupancy {
        let (l1_lines, l1_capacity) = occupancy_of(&self.l1);
        let (l2_lines, l2_capacity) = occupancy_of(&self.l2);
        let (aux_lines, aux_capacity) = occupancy_of(&self.dircache);
        Occupancy { l1_lines, l1_capacity, l2_lines, l2_capacity, aux_lines, aux_capacity }
    }

    fn snapshot(&self) -> ChipSnapshot {
        let mut snap = ChipSnapshot::new(self.spec.tiles());
        for (t, l1) in self.l1.iter().enumerate() {
            for (block, line) in l1.iter() {
                let state = match line.state {
                    L1State::Shared => CopyState::Shared,
                    L1State::Exclusive => CopyState::Owner { exclusive: true, dirty: false },
                    L1State::Modified => CopyState::Owner { exclusive: true, dirty: true },
                };
                snap.l1[t].insert(block, CopyView { state, version: line.version });
            }
        }
        for bank in &self.l2 {
            for (block, e) in bank.iter() {
                snap.l2.insert(
                    block,
                    L2View { has_data: true, version: e.version, dirty: e.dirty, owner_in_l1: e.owner },
                );
            }
        }
        for bank in &self.dircache {
            for (block, d) in bank.iter() {
                snap.l2.entry(block).or_insert(L2View {
                    has_data: false,
                    version: 0,
                    dirty: false,
                    owner_in_l1: d.owner,
                });
            }
        }
        for (b, v) in self.authority.iter() {
            snap.authority.insert(*b, *v);
        }
        for (b, _) in self.authority.iter() {
            snap.memory.insert(*b, self.mem.version(*b));
        }
        // Coverage: the directory's full map must name every copy.
        for bank in &self.l2 {
            for (block, e) in bank.iter() {
                let mut bits = e.sharers;
                if let Some(o) = e.owner {
                    bits |= bit(o);
                }
                snap.recorded.insert(block, bits);
            }
        }
        for bank in &self.dircache {
            for (block, d) in bank.iter() {
                let mut bits = d.sharers;
                if let Some(o) = d.owner {
                    bits |= bit(o);
                }
                snap.recorded.entry(block).and_modify(|v| *v |= bits).or_insert(bits);
            }
        }
        snap
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::harness::{random_stress, Harness};

    fn harness() -> Harness<Directory> {
        Harness::new(Directory::new(ChipSpec::small()))
    }

    #[test]
    fn single_read_fetches_from_memory() {
        let mut h = harness();
        h.push_access(0, 100, false);
        h.run_checked(1000);
        assert_eq!(h.total_completed(), 1);
        assert_eq!(h.proto.stats().mem_reads.get(), 1);
        assert_eq!(h.proto.stats().class_count(MissClass::Memory), 1);
    }

    #[test]
    fn second_read_hits_home_l2() {
        let mut h = harness();
        h.push_access(0, 100, false);
        h.push_access(1, 100, false);
        h.run_checked(2000);
        // Tile 0 got E from memory; tile 1's read is forwarded to tile 0.
        assert_eq!(h.proto.stats().mem_reads.get(), 1);
        assert_eq!(h.proto.stats().class_count(MissClass::UnpredictedForwarded), 1);
    }

    #[test]
    fn repeated_access_is_a_hit() {
        let mut h = harness();
        h.push_access(0, 100, false);
        h.push_access(0, 100, false);
        h.push_access(0, 100, true); // E -> M silent upgrade
        h.run_checked(1000);
        assert_eq!(h.proto.stats().l1_hits.get(), 2);
        assert_eq!(h.proto.stats().l1_misses.get(), 1);
    }

    #[test]
    fn write_invalidates_sharers() {
        let mut h = harness();
        // Three tiles read, then tile 3 writes.
        for t in 0..3 {
            h.push_access(t, 100, false);
        }
        h.run_checked(4000);
        h.push_access(3, 100, true);
        h.run_checked(4000);
        // After the write, only tile 3 has a copy.
        let snap = h.proto.snapshot();
        for t in 0..3 {
            assert!(!snap.l1[t].contains_key(&100), "tile {t} kept a stale copy");
        }
        assert!(matches!(
            snap.l1[3].get(&100).unwrap().state,
            CopyState::Owner { exclusive: true, dirty: true }
        ));
        assert!(h.proto.stats().invalidations.get() >= 1);
    }

    #[test]
    fn write_then_read_transfers_dirty_data() {
        let mut h = harness();
        h.push_access(0, 100, true);
        h.run_checked(1000);
        h.push_access(1, 100, false);
        h.run_checked(2000);
        let snap = h.proto.snapshot();
        let v = *snap.authority.get(&100).unwrap();
        assert_eq!(v, 1);
        assert_eq!(snap.l1[1].get(&100).unwrap().version, v);
        // Former owner downgraded to shared.
        assert!(matches!(snap.l1[0].get(&100).unwrap().state, CopyState::Shared));
    }

    #[test]
    fn ping_pong_writes_serialize() {
        let mut h = harness();
        for i in 0..10 {
            h.push_access(i % 2, 64, true);
        }
        h.run_checked(20_000);
        let snap = h.proto.snapshot();
        assert_eq!(*snap.authority.get(&64).unwrap(), 10);
    }

    #[test]
    fn capacity_evictions_write_back() {
        let mut h = harness();
        // The tiny L1 (8 sets x 2 ways) overflows with same-set writes:
        // blocks s, s+16, s+32 ... map to one set (16 tiles).
        let tiles = h.proto.spec().tiles();
        for i in 0..6u64 {
            h.push_access(0, i * tiles as u64, true);
        }
        h.run_checked(20_000);
        assert!(h.proto.stats().l1_repl_transactions.get() >= 4);
    }

    #[test]
    fn stress_read_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xd1, 60, 40, 0.1);
    }

    #[test]
    fn stress_write_heavy() {
        let mut h = harness();
        random_stress(&mut h, 0xd2, 60, 24, 0.6);
    }

    #[test]
    fn stress_high_contention() {
        let mut h = harness();
        random_stress(&mut h, 0xd3, 50, 4, 0.5);
    }

    #[test]
    fn stress_tiny_chip_capacity_pressure() {
        let mut h = Harness::new(Directory::new(ChipSpec::tiny()));
        random_stress(&mut h, 0xd4, 80, 64, 0.3);
    }

    #[test]
    fn stress_many_seeds() {
        for seed in 0..6 {
            let mut h = harness();
            random_stress(&mut h, 0xe000 + seed, 30, 16, 0.4);
        }
    }
}
