//! Whole-chip coherence invariants.
//!
//! Protocols expose a [`ChipSnapshot`] of every cached copy plus the
//! write-serialization authority and the memory image. At quiescence (no
//! transaction in flight anywhere) the following must hold exactly:
//!
//! 1. **Single owner** — at most one L1 owns a block.
//! 2. **Exclusivity** — an exclusive/modified owner excludes every other
//!    L1 copy of the block.
//! 3. **No stale copies** — every valid L1 copy and every current L2 copy
//!    holds the latest committed version (a write that completed must
//!    have invalidated all stale copies).
//! 4. **Durability** — if no cache holds a block, memory (or the L2) must
//!    hold its latest version: writebacks are never lost.
//!
//! The randomized stress tests drive tens of thousands of accesses
//! through each protocol and call [`check`] at every quiescent point.

use crate::common::{Block, Tile};
use std::collections::BTreeMap;

/// State of one L1 copy, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyState {
    /// Plain sharer.
    Shared,
    /// Provider (DiCo-Providers / DiCo-Arin): a sharer that may supply
    /// data to in-area reads.
    Provider,
    /// Owner; `exclusive` means no other copy may exist, `dirty` means
    /// memory is stale.
    Owner {
        /// No other copies exist (E/M as opposed to O).
        exclusive: bool,
        /// Block modified with respect to memory.
        dirty: bool,
    },
}

/// One L1 copy.
#[derive(Debug, Clone, Copy)]
pub struct CopyView {
    /// Coherence state.
    pub state: CopyState,
    /// Data version held.
    pub version: u64,
}

/// The home L2 bank's view of a block.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2View {
    /// The L2 data array holds the block.
    pub has_data: bool,
    /// Version of the L2 copy (meaningful when `has_data`).
    pub version: u64,
    /// L2 copy modified with respect to memory.
    pub dirty: bool,
    /// The home believes this L1 holds the ownership.
    pub owner_in_l1: Option<Tile>,
}

/// Everything the checker needs.
#[derive(Debug, Clone, Default)]
pub struct ChipSnapshot {
    /// Per-tile L1 contents.
    pub l1: Vec<BTreeMap<Block, CopyView>>,
    /// Home-bank views, keyed by block.
    pub l2: BTreeMap<Block, L2View>,
    /// Latest committed version per block.
    pub authority: BTreeMap<Block, u64>,
    /// Memory image versions.
    pub memory: BTreeMap<Block, u64>,
    /// Directory conservativeness: for blocks where the protocol keeps
    /// precise sharer information, the chip-wide tile bit-set of copies
    /// it *believes* exist. Every real copy must be covered (stale bits
    /// are fine — silent evictions over-approximate). Blocks tracked by
    /// broadcast (DiCo-Arin's shared-between-areas state) are absent.
    pub recorded: BTreeMap<Block, u64>,
}

impl ChipSnapshot {
    /// Creates an empty snapshot for `tiles` tiles.
    pub fn new(tiles: usize) -> Self {
        Self { l1: vec![BTreeMap::new(); tiles], ..Default::default() }
    }

    /// Every block that appears anywhere in the snapshot.
    fn all_blocks(&self) -> Vec<Block> {
        let mut blocks: Vec<Block> = self
            .l1
            .iter()
            .flat_map(|m| m.keys().copied())
            .chain(self.l2.keys().copied())
            .chain(self.authority.keys().copied())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

/// Checks all invariants; returns every violation found (empty = pass).
pub fn check(snap: &ChipSnapshot) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();

    for block in snap.all_blocks() {
        let copies: Vec<(Tile, &CopyView)> = snap
            .l1
            .iter()
            .enumerate()
            .filter_map(|(t, m)| m.get(&block).map(|c| (t, c)))
            .collect();
        let authority = snap.authority.get(&block).copied().unwrap_or(0);
        let l2 = snap.l2.get(&block).copied().unwrap_or_default();

        // 1. Single owner.
        let owners: Vec<Tile> = copies
            .iter()
            .filter(|(_, c)| matches!(c.state, CopyState::Owner { .. }))
            .map(|(t, _)| *t)
            .collect();
        if owners.len() > 1 {
            errors.push(format!("block {block:#x}: multiple owners {owners:?}"));
        }

        // 2. Exclusivity.
        for (t, c) in &copies {
            if let CopyState::Owner { exclusive: true, .. } = c.state {
                if copies.len() > 1 {
                    errors.push(format!(
                        "block {block:#x}: exclusive owner in tile {t} but {} copies exist",
                        copies.len()
                    ));
                }
            }
        }

        // 3. No stale copies.
        for (t, c) in &copies {
            if c.version != authority {
                errors.push(format!(
                    "block {block:#x}: tile {t} holds version {} but authority is {authority}",
                    c.version
                ));
            }
        }
        let dirty_owner = copies
            .iter()
            .any(|(_, c)| matches!(c.state, CopyState::Owner { dirty: true, .. }));
        if l2.has_data && !dirty_owner && l2.version != authority {
            errors.push(format!(
                "block {block:#x}: L2 holds version {} but authority is {authority}",
                l2.version
            ));
        }

        // 4. Coverage: every real copy is known to the protocol (when
        //    the block is tracked precisely).
        if let Some(&bits) = snap.recorded.get(&block) {
            for (t, _) in &copies {
                if bits & (1u64 << *t) == 0 {
                    errors.push(format!(
                        "block {block:#x}: tile {t} holds an untracked copy (recorded {bits:#x})"
                    ));
                }
            }
        }

        // 5. Durability: someone must hold the latest version.
        let mem_version = snap.memory.get(&block).copied().unwrap_or(0);
        let cached_current =
            copies.iter().any(|(_, c)| c.version == authority) || (l2.has_data && l2.version == authority);
        if !cached_current && mem_version != authority {
            errors.push(format!(
                "block {block:#x}: latest version {authority} lost (memory has {mem_version})"
            ));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap2() -> ChipSnapshot {
        ChipSnapshot::new(2)
    }

    #[test]
    fn empty_chip_passes() {
        assert!(check(&snap2()).is_ok());
    }

    #[test]
    fn coherent_sharing_passes() {
        let mut s = snap2();
        s.authority.insert(1, 3);
        s.l1[0].insert(1, CopyView { state: CopyState::Shared, version: 3 });
        s.l1[1].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: false, dirty: true }, version: 3 },
        );
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_double_owner() {
        let mut s = snap2();
        for t in 0..2 {
            s.l1[t].insert(
                1,
                CopyView { state: CopyState::Owner { exclusive: false, dirty: false }, version: 0 },
            );
        }
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("multiple owners")));
    }

    #[test]
    fn detects_exclusivity_violation() {
        let mut s = snap2();
        s.l1[0].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 0 },
        );
        s.l1[1].insert(1, CopyView { state: CopyState::Shared, version: 0 });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("exclusive owner")));
    }

    #[test]
    fn detects_stale_copy() {
        let mut s = snap2();
        s.authority.insert(1, 5);
        s.l1[0].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 5 },
        );
        // Tile 1 kept a stale shared copy that should have been
        // invalidated by the write that produced version 5.
        s.l1[1].insert(1, CopyView { state: CopyState::Shared, version: 4 });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("version 4")));
    }

    #[test]
    fn detects_stale_l2() {
        let mut s = snap2();
        s.authority.insert(2, 7);
        s.l1[0].insert(2, CopyView { state: CopyState::Shared, version: 7 });
        s.l2.insert(2, L2View { has_data: true, version: 6, dirty: false, owner_in_l1: None });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("L2 holds version 6")));
    }

    #[test]
    fn l2_may_lag_behind_dirty_owner() {
        let mut s = snap2();
        s.authority.insert(2, 7);
        s.l1[0].insert(
            2,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 7 },
        );
        s.l2.insert(2, L2View { has_data: true, version: 6, dirty: false, owner_in_l1: Some(0) });
        // Hmm: exclusive owner + L2 data copy — exclusivity only counts L1
        // copies, and the stale L2 copy is permitted while a dirty owner
        // exists.
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_lost_writeback() {
        let mut s = snap2();
        s.authority.insert(3, 2);
        // Nothing cached, memory never updated: version 2 vanished.
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("lost")));
    }

    #[test]
    fn memory_holding_latest_passes() {
        let mut s = snap2();
        s.authority.insert(3, 2);
        s.memory.insert(3, 2);
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_untracked_copy() {
        let mut s = snap2();
        s.l1[0].insert(
            9,
            CopyView { state: CopyState::Owner { exclusive: false, dirty: false }, version: 0 },
        );
        s.l1[1].insert(9, CopyView { state: CopyState::Shared, version: 0 });
        // The protocol only recorded tile 0.
        s.recorded.insert(9, 0b01);
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("untracked copy")));
        // Covering both passes (extra stale bits are fine).
        s.recorded.insert(9, 0b1111);
        assert!(check(&s).is_ok());
    }
}
