//! Whole-chip coherence invariants.
//!
//! Protocols expose a [`ChipSnapshot`] of every cached copy plus the
//! write-serialization authority and the memory image. At quiescence (no
//! transaction in flight anywhere) the following must hold exactly:
//!
//! 1. **Single owner** — at most one L1 owns a block.
//! 2. **Exclusivity** — an exclusive/modified owner excludes every other
//!    L1 copy of the block.
//! 3. **No stale copies** — every valid L1 copy and every current L2 copy
//!    holds the latest committed version (a write that completed must
//!    have invalidated all stale copies).
//! 4. **Durability** — if no cache holds a block, memory (or the L2) must
//!    hold its latest version: writebacks are never lost.
//!
//! The randomized stress tests drive tens of thousands of accesses
//! through each protocol and call [`check`] at every quiescent point.
//!
//! [`StepChecker`] additionally validates the *mid-flight* invariants
//! after every handled message: the SWMR single-owner rule and DiCo's
//! forwarding bound hold at every step, and the full quiescent checks
//! (plus owner-pointer consistency) run whenever the chip drains. It
//! keeps a bounded history of recent events so a violation report can
//! show what led up to it.

use crate::common::{Block, Msg, MsgKind, Tile, MAX_CHASE_HOPS};
use cmpsim_engine::Cycle;
use std::collections::{BTreeMap, VecDeque};

/// State of one L1 copy, protocol-agnostic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CopyState {
    /// Plain sharer.
    Shared,
    /// Provider (DiCo-Providers / DiCo-Arin): a sharer that may supply
    /// data to in-area reads.
    Provider,
    /// Owner; `exclusive` means no other copy may exist, `dirty` means
    /// memory is stale.
    Owner {
        /// No other copies exist (E/M as opposed to O).
        exclusive: bool,
        /// Block modified with respect to memory.
        dirty: bool,
    },
}

/// One L1 copy.
#[derive(Debug, Clone, Copy)]
pub struct CopyView {
    /// Coherence state.
    pub state: CopyState,
    /// Data version held.
    pub version: u64,
}

/// The home L2 bank's view of a block.
#[derive(Debug, Clone, Copy, Default)]
pub struct L2View {
    /// The L2 data array holds the block.
    pub has_data: bool,
    /// Version of the L2 copy (meaningful when `has_data`).
    pub version: u64,
    /// L2 copy modified with respect to memory.
    pub dirty: bool,
    /// The home believes this L1 holds the ownership.
    pub owner_in_l1: Option<Tile>,
}

/// Everything the checker needs.
#[derive(Debug, Clone, Default)]
pub struct ChipSnapshot {
    /// Per-tile L1 contents.
    pub l1: Vec<BTreeMap<Block, CopyView>>,
    /// Home-bank views, keyed by block.
    pub l2: BTreeMap<Block, L2View>,
    /// Latest committed version per block.
    pub authority: BTreeMap<Block, u64>,
    /// Memory image versions.
    pub memory: BTreeMap<Block, u64>,
    /// Directory conservativeness: for blocks where the protocol keeps
    /// precise sharer information, the chip-wide tile bit-set of copies
    /// it *believes* exist. Every real copy must be covered (stale bits
    /// are fine — silent evictions over-approximate). Blocks tracked by
    /// broadcast (DiCo-Arin's shared-between-areas state) are absent.
    pub recorded: BTreeMap<Block, u64>,
}

impl ChipSnapshot {
    /// Creates an empty snapshot for `tiles` tiles.
    pub fn new(tiles: usize) -> Self {
        Self { l1: vec![BTreeMap::new(); tiles], ..Default::default() }
    }

    /// Every block that appears anywhere in the snapshot.
    fn all_blocks(&self) -> Vec<Block> {
        let mut blocks: Vec<Block> = self
            .l1
            .iter()
            .flat_map(|m| m.keys().copied())
            .chain(self.l2.keys().copied())
            .chain(self.authority.keys().copied())
            .collect();
        blocks.sort_unstable();
        blocks.dedup();
        blocks
    }
}

/// Checks all invariants; returns every violation found (empty = pass).
pub fn check(snap: &ChipSnapshot) -> Result<(), Vec<String>> {
    let mut errors = Vec::new();

    for block in snap.all_blocks() {
        let copies: Vec<(Tile, &CopyView)> = snap
            .l1
            .iter()
            .enumerate()
            .filter_map(|(t, m)| m.get(&block).map(|c| (t, c)))
            .collect();
        let authority = snap.authority.get(&block).copied().unwrap_or(0);
        let l2 = snap.l2.get(&block).copied().unwrap_or_default();

        // 1. Single owner.
        let owners: Vec<Tile> = copies
            .iter()
            .filter(|(_, c)| matches!(c.state, CopyState::Owner { .. }))
            .map(|(t, _)| *t)
            .collect();
        if owners.len() > 1 {
            errors.push(format!("block {block:#x}: multiple owners {owners:?}"));
        }

        // 2. Exclusivity.
        for (t, c) in &copies {
            if let CopyState::Owner { exclusive: true, .. } = c.state {
                if copies.len() > 1 {
                    errors.push(format!(
                        "block {block:#x}: exclusive owner in tile {t} but {} copies exist",
                        copies.len()
                    ));
                }
            }
        }

        // 3. No stale copies.
        for (t, c) in &copies {
            if c.version != authority {
                errors.push(format!(
                    "block {block:#x}: tile {t} holds version {} but authority is {authority}",
                    c.version
                ));
            }
        }
        let dirty_owner = copies
            .iter()
            .any(|(_, c)| matches!(c.state, CopyState::Owner { dirty: true, .. }));
        if l2.has_data && !dirty_owner && l2.version != authority {
            errors.push(format!(
                "block {block:#x}: L2 holds version {} but authority is {authority}",
                l2.version
            ));
        }

        // 4. Coverage: every real copy is known to the protocol (when
        //    the block is tracked precisely).
        if let Some(&bits) = snap.recorded.get(&block) {
            for (t, _) in &copies {
                if bits & (1u64 << *t) == 0 {
                    errors.push(format!(
                        "block {block:#x}: tile {t} holds an untracked copy (recorded {bits:#x})"
                    ));
                }
            }
        }

        // 5. Durability: someone must hold the latest version.
        let mem_version = snap.memory.get(&block).copied().unwrap_or(0);
        let cached_current =
            copies.iter().any(|(_, c)| c.version == authority) || (l2.has_data && l2.version == authority);
        if !cached_current && mem_version != authority {
            errors.push(format!(
                "block {block:#x}: latest version {authority} lost (memory has {mem_version})"
            ));
        }
    }

    if errors.is_empty() {
        Ok(())
    } else {
        Err(errors)
    }
}

/// One entry in the [`StepChecker`]'s event history.
#[derive(Debug, Clone)]
pub struct HistoryEntry {
    /// Cycle the event happened at.
    pub cycle: Cycle,
    /// Block concerned.
    pub block: Block,
    /// Short description of the event.
    pub what: String,
}

/// Per-message invariant checker (the watchdog's second half).
///
/// After each handled message, only the invariants that survive
/// transient states may be asserted — exclusivity and stale-copy checks
/// are *legally* violated while invalidations are in flight, so they run
/// only when the protocol reports quiescence. What holds at every step:
///
/// * **SWMR single owner** — at most one L1 owns the touched block;
/// * **forwarding bound** — no request has been L1-to-L1 forwarded more
///   than [`MAX_CHASE_HOPS`] times;
/// * **at quiescence** — the full [`check`] plus owner-pointer
///   consistency (every home that names an L1 owner must find that L1
///   actually owning the block).
#[derive(Debug, Clone)]
pub struct StepChecker {
    history: VecDeque<HistoryEntry>,
    capacity: usize,
}

impl Default for StepChecker {
    fn default() -> Self {
        Self::new()
    }
}

impl StepChecker {
    /// A checker with the default history window (512 events).
    pub fn new() -> Self {
        Self::with_capacity(512)
    }

    /// A checker keeping the last `capacity` events.
    pub fn with_capacity(capacity: usize) -> Self {
        Self { history: VecDeque::with_capacity(capacity.min(4096)), capacity }
    }

    fn push(&mut self, cycle: Cycle, block: Block, what: String) {
        if self.history.len() == self.capacity {
            self.history.pop_front();
        }
        self.history.push_back(HistoryEntry { cycle, block, what });
    }

    /// Records a core access in the history window.
    pub fn record_access(&mut self, now: Cycle, tile: Tile, block: Block, write: bool) {
        let rw = if write { "store" } else { "load" };
        self.push(now, block, format!("core {tile} {rw}"));
    }

    /// Records a delivered message in the history window.
    pub fn record_message(&mut self, now: Cycle, msg: &Msg) {
        self.push(now, msg.block, format!("{:?} -> {:?}: {:?}", msg.src, msg.dst, msg.kind));
    }

    /// Validates the mid-flight invariants after `msg` was handled;
    /// `quiescent` additionally triggers the full quiescent-state checks.
    /// Returns every violation found (empty = pass).
    pub fn check_step(
        &self,
        msg: &Msg,
        snap: &ChipSnapshot,
        quiescent: bool,
    ) -> Result<(), Vec<String>> {
        let mut errors = Vec::new();

        // DiCo forwarding bound: a request must fall back to the home
        // after MAX_CHASE_HOPS L1-to-L1 forwards.
        if let MsgKind::Req(req) = msg.kind {
            if req.hops > MAX_CHASE_HOPS {
                errors.push(format!(
                    "block {:#x}: request from tile {} exceeded the forwarding bound ({} hops > {MAX_CHASE_HOPS})",
                    msg.block, req.requestor, req.hops
                ));
            }
        }

        // SWMR: at most one L1 owner of the touched block, at all times.
        let owners: Vec<Tile> = snap
            .l1
            .iter()
            .enumerate()
            .filter(|(_, m)| {
                matches!(m.get(&msg.block).map(|c| c.state), Some(CopyState::Owner { .. }))
            })
            .map(|(t, _)| t)
            .collect();
        if owners.len() > 1 {
            errors.push(format!("block {:#x}: multiple owners {owners:?}", msg.block));
        }

        if quiescent {
            if let Err(mut errs) = check(snap) {
                errors.append(&mut errs);
            }
            // Owner-pointer consistency: a home naming an L1 owner must
            // find it owning the block (ownership moves are never silent,
            // so at quiescence the pointer is exact).
            for (&block, view) in &snap.l2 {
                if let Some(t) = view.owner_in_l1 {
                    let owns = matches!(
                        snap.l1.get(t).and_then(|m| m.get(&block)).map(|c| c.state),
                        Some(CopyState::Owner { .. })
                    );
                    if !owns {
                        errors.push(format!(
                            "block {block:#x}: home points at owner tile {t}, which does not own the block"
                        ));
                    }
                }
            }
        }

        if errors.is_empty() {
            Ok(())
        } else {
            Err(errors)
        }
    }

    /// The recorded history window for `block`, oldest first.
    pub fn history_for(&self, block: Block) -> Vec<String> {
        self.history
            .iter()
            .filter(|e| e.block == block)
            .map(|e| format!("cycle {}: {}", e.cycle, e.what))
            .collect()
    }

    /// The full recorded history window, oldest first.
    pub fn history(&self) -> impl Iterator<Item = &HistoryEntry> {
        self.history.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap2() -> ChipSnapshot {
        ChipSnapshot::new(2)
    }

    #[test]
    fn empty_chip_passes() {
        assert!(check(&snap2()).is_ok());
    }

    #[test]
    fn coherent_sharing_passes() {
        let mut s = snap2();
        s.authority.insert(1, 3);
        s.l1[0].insert(1, CopyView { state: CopyState::Shared, version: 3 });
        s.l1[1].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: false, dirty: true }, version: 3 },
        );
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_double_owner() {
        let mut s = snap2();
        for t in 0..2 {
            s.l1[t].insert(
                1,
                CopyView { state: CopyState::Owner { exclusive: false, dirty: false }, version: 0 },
            );
        }
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("multiple owners")));
    }

    #[test]
    fn detects_exclusivity_violation() {
        let mut s = snap2();
        s.l1[0].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 0 },
        );
        s.l1[1].insert(1, CopyView { state: CopyState::Shared, version: 0 });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("exclusive owner")));
    }

    #[test]
    fn detects_stale_copy() {
        let mut s = snap2();
        s.authority.insert(1, 5);
        s.l1[0].insert(
            1,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 5 },
        );
        // Tile 1 kept a stale shared copy that should have been
        // invalidated by the write that produced version 5.
        s.l1[1].insert(1, CopyView { state: CopyState::Shared, version: 4 });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("version 4")));
    }

    #[test]
    fn detects_stale_l2() {
        let mut s = snap2();
        s.authority.insert(2, 7);
        s.l1[0].insert(2, CopyView { state: CopyState::Shared, version: 7 });
        s.l2.insert(2, L2View { has_data: true, version: 6, dirty: false, owner_in_l1: None });
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("L2 holds version 6")));
    }

    #[test]
    fn l2_may_lag_behind_dirty_owner() {
        let mut s = snap2();
        s.authority.insert(2, 7);
        s.l1[0].insert(
            2,
            CopyView { state: CopyState::Owner { exclusive: true, dirty: true }, version: 7 },
        );
        s.l2.insert(2, L2View { has_data: true, version: 6, dirty: false, owner_in_l1: Some(0) });
        // Hmm: exclusive owner + L2 data copy — exclusivity only counts L1
        // copies, and the stale L2 copy is permitted while a dirty owner
        // exists.
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_lost_writeback() {
        let mut s = snap2();
        s.authority.insert(3, 2);
        // Nothing cached, memory never updated: version 2 vanished.
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("lost")));
    }

    #[test]
    fn memory_holding_latest_passes() {
        let mut s = snap2();
        s.authority.insert(3, 2);
        s.memory.insert(3, 2);
        assert!(check(&s).is_ok());
    }

    #[test]
    fn detects_untracked_copy() {
        let mut s = snap2();
        s.l1[0].insert(
            9,
            CopyView { state: CopyState::Owner { exclusive: false, dirty: false }, version: 0 },
        );
        s.l1[1].insert(9, CopyView { state: CopyState::Shared, version: 0 });
        // The protocol only recorded tile 0.
        s.recorded.insert(9, 0b01);
        let errs = check(&s).unwrap_err();
        assert!(errs.iter().any(|e| e.contains("untracked copy")));
        // Covering both passes (extra stale bits are fine).
        s.recorded.insert(9, 0b1111);
        assert!(check(&s).is_ok());
    }

    mod step_checker {
        use super::*;
        use crate::common::{DataInfo, Node, ReqInfo, Supplier};

        fn req_msg(hops: u8) -> Msg {
            Msg {
                kind: MsgKind::Req(ReqInfo {
                    requestor: 0,
                    write: false,
                    forwarder: None,
                    via_home: false,
                    predicted: false,
                    vouched: false,
                    hops,
                }),
                block: 1,
                src: Node::L1(0),
                dst: Node::L1(1),
            }
        }

        #[test]
        fn hop_bound_enforced() {
            let chk = StepChecker::new();
            let s = snap2();
            assert!(chk.check_step(&req_msg(MAX_CHASE_HOPS), &s, false).is_ok());
            let errs = chk.check_step(&req_msg(MAX_CHASE_HOPS + 1), &s, false).unwrap_err();
            assert!(errs.iter().any(|e| e.contains("forwarding bound")));
        }

        #[test]
        fn midflight_allows_transient_staleness_but_not_double_owner() {
            let chk = StepChecker::new();
            let mut s = snap2();
            // A stale sharer is legal mid-flight (invalidation en route)…
            s.authority.insert(1, 5);
            s.l1[0].insert(
                1,
                CopyView { state: CopyState::Owner { exclusive: false, dirty: true }, version: 5 },
            );
            s.l1[1].insert(1, CopyView { state: CopyState::Shared, version: 4 });
            assert!(chk.check_step(&req_msg(0), &s, false).is_ok());
            // …but a second owner never is.
            s.l1[1].insert(
                1,
                CopyView { state: CopyState::Owner { exclusive: false, dirty: false }, version: 4 },
            );
            let errs = chk.check_step(&req_msg(0), &s, false).unwrap_err();
            assert!(errs.iter().any(|e| e.contains("multiple owners")));
        }

        #[test]
        fn quiescent_owner_pointer_must_be_accurate() {
            let chk = StepChecker::new();
            let mut s = snap2();
            s.l2.insert(1, L2View { has_data: false, version: 0, dirty: false, owner_in_l1: Some(1) });
            let errs = chk.check_step(&req_msg(0), &s, true).unwrap_err();
            assert!(errs.iter().any(|e| e.contains("points at owner tile 1")));
            s.l1[1].insert(
                1,
                CopyView { state: CopyState::Owner { exclusive: true, dirty: false }, version: 0 },
            );
            s.recorded.insert(1, 0b10);
            assert!(chk.check_step(&req_msg(0), &s, true).is_ok());
        }

        #[test]
        fn history_window_is_bounded_and_filtered() {
            let mut chk = StepChecker::with_capacity(4);
            for i in 0..10u64 {
                chk.record_access(i, 0, i % 2, i % 3 == 0);
            }
            assert_eq!(chk.history().count(), 4);
            let ones = chk.history_for(1);
            assert!(ones.iter().all(|e| e.starts_with("cycle")));
            let msg = Msg {
                kind: MsgKind::Data(DataInfo::shared(1, Supplier::HomeL2)),
                block: 7,
                src: Node::L2(0),
                dst: Node::L1(1),
            };
            chk.record_message(11, &msg);
            assert_eq!(chk.history_for(7).len(), 1);
        }
    }
}
